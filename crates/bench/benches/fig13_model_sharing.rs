//! Figure 13: GPU memory footprint of the benchmark models with and
//! without model sharing, measured on the live device-memory allocator.
//!
//! Paper numbers: ResNet 1525 → 1427 MB (−6.4 %), ViT-Huge 4735 → 2101 MB
//! (−55.6 %); 300 MB storage-context overhead per model; 3 ViT pods need
//! 9282 vs 14205 MB; a 16 GB V100 fits 7 shared vs 4 unshared ResNeXt
//! pods.

use criterion::Criterion;
use fastg_models::zoo;
use fastgshare::modelshare::footprint;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

const MIB: u64 = 1024 * 1024;
const CTX: u64 = 300 * MIB;

fn live_footprint(model: &str, pods: usize, sharing: bool) -> u64 {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .model_sharing(sharing)
            .oversubscribe(true)
            .seed(13),
    );
    p.deploy(
        FunctionConfig::new("f", model)
            .replicas(pods)
            .resources(12.0, 0.5, 0.5),
    )
    .expect("fits");
    p.node_memory_used(0)
}

fn print_figure() {
    println!("\n=== Figure 13: model-sharing memory footprints ===\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "model", "original", "shared x1", "shared pod", "saved/pod"
    );
    for m in zoo::all() {
        let orig = m.memory.total() / MIB;
        let shared1 = live_footprint(&m.name, 1, true) / MIB;
        let pod = m.memory.shared_instance() / MIB;
        println!(
            "{:<12} {:>9}M {:>11}M {:>11}M {:>9.1}%",
            m.name,
            orig,
            shared1,
            pod,
            100.0 * (1.0 - pod as f64 / orig as f64)
        );
    }
    let vit3_shared = live_footprint("vit_huge", 3, true) / MIB;
    let vit3_plain = live_footprint("vit_huge", 3, false) / MIB;
    println!(
        "\n3 x vit_huge: {vit3_shared} MiB shared vs {vit3_plain} MiB unshared \
         (paper: 9282 vs 14205 MB)"
    );
    let rx = zoo::resnext101().memory;
    println!(
        "capacity: 16 GB V100 fits {} shared vs {} unshared ResNeXt pods (paper: 7 vs 4)",
        footprint::max_pods(&rx, 16 * 1024 * MIB, true, CTX),
        footprint::max_pods(&rx, 16 * 1024 * MIB, false, CTX),
    );
    println!(
        "paper shape: savings grow with model size; single-pod deployments \
         pay the 300 MB context."
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("fig13/deploy_3_vit_pods_shared", |b| {
        b.iter(|| live_footprint("vit_huge", 3, true))
    });
    c.final_summary();
}
