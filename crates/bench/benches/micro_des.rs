//! Micro: discrete-event engine throughput — event queue churn and a
//! full platform-second of simulation per iteration.

use criterion::Criterion;
use fastg_des::{EventQueue, SimTime, Simulation, World};
use fastg_workload::ArrivalProcess;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

struct Relay {
    remaining: u64,
}

impl World for Relay {
    type Event = u64;
    fn handle(&mut self, now: SimTime, ev: u64, queue: &mut EventQueue<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule(now + SimTime::from_micros(ev % 97 + 1), ev.wrapping_mul(31));
        }
    }
}

fn relay_events(n: u64) -> u64 {
    let mut sim = Simulation::new(Relay { remaining: n });
    for i in 0..16 {
        sim.queue_mut().schedule(SimTime::from_micros(i), i);
    }
    sim.run_until_idle();
    sim.events_handled()
}

fn platform_second() -> u64 {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(3));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .expect("deploys");
    p.set_load(f, ArrivalProcess::poisson(120.0, 4));
    p.run_for(SimTime::from_secs(1));
    p.events_handled()
}

fn main() {
    println!("\n=== Micro: simulation engine throughput ===");
    println!("relay: {} events", relay_events(100_000));
    println!("platform-second: {} events", platform_second());
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("des/relay_100k_events", |b| b.iter(|| relay_events(100_000)));
    c.bench_function("des/platform_second_resnet_4pods_120rps", |b| {
        b.iter(platform_second)
    });
    c.final_summary();
}
