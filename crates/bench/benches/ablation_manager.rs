//! Ablations of the FaST-Manager design choices (DESIGN.md §7):
//!
//! 1. Q_miss-descending priority vs FIFO token dispatch — does the
//!    priority queue actually protect guaranteed quotas under contention?
//! 2. Strict burst admission (Gemini-estimate-gated) vs the paper's
//!    one-burst overrun tolerance — quota fidelity vs throughput.
//! 3. Token-lease duration sensitivity for the time-sharing comparator —
//!    the knob that separates "time sharing" from "racing with extra
//!    steps".

use criterion::Criterion;
use fastg_cluster::{PodId, ResourceSpec};
use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::{
    BackendConfig, DispatchOrder, FastBackend, RequestOutcome, SharingPolicy,
};
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

/// Drives a contended backend directly: `n` pods with mixed quota
/// requests all want tokens constantly; measures how much GPU time each
/// pod's guarantee actually received over `windows` windows. Returns the
/// worst shortfall ratio (achieved / requested) among pods.
fn quota_fidelity(order: DispatchOrder, windows: u32) -> f64 {
    let window = SimTime::from_millis(100);
    let mut b = FastBackend::new(BackendConfig {
        policy: SharingPolicy::FaST,
        window,
        token_lease: SimTime::from_millis(2),
        dispatch_order: order,
        ..BackendConfig::default()
    });
    // Over-subscribed adapter: 3 × 60 % shares but only 100 % budget, so
    // exactly one pod runs at a time; guarantees sum to the whole window.
    let requests = [0.6, 0.3, 0.1];
    for (i, &q) in requests.iter().enumerate() {
        b.register(PodId(i as u64), ResourceSpec::new(60.0, q, 1.0, 0));
    }
    let mut achieved = [SimTime::ZERO; 3];
    let mut now = SimTime::ZERO;
    let burst = SimTime::from_millis(2);
    // All pods ask up front; the backend's dispatch picks the holder.
    let mut holder: Option<PodId> = None;
    for i in 0..3u64 {
        if let (RequestOutcome::Granted(_), _) = b.request(now, PodId(i)).unwrap() {
            holder = Some(PodId(i));
        }
    }
    let end = window * windows as u64;
    let mut next_reset = window;
    while now < end {
        if now >= next_reset {
            for g in b.on_window_reset(now) {
                holder.get_or_insert(g.pod);
            }
            next_reset += window;
        }
        let Some(pod) = holder else {
            now = next_reset;
            continue;
        };
        // The holder bursts until its lease lapses; the dispatch then
        // hands the token to whichever waiter the policy prefers, and the
        // old holder re-queues.
        b.begin_burst(pod).unwrap();
        now += burst;
        achieved[pod.0 as usize] += burst;
        let out = b.sync_point(now, pod, burst).unwrap();
        if !out.lease_valid {
            holder = out.granted.first().map(|g| g.pod);
            let (outcome, side) = b.request(now, pod).unwrap();
            if holder.is_none() {
                if let RequestOutcome::Granted(_) = outcome {
                    holder = Some(pod);
                }
                holder = holder.or(side.first().map(|g| g.pod));
            }
        }
    }
    let total = window * windows as u64;
    (0..3)
        .map(|i| {
            let want = total.scale(requests[i]).as_secs_f64();
            let got = achieved[i].as_secs_f64();
            (got / want).min(1.0)
        })
        .fold(f64::INFINITY, f64::min)
}

/// End-to-end strict-admission comparison: a pod with a tight quota and
/// large bursts; how far does it overrun its limit per window?
fn overrun_with(strict: bool) -> (f64, f64) {
    let window = SimTime::from_millis(100);
    let mut b = FastBackend::new(BackendConfig {
        policy: SharingPolicy::FaST,
        window,
        token_lease: SimTime::from_millis(50),
        strict_admission: strict,
        ..BackendConfig::default()
    });
    b.register(PodId(0), ResourceSpec::new(50.0, 0.3, 0.3, 0));
    let burst = SimTime::from_millis(8); // 30ms quota, 8ms bursts
    let mut now = SimTime::ZERO;
    let mut served = 0u32;
    let mut max_overrun = SimTime::ZERO;
    for w in 0..50u32 {
        let window_end = window * (w as u64 + 1);
        loop {
            let (outcome, _) = b.request(now, PodId(0)).unwrap();
            match outcome {
                RequestOutcome::Granted(_) => {
                    b.begin_burst(PodId(0)).unwrap();
                    now += burst;
                    b.sync_point(now, PodId(0), burst).unwrap();
                    served += 1;
                    let qs = b.quota_state(PodId(0)).unwrap();
                    max_overrun = max_overrun.max(qs.q_used.saturating_sub(qs.q_limit));
                    if now >= window_end {
                        break;
                    }
                }
                _ => break,
            }
        }
        now = window_end;
        b.on_window_reset(now);
    }
    (served as f64 / 5.0, max_overrun.as_millis_f64())
}

/// Time-sharing throughput as a function of lease duration (full
/// platform): short leases behave like per-burst rotation, long leases
/// converge to the paper's single-racing-pod ceiling.
fn ts_throughput(lease_ms: u64) -> f64 {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::SingleToken)
            .token_lease(SimTime::from_millis(lease_ms))
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(71),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(8)
                .resources(100.0, 1.0, 1.0)
                .saturating(),
        )
        .expect("deploys");
    let _ = f;
    let r = p.run_for(SimTime::from_secs(4));
    r.total_throughput()
}

/// SLO impact of the autoscaler control loop under Poisson load.
fn slo_with_interval(interval: SimTime) -> f64 {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .autoscale_interval(interval)
            .warmup(SimTime::from_secs(2))
            .seed(72),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .slo_ms(69)
                .replicas(1)
                .resources(12.0, 0.4, 1.0),
        )
        .expect("deploys");
    p.enable_autoscaler(fastg_bench::resnet_profile_db());
    p.set_load(f, ArrivalProcess::ramp(10.0, 90.0, SimTime::from_secs(15), 73));
    let r = p.run_for(SimTime::from_secs(25));
    r.functions[&f].violation_ratio
}

fn print_tables() {
    println!("\n=== Ablation 1: token dispatch order (worst quota fidelity) ===");
    println!(
        "q_miss priority: {:.2}   fifo: {:.2}   (1.0 = every guarantee met)",
        quota_fidelity(DispatchOrder::QMissDesc, 50),
        quota_fidelity(DispatchOrder::Fifo, 50)
    );

    println!("\n=== Ablation 2: strict burst admission ===");
    let (rps_loose, over_loose) = overrun_with(false);
    let (rps_strict, over_strict) = overrun_with(true);
    println!(
        "tolerant: {rps_loose:.1} req/s, max overrun {over_loose:.1}ms | \
         strict: {rps_strict:.1} req/s, max overrun {over_strict:.1}ms"
    );

    println!("\n=== Ablation 3: time-sharing lease duration (8 ResNet pods) ===");
    for lease in [2u64, 10, 50, 100, 400] {
        println!("lease {lease:>4}ms -> {:>6.1} req/s", ts_throughput(lease));
    }
    println!("(racing ceiling ≈ 71 req/s: long leases converge to it)");

    println!("\n=== Ablation 4: auto-scaler control interval ===");
    for secs in [1u64, 2, 4, 8] {
        println!(
            "interval {secs}s -> {:.2}% SLO violations",
            slo_with_interval(SimTime::from_secs(secs)) * 100.0
        );
    }
}

fn main() {
    print_tables();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("ablation/quota_fidelity_qmiss_50_windows", |b| {
        b.iter(|| quota_fidelity(DispatchOrder::QMissDesc, 50))
    });
    c.final_summary();
}
