//! Micro/ablation: the Maximal Rectangles Algorithm vs first-fit — GPU
//! count and fragmentation over a churn trace, plus raw placement cost.
//!
//! This quantifies the design choice §3.4.2 argues for: global
//! best-area-fit with maximal free rectangles consolidates pods onto
//! fewer GPUs and leaves larger contiguous free regions than naive
//! placement.

use criterion::Criterion;
use fastg_cluster::{NodeId, PodId, ResourceSpec};
use fastgshare::scheduler::{NodeSelector, PlacementPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A churn trace: place/release pods of mixed shapes; returns
/// (GPUs in use, mean fragmentation, failed placements).
fn churn(policy: PlacementPolicy, ops: usize, seed: u64) -> (usize, f64, u32) {
    let mut s = NodeSelector::new(policy);
    for i in 0..8 {
        s.add_gpu(NodeId(i));
    }
    let shapes = [
        (12.0, 0.4),
        (24.0, 0.4),
        (50.0, 0.6),
        (6.0, 0.2),
        (80.0, 0.8),
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<(PodId, NodeId)> = Vec::new();
    let mut next = 0u64;
    let mut failed = 0u32;
    for _ in 0..ops {
        if live.len() > 24 || (!live.is_empty() && rng.gen_bool(0.45)) {
            let idx = rng.gen_range(0..live.len());
            let (pod, node) = live.swap_remove(idx);
            s.release(node, pod);
        } else {
            let (sm, q) = shapes[rng.gen_range(0..shapes.len())];
            let spec = ResourceSpec::new(sm, q, q, 0);
            let pod = PodId(next);
            next += 1;
            match s.place(pod, &spec, |_| true) {
                Some((node, _)) => live.push((pod, node)),
                None => failed += 1,
            }
        }
    }
    (s.gpus_in_use(), s.mean_fragmentation(), failed)
}

/// Single-GPU packing capacity per fit rule: how many pods of a mixed
/// shape stream fit before the first rejection.
fn fill_capacity(rule: fastgshare::scheduler::FitRule, seed: u64) -> (u32, u64) {
    use fastgshare::scheduler::GpuRects;
    let mut g = GpuRects::with_rule(100, 100, 24, rule);
    let shapes = [
        (40u32, 12u32),
        (40, 24),
        (60, 50),
        (20, 6),
        (25, 33),
        (15, 45),
        (50, 10),
        (10, 10),
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut placed = 0u32;
    let mut next = 0u64;
    let mut misses = 0u32;
    // Keep offering random shapes until the GPU rejects ten in a row.
    while misses < 10 {
        let (w, h) = shapes[rng.gen_range(0..shapes.len())];
        match g.place(PodId(next), w, h) {
            Some(_) => {
                placed += 1;
                misses = 0;
            }
            None => misses += 1,
        }
        next += 1;
    }
    (placed, g.used_area())
}

fn print_figure() {
    println!("\n=== Ablation: MRA vs first-fit placement over a churn trace ===\n");
    println!(
        "{:<22} {:>10} {:>16} {:>10}",
        "policy", "GPUs used", "fragmentation", "failures"
    );
    for (name, policy) in [
        ("maximal rectangles", PlacementPolicy::MaximalRectangles),
        ("first fit", PlacementPolicy::FirstFit),
    ] {
        let (gpus, frag, failed) = churn(policy, 2_000, 5);
        println!("{name:<22} {gpus:>10} {:>15.1}% {failed:>10}", frag * 100.0);
    }
    println!("\n(lower is better on every column; same 2000-op seed-5 trace)");

    println!("\n=== Ablation: MAXRECTS fit rules, single-GPU fill capacity ===\n");
    println!("{:<22} {:>12} {:>14}", "fit rule", "pods placed", "area filled");
    use fastgshare::scheduler::FitRule;
    for (name, rule) in [
        ("best area (paper)", FitRule::BestAreaFit),
        ("best short side", FitRule::BestShortSideFit),
        ("bottom left", FitRule::BottomLeft),
    ] {
        // Average over a few seeds for stability.
        let mut pods = 0u32;
        let mut area = 0u64;
        for seed in 0..8 {
            let (p, a) = fill_capacity(rule, seed);
            pods += p;
            area += a;
        }
        println!(
            "{name:<22} {:>12.1} {:>13.1}%",
            pods as f64 / 8.0,
            area as f64 / 8.0 / 100.0
        );
    }
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("mra/churn_2000_ops", |b| {
        b.iter(|| churn(PlacementPolicy::MaximalRectangles, 2_000, 5))
    });
    c.bench_function("first_fit/churn_2000_ops", |b| {
        b.iter(|| churn(PlacementPolicy::FirstFit, 2_000, 5))
    });
    c.final_summary();
}
