//! Figure 12: auto-scaling to meet the SLO — pod count follows the
//! offered RPS curve and ResNet's 69 ms SLO is violated on < 1 % of
//! requests in steady state.

use criterion::Criterion;
use fastg_bench::{ms, run_autoscaling};

fn print_figure() {
    println!("\n=== Figure 12: auto-scaling to meet the 69ms ResNet SLO ===\n");
    let (samples, report) = run_autoscaling(121, 12, 5).expect("runs");
    println!("{:>6} {:>7} {:>12} {:>12}", "t", "pods", "served", "p99 (cum)");
    for (t, pods, served, p99) in &samples {
        println!("{t:>5}s {pods:>7} {served:>10.1}/s {:>12}", ms(*p99));
    }
    let f = report.functions.values().next().expect("one function");
    println!(
        "\nfinal: {} requests, SLO violations {:.2}% (paper: < 1%), \
         peak replica count {}",
        f.completed,
        f.violation_ratio * 100.0,
        samples.iter().map(|s| s.1).max().unwrap_or(0)
    );
    println!(
        "paper shape: the replica curve tracks the RPS curve with a couple of \
         control intervals of lag; violations stay rare."
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("fig12/autoscaling_60s_scenario", |b| {
        b.iter(|| run_autoscaling(121, 6, 5))
    });
    c.final_summary();
}
