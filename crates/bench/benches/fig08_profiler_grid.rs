//! Figure 8: function throughput from FaST-Profiler over the full
//! spatio-temporal grid — temporal {20,40,60,80,100 %} ×
//! spatial {6,12,24,50,60,80,100 %} — for the four MLPerf models.
//!
//! Paper shape: throughput grows proportionally along the temporal axis
//! (effective temporal isolation) and saturates along the spatial axis at
//! a model-dependent partition (effective spatial isolation); larger
//! models saturate later.

use criterion::Criterion;
use fastg_des::SimTime;
use fastgshare::profiler::{ConfigServer, Experiment, ProfileDb, ProfileKey, SamplePlan};

const SPATIAL: [f64; 7] = [6.0, 12.0, 24.0, 50.0, 60.0, 80.0, 100.0];
const TEMPORAL: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn print_figure() {
    println!("\n=== Figure 8: profiled throughput (req/s) per (SM %, quota %) ===");
    for model in ["resnet50", "bert_base", "rnnt", "gnmt"] {
        let mut db = ProfileDb::new();
        Experiment::new(model, ConfigServer::paper_grid())
            .trial_duration(SimTime::from_secs(3))
            .run_parallel(&mut db, 8)
            .expect("zoo model");
        println!("\n-- {model} --");
        print!("{:>8} |", "SM \\ Q");
        for q in TEMPORAL {
            print!(" {:>6.0}% |", q * 100.0);
        }
        println!();
        for sm in SPATIAL {
            print!("{sm:>7.0}% |");
            for q in TEMPORAL {
                let rps = db
                    .get(model, ProfileKey::new(sm, q))
                    .map(|r| r.rps)
                    .unwrap_or(f64::NAN);
                print!(" {rps:>7.1} |");
            }
            println!();
        }
    }
    println!(
        "\npaper shape: columns scale ~linearly with quota; rows flatten past \
         each model's saturation partition (ResNet ~24 %, BERT ~50 %, \
         GNMT ~75 %)."
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    let exp = Experiment::new(
        "resnet50",
        ConfigServer::new(SamplePlan::Grid {
            spatial: vec![12.0],
            temporal: vec![0.4],
        }),
    )
    .trial_duration(SimTime::from_secs(2));
    c.bench_function("fig08/single_trial_resnet_12pct_q40", |b| {
        b.iter(|| exp.run_trial(12.0, 0.4).unwrap())
    });
    c.final_summary();
}
