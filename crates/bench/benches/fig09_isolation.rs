//! Figure 9: effectiveness of spatial sharing — under time sharing alone,
//! an RNNT pod (50 %–50 % quota) interferes with a ResNet pod
//! (50 %–80 % elastic quota) because 80 + 50 > 100 %; with spatial
//! partitions (both at 24 % SMs) the two do not influence each other.

use criterion::Criterion;
use fastg_des::SimTime;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

/// Runs ResNet(0.5–0.8) [+ optional RNNT(0.5–0.5)] and returns ResNet's
/// steady-state throughput.
fn resnet_rps(policy: SharingPolicy, sm: f64, with_rnnt: bool, seed: u64) -> f64 {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(policy)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(seed),
    );
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .resources(sm, 0.5, 0.8)
                .saturating(),
        )
        .expect("resnet deploys");
    if with_rnnt {
        p.deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .resources(sm, 0.5, 0.5)
                .saturating(),
        )
        .expect("rnnt deploys");
    }
    p.run_for(SimTime::from_secs(5)).functions[&resnet].throughput_rps
}

fn print_figure() {
    println!("\n=== Figure 9: elastic-quota interference, time sharing vs spatio-temporal ===\n");
    let ts_alone = resnet_rps(SharingPolicy::SingleToken, 100.0, false, 31);
    let ts_both = resnet_rps(SharingPolicy::SingleToken, 100.0, true, 31);
    let fast_alone = resnet_rps(SharingPolicy::FaST, 24.0, false, 31);
    let fast_both = resnet_rps(SharingPolicy::FaST, 24.0, true, 31);
    println!("{:<42} {:>12} {:>12} {:>8}", "mechanism", "alone", "with RNNT", "drop");
    println!(
        "{:<42} {:>10.1}/s {:>10.1}/s {:>7.1}%",
        "time sharing only (ResNet 50-80, RNNT 50-50)",
        ts_alone,
        ts_both,
        100.0 * (ts_alone - ts_both) / ts_alone
    );
    println!(
        "{:<42} {:>10.1}/s {:>10.1}/s {:>7.1}%",
        "spatio-temporal (both at 24% SM partitions)",
        fast_alone,
        fast_both,
        100.0 * (fast_alone - fast_both) / fast_alone
    );
    println!(
        "\npaper shape: the elastic 80+50 > 100 over-subscription makes RNNT \
         steal ResNet's elastic quota under time sharing; disjoint SM \
         partitions remove the interference entirely."
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("fig09/contended_pair_fast", |b| {
        b.iter(|| resnet_rps(SharingPolicy::FaST, 24.0, true, 31))
    });
    c.final_summary();
}
