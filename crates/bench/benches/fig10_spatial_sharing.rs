//! Figure 10: performance of spatial sharing as pod count grows (1–8) for
//! racing (no partitions, over-subscribed) vs 12 % and 24 % partitions,
//! at 100 % time allocation: throughput, tail latency, utilization and SM
//! occupancy.
//!
//! Paper shape: with enough pods, partitioned sharing delivers much higher
//! throughput, occupancy and utilization than racing, with lower tails;
//! e.g. 8 RNNT pods at 12 % ≈ 40 req/s and p99 < 500 ms vs a racing pod's
//! 12.5 req/s.

use criterion::Criterion;
use fastg_bench::{ms, run_sharing, sharing_outcome, sharing_scenario};
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::run_sweep;

fn config_of(label: &str) -> (SharingPolicy, f64) {
    match label {
        "racing" => (SharingPolicy::Racing, 100.0),
        "12% part" => (SharingPolicy::FaST, 12.0),
        "24% part" => (SharingPolicy::FaST, 24.0),
        _ => unreachable!(),
    }
}

fn print_figure() {
    println!("\n=== Figure 10: spatial sharing vs racing, growing pod counts ===");
    // The whole grid (3 models × 3 configs × 4 pod counts) fans out over
    // fastg-par worker threads; reports come back in input order, so the
    // table is identical at any thread count.
    let mut grid = Vec::new();
    for model in ["resnet50", "rnnt", "gnmt"] {
        for label in ["racing", "12% part", "24% part"] {
            let (policy, sm) = config_of(label);
            for pods in [1usize, 2, 4, 8] {
                grid.push(sharing_scenario(
                    format!("{model}/{label}/{pods}"),
                    policy,
                    model,
                    pods,
                    sm,
                    5,
                    1001,
                ));
            }
        }
    }
    let results = run_sweep(grid, fastg_par::resolve_threads(None)).expect("sweep runs");
    let mut rows = results.iter();
    for model in ["resnet50", "rnnt", "gnmt"] {
        println!("\n-- {model} --");
        println!(
            "{:<10} {:>5} {:>10} {:>10} {:>8} {:>8}",
            "config", "pods", "req/s", "p99", "util", "SM occ"
        );
        for label in ["racing", "12% part", "24% part"] {
            for pods in [1usize, 2, 4, 8] {
                let (_, report) = rows.next().expect("grid row");
                let o = sharing_outcome(report).expect("grid row shape");
                println!(
                    "{label:<10} {pods:>5} {:>10.1} {:>10} {:>7.1}% {:>7.1}%",
                    o.rps,
                    ms(o.p99),
                    o.utilization * 100.0,
                    o.sm_occupancy * 100.0
                );
            }
        }
    }
    println!(
        "\npaper shape: partitioned curves rise ~linearly in pod count until \
         the SM budget binds; racing saturates early with exploding tails."
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("fig10/resnet_8pods_12pct", |b| {
        b.iter(|| run_sharing(SharingPolicy::FaST, "resnet50", 8, 12.0, 2, 1001))
    });
    c.final_summary();
}
