//! Figure 11: GPU utilization and SM occupancy under FaST-Scheduler vs
//! time-sharing-only scheduling for the evaluation pod set
//! (4 × ResNet (12 %, 40 %), 2 × RNNT (24 %, 40 %), 2 × BERT (50 %, 60 %))
//! on four V100 nodes.
//!
//! Paper: time sharing needs all 4 GPUs; FaST packs everything onto 1 and
//! improves utilization ×1.34 and SM occupancy ×3.13.

use criterion::Criterion;
use fastg_bench::run_fig11;
use fastgshare::manager::SharingPolicy;

fn print_figure() {
    println!("\n=== Figure 11: scheduling the paper's pod set on 4 GPUs ===\n");
    let (fast_gpus, fast) = run_fig11(SharingPolicy::FaST, 6, 111).expect("runs");
    let (ts_gpus, ts) = run_fig11(SharingPolicy::SingleToken, 6, 111).expect("runs");
    println!(
        "{:<26} {:>6} {:>8} {:>8} {:>12}",
        "scheduler", "GPUs", "util", "SM occ", "total req/s"
    );
    println!(
        "{:<26} {:>6} {:>7.1}% {:>7.1}% {:>12.1}",
        "time sharing (KubeShare)",
        ts_gpus,
        ts.mean_utilization_active() * 100.0,
        ts.mean_occupancy_active() * 100.0,
        ts.total_throughput()
    );
    println!(
        "{:<26} {:>6} {:>7.1}% {:>7.1}% {:>12.1}",
        "FaST-Scheduler (MRA)",
        fast_gpus,
        fast.mean_utilization_active() * 100.0,
        fast.mean_occupancy_active() * 100.0,
        fast.total_throughput()
    );
    println!(
        "\nratios (FaST / time sharing): utilization x{:.2} (paper 1.34), \
         SM occupancy x{:.2} (paper 3.13), GPUs {} vs {} (paper 1 vs 4)",
        fast.mean_utilization_active() / ts.mean_utilization_active(),
        fast.mean_occupancy_active() / ts.mean_occupancy_active(),
        fast_gpus,
        ts_gpus
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("fig11/fast_pod_set_on_4_gpus", |b| {
        b.iter(|| run_fig11(SharingPolicy::FaST, 2, 111))
    });
    c.final_summary();
}
