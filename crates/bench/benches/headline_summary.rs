//! The abstract's headline claims, regenerated: "compared to the time
//! sharing mechanism, FaST-GShare improves throughput by 3.15x, GPU
//! utilization by 1.34x, and SM occupancy by 3.13x on average."

use criterion::Criterion;
use fastg_bench::{run_fig11, run_sharing};
use fastgshare::manager::SharingPolicy;

fn print_figure() {
    println!("\n=== Headline summary: FaST-GShare vs time sharing ===\n");

    // Throughput: §5.3 full-GPU comparison per model (time-sharing ceiling
    // = single racing pod; FaST = 8 pods at 12 % partitions).
    let mut speedups = Vec::new();
    println!("{:<10} {:>14} {:>14} {:>9}", "model", "time-sharing", "FaST (8x12%)", "speedup");
    for model in ["resnet50", "rnnt", "gnmt"] {
        let ts = run_sharing(SharingPolicy::SingleToken, model, 8, 100.0, 5, 7).expect("runs");
        let fast = run_sharing(SharingPolicy::FaST, model, 8, 12.0, 5, 7).expect("runs");
        let s = fast.rps / ts.rps;
        speedups.push(s);
        println!(
            "{model:<10} {:>12.1}/s {:>12.1}/s {:>8.2}x",
            ts.rps, fast.rps, s
        );
    }
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;

    // Utilization / occupancy: the Figure 11 scheduling scenario.
    let (_, fast) = run_fig11(SharingPolicy::FaST, 6, 7).expect("runs");
    let (_, ts) = run_fig11(SharingPolicy::SingleToken, 6, 7).expect("runs");
    let util_ratio = fast.mean_utilization_active() / ts.mean_utilization_active();
    let occ_ratio = fast.mean_occupancy_active() / ts.mean_occupancy_active();

    println!("\n{:<22} {:>10} {:>10}", "metric", "paper", "measured");
    println!("{:<22} {:>10} {:>9.2}x", "throughput", "3.15x", mean_speedup);
    println!("{:<22} {:>10} {:>9.2}x", "GPU utilization", "1.34x", util_ratio);
    println!("{:<22} {:>10} {:>9.2}x", "SM occupancy", "3.13x", occ_ratio);
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("headline/fast_8pods_resnet", |b| {
        b.iter(|| run_sharing(SharingPolicy::FaST, "resnet50", 8, 12.0, 2, 7))
    });
    c.final_summary();
}
