//! Figure 1: GPU utilization and SM occupancy under the Kubernetes device
//! plugin (exclusive assignment) and under time sharing, both driven by
//! extreme inference workloads.
//!
//! Paper shape: (a) exclusive — low utilization even when saturated;
//! (b) time sharing — utilization looks high (>90 % in the paper's mix)
//! while SM occupancy stays below ~10 %.

use criterion::Criterion;
use fastg_bench::run_sharing;
use fastgshare::manager::SharingPolicy;

fn print_figure() {
    println!("\n=== Figure 1: device plugin vs time sharing under extreme workload ===\n");
    println!(
        "{:<10} {:<28} {:>10} {:>8} {:>8}",
        "model", "mechanism", "req/s", "util", "SM occ"
    );
    for model in ["resnet50", "rnnt"] {
        let excl = run_sharing(SharingPolicy::Exclusive, model, 1, 100.0, 5, 101).expect("runs");
        let ts = run_sharing(SharingPolicy::SingleToken, model, 8, 100.0, 5, 101).expect("runs");
        println!(
            "{model:<10} {:<28} {:>10.1} {:>7.1}% {:>7.1}%",
            "device plugin (1 pod)",
            excl.rps,
            excl.utilization * 100.0,
            excl.sm_occupancy * 100.0
        );
        println!(
            "{model:<10} {:<28} {:>10.1} {:>7.1}% {:>7.1}%",
            "time sharing (8 pods)",
            ts.rps,
            ts.utilization * 100.0,
            ts.sm_occupancy * 100.0
        );
    }
    println!(
        "\npaper shape: time sharing keeps the GPU 'busy' while SMs idle \
         (util >> SM occupancy); the device plugin under-utilizes outright."
    );
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("fig01/time_sharing_8pods_resnet", |b| {
        b.iter(|| run_sharing(SharingPolicy::SingleToken, "resnet50", 8, 100.0, 2, 101))
    });
    c.final_summary();
}
