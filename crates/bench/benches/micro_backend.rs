//! Micro: multi-token scheduler dispatch cost — the request/sync/window
//! cycle of the FaST Backend at realistic pod counts.

use criterion::Criterion;
use fastg_cluster::{PodId, ResourceSpec};
use fastg_des::SimTime;
use fastgshare::manager::{BackendConfig, FastBackend, RequestOutcome, SharingPolicy};

/// Simulates `cycles` token request→burst→sync rounds across `pods` pods
/// on one backend; returns tokens dispatched.
fn token_cycles(pods: u64, cycles: u64) -> u64 {
    let mut b = FastBackend::new(BackendConfig {
        policy: SharingPolicy::FaST,
        window: SimTime::from_millis(100),
        token_lease: SimTime::from_millis(5),
        sm_global_limit: 100.0,
        ..BackendConfig::default()
    });
    for i in 0..pods {
        b.register(PodId(i), ResourceSpec::new(12.0, 0.5, 1.0, 0));
    }
    let mut now = SimTime::ZERO;
    let mut dispatched = 0u64;
    for c in 0..cycles {
        for i in 0..pods {
            let pod = PodId(i);
            now += SimTime::from_micros(50);
            let (outcome, _side) = b.request(now, pod).unwrap();
            if let RequestOutcome::Granted(_) = outcome {
                b.begin_burst(pod).unwrap();
                now += SimTime::from_micros(300);
                let out = b.sync_point(now, pod, SimTime::from_micros(300)).unwrap();
                dispatched += out.granted.len() as u64;
            }
        }
        if c % 100 == 99 {
            now += SimTime::from_millis(1);
            dispatched += b.on_window_reset(now).len() as u64;
        }
    }
    dispatched + b.tokens_dispatched()
}

fn main() {
    println!("\n=== Micro: FaST Backend token dispatch ===");
    for pods in [4u64, 16, 64] {
        let d = token_cycles(pods, 200);
        println!("{pods:>4} pods x 200 cycles -> {d} tokens dispatched");
    }
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("backend/8pods_500cycles", |b| {
        b.iter(|| token_cycles(8, 500))
    });
    c.bench_function("backend/64pods_100cycles", |b| {
        b.iter(|| token_cycles(64, 100))
    });
    c.final_summary();
}
