//! `sweep_baseline` — prefix-shared sweep evidence, in one JSON file.
//!
//! Measures two things and writes them to `BENCH_8.json`:
//!
//! 1. **The warmup-sharing headline** — a warmup-heavy treatment grid
//!    (every cell simulates the same long warmup, then applies its own
//!    reconfigure) run through `run_sweep_stats` (shared prefixes,
//!    checkpoint + restore per cell) and `run_sweep_unshared` (every
//!    cell replays its own warmup), both at **threads = 1** and timed
//!    min-of-3. On one thread the only speedup available is the warmup
//!    re-simulation the snapshot fan-out avoids — no parallel credit.
//!    Hard bars, asserted in-run: per-cell digests byte-identical across
//!    the two paths, and shared ≥ 3× faster (≥ 2× for `--quick`).
//! 2. **The resume-parity matrix** — a two-cell shared-prefix grid
//!    replayed through every cell of {clean/chaos} × {overload on/off} ×
//!    {cluster fast-forward on/off} × the four same-instant tie-break
//!    orders (32 combinations). Each combination's shared and unshared
//!    canonical reports must match byte for byte, and sharing must have
//!    actually engaged (`cells_resumed = 2`, never vacuous).
//!
//! ```text
//! sweep_baseline             # full measurement, writes BENCH_8.json
//! sweep_baseline --quick     # smaller grid / shorter warmup (CI smoke)
//! sweep_baseline --out FILE  # write somewhere else
//! ```
//!
//! Timing uses best-of-N wall clock, which is robust against scheduler
//! noise on shared runners; the simulated work itself is deterministic.

use fastg_bench::harness::{best_of, parse_bin_args, peak_rss_bytes, write_json_report};
use fastg_des::{ArenaKey, SimTime};
use fastg_json::ObjectBuilder;
use fastg_workload::ArrivalProcess;
use fastgshare::platform::{
    run_sweep_stats, run_sweep_unshared, FaultKind, FaultPlan, FunctionConfig, Platform,
    PlatformConfig, Scenario, TieBreak, TreatmentAction,
};

/// The headline grid: `cells` scenarios that agree on everything up to
/// the end of `warmup` and then each reconfigure function 0 to a
/// different share of the GPU before a short measured window. The
/// warmup:window ratio is what makes sharing pay — the grid is shaped
/// like a real profiling sweep, where the expensive part is reaching
/// steady state, not measuring it.
fn headline_grid(cells: u64, warmup: SimTime, window: SimTime) -> Vec<Scenario> {
    (0..cells)
        .map(|i| {
            // Spread the treatment over (6.25 %, 12.5 %, …) SM partitions.
            // Bench arithmetic on cell indices far below 2^53.
            // fastg-lint: allow(no-lossy-cast)
            let sm = 6.25 * (i + 1) as f64;
            let quota = (0.1 * (i + 1) as f64).min(1.0);
            Scenario::new(
                format!("headline/sm{sm}"),
                PlatformConfig::default().nodes(2).seed(29),
            )
            .function(
                FunctionConfig::new("f0", "resnet50")
                    .replicas(2)
                    .resources(50.0, 0.5, 0.5),
            )
            .function(
                FunctionConfig::new("f1", "bert_base")
                    .replicas(1)
                    .resources(25.0, 0.25, 0.25),
            )
            .load(0, ArrivalProcess::poisson(40.0, 7))
            .load(1, ArrivalProcess::poisson(15.0, 11))
            .warmup(warmup)
            .then(TreatmentAction::Reconfigure {
                func_index: 0,
                sm_partition: sm,
                quota_request: quota,
                quota_limit: quota,
            })
            .duration(window)
        })
        .collect()
}

/// The matrix chaos plan: a pod crash and a clock degrade inside the
/// warmup (so fault effects ride the snapshot) and a recovery inside
/// the measured window (so a pending fault event must survive restore).
fn matrix_chaos() -> FaultPlan {
    FaultPlan::new()
        .at(SimTime::from_millis(300), FaultKind::PodCrash { func_index: 0 })
        .at(
            SimTime::from_millis(600),
            FaultKind::NodeDegrade {
                node_index: 1,
                factor: 1.5,
            },
        )
        .at(
            SimTime::from_millis(1_200),
            FaultKind::NodeRecover { node_index: 1 },
        )
}

/// One matrix combination: a two-cell shared-prefix grid under the given
/// chaos / overload / cluster-FF / tie-break knobs.
fn matrix_grid(chaos: bool, overload: bool, cluster_ff: bool, tiebreak: TieBreak) -> Vec<Scenario> {
    let mut config = PlatformConfig::default()
        .nodes(2)
        .seed(43)
        .oversubscribe(true)
        .recovery(true)
        .overload_control(overload)
        .fastforward(true)
        .cluster_fastforward(cluster_ff)
        .tiebreak(tiebreak);
    if chaos {
        config = config.fault_plan(matrix_chaos());
    }
    let base = |name: &str| {
        Scenario::new(name, config.clone())
            .function(
                FunctionConfig::new("f0", "resnet50")
                    .replicas(2)
                    .resources(50.0, 0.5, 0.5)
                    .slo_ms(200),
            )
            .function(
                FunctionConfig::new("f1", "rnnt")
                    .replicas(1)
                    .resources(25.0, 0.25, 0.25),
            )
            .load(0, ArrivalProcess::poisson(60.0, 5))
            .load(1, ArrivalProcess::poisson(10.0, 9))
            .warmup(SimTime::from_millis(800))
            .duration(SimTime::from_millis(700))
    };
    vec![
        base("cell/reconfigure").then(TreatmentAction::Reconfigure {
            func_index: 0,
            sm_partition: 25.0,
            quota_request: 0.25,
            quota_limit: 0.5,
        }),
        base("cell/kill").then(TreatmentAction::KillPods {
            func_index: 0,
            count: 1,
        }),
    ]
}

fn tiebreak_name(tb: TieBreak) -> &'static str {
    match tb {
        TieBreak::Fifo => "fifo",
        TieBreak::Lifo => "lifo",
        TieBreak::SeededShuffle(1) => "shuffle-1",
        _ => "shuffle-2",
    }
}

fn main() {
    let opts = parse_bin_args("sweep_baseline", "BENCH_8.json");

    // 1. The headline: shared vs unshared warmup, single-threaded, so
    //    the only speedup on offer is the avoided warmup re-simulation.
    let (cells, warmup_secs, window_ms) = if opts.quick {
        (6u64, 4u64, 500u64)
    } else {
        (8, 8, 1_000)
    };
    let warmup = SimTime::from_secs(warmup_secs);
    let window = SimTime::from_millis(window_ms);
    let grid = || headline_grid(cells, warmup, window);

    // The shared snapshot the grid fans out from, sized for the record.
    let template = &grid()[0];
    let mut prefix = Platform::new(template.config.clone());
    for fc in &template.functions {
        prefix.deploy(fc.clone()).expect("headline function deploys");
    }
    let ids: Vec<_> = (0..template.functions.len())
        .map(fastg_cluster::FuncId::from_index)
        .collect();
    for (index, process) in &template.loads {
        prefix.set_load(ids[*index], process.clone());
    }
    prefix.run_for(warmup);
    let snapshot_bytes = prefix.checkpoint().size_bytes();
    drop(prefix);

    let repeats = 3;
    let (t_shared, (shared, stats)) =
        best_of(repeats, || run_sweep_stats(grid(), 1).expect("shared sweep"));
    let (t_unshared, unshared) =
        best_of(repeats, || run_sweep_unshared(grid(), 1).expect("unshared sweep"));

    assert_eq!(
        stats.prefixes_shared, 1,
        "headline grid should collapse to one shared prefix"
    );
    assert_eq!(
        u64::try_from(stats.cells_resumed).unwrap_or(u64::MAX),
        cells,
        "every headline cell should resume from the shared snapshot"
    );
    let headline_match = shared.len() == unshared.len()
        && shared
            .iter()
            .zip(&unshared)
            .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.digest() == r2.digest());
    assert!(headline_match, "prefix sharing changed a headline digest");
    let speedup = t_unshared / t_shared.max(1e-9);
    let floor = if opts.quick { 2.0 } else { 3.0 };
    println!(
        "sweep headline: {cells} cells, {warmup_secs}s warmup, {window_ms}ms window, \
         threads=1, best-of-{repeats} — shared {:.3}s, unshared {:.3}s, \
         speedup {speedup:.2}x (floor {floor}x), digests match: {headline_match}",
        t_shared, t_unshared,
    );
    println!(
        "warmup factoring: {} prefix simulated once, {} cells resumed from a {} byte \
         snapshot, {:.1} platform-seconds of warmup avoided",
        stats.prefixes_shared,
        stats.cells_resumed,
        snapshot_bytes,
        stats.warmup_avoided.as_secs_f64(),
    );
    assert!(
        speedup >= floor,
        "prefix-shared speedup {speedup:.2}x below the {floor}x floor"
    );
    // The treatment must actually differentiate the cells — a grid whose
    // cells all agree would make the digest bar vacuous.
    let first_digest = shared[0].1.digest();
    assert!(
        shared.iter().any(|(_, r)| r.digest() != first_digest),
        "headline cells are indistinguishable; the treatment is inert"
    );

    // 2. The resume-parity matrix: every chaos × overload × cluster-FF ×
    //    tie-break combination, shared vs unshared, byte-compared.
    let tiebreaks = [
        TieBreak::Fifo,
        TieBreak::Lifo,
        TieBreak::SeededShuffle(1),
        TieBreak::SeededShuffle(2),
    ];
    let mut matrix = Vec::new();
    let mut matrix_cells = 0u64;
    let mut matrix_matches = 0u64;
    for chaos in [false, true] {
        for overload in [false, true] {
            for cluster_ff in [false, true] {
                for tb in tiebreaks {
                    let (shared, stats) =
                        run_sweep_stats(matrix_grid(chaos, overload, cluster_ff, tb), 1)
                            .expect("matrix shared sweep");
                    let unshared =
                        run_sweep_unshared(matrix_grid(chaos, overload, cluster_ff, tb), 1)
                            .expect("matrix unshared sweep");
                    assert_eq!(stats.cells_resumed, 2, "matrix sharing never engaged");
                    let cell_match = shared.iter().zip(&unshared).all(|((n1, r1), (n2, r2))| {
                        n1 == n2 && r1.canonical_text() == r2.canonical_text()
                    });
                    matrix_cells += 1;
                    matrix_matches += u64::from(cell_match);
                    assert!(
                        cell_match,
                        "resume parity broke: chaos={chaos} overload={overload} \
                         cluster_ff={cluster_ff} tiebreak={}",
                        tiebreak_name(tb),
                    );
                    matrix.push(
                        ObjectBuilder::new()
                            .field("chaos", chaos)
                            .field("overload", overload)
                            .field("cluster_fastforward", cluster_ff)
                            .field("tiebreak", tiebreak_name(tb))
                            .field("digest", format!("{:016x}", shared[0].1.digest()))
                            .field("shared_matches_unshared", cell_match)
                            .build(),
                    );
                }
            }
        }
    }
    println!(
        "resume-parity matrix: {matrix_matches}/{matrix_cells} combinations digest-exact \
         (chaos x overload x cluster-ff x 4 tie-breaks)"
    );

    let doc = ObjectBuilder::new()
        .field("bench", "sweep_baseline")
        .field("quick", opts.quick)
        .field("threads", 1u64)
        .field(
            "headline",
            ObjectBuilder::new()
                .field("cells", cells)
                .field("warmup_seconds", warmup_secs)
                .field("window_ms", window_ms)
                .field("repeats", u64::try_from(repeats).unwrap_or(u64::MAX))
                .field("shared_wall_seconds", t_shared)
                .field("unshared_wall_seconds", t_unshared)
                .field("speedup", speedup)
                .field("speedup_floor", floor)
                .field("speedup_floor_met", speedup >= floor)
                .field("digests_match", headline_match)
                .field(
                    "prefixes_shared",
                    u64::try_from(stats.prefixes_shared).unwrap_or(u64::MAX),
                )
                .field(
                    "cells_resumed",
                    u64::try_from(stats.cells_resumed).unwrap_or(u64::MAX),
                )
                .field(
                    "warmup_avoided_seconds",
                    stats.warmup_avoided.as_secs_f64(),
                )
                .field(
                    "snapshot_size_bytes",
                    u64::try_from(snapshot_bytes).unwrap_or(u64::MAX),
                )
                .build(),
        )
        .field(
            "resume_parity",
            ObjectBuilder::new()
                .field("combinations", matrix_cells)
                .field("matching", matrix_matches)
                .field("all_match", matrix_matches == matrix_cells)
                .field("matrix", matrix)
                .build(),
        )
        .field("peak_rss_bytes", peak_rss_bytes())
        .build();
    write_json_report(&opts.out, &doc);
}
