//! `overload_baseline` — the overload control plane's evidence, in one
//! JSON file.
//!
//! Runs the flash-crowd scenario (two replicas at half quota, ~70 rps of
//! capacity, hit by a 400 rps crowd) with the overload plane armed and
//! disarmed, and writes `BENCH_5.json` with:
//!
//! 1. **Goodput and waste, control on vs off** — completions inside SLO
//!    per steady-state second and GPU-seconds burned on replies that
//!    missed their SLO anyway. The hard bars, asserted in-job: goodput is
//!    *strictly higher* and wasted work *strictly lower* with the control
//!    plane on.
//! 2. **Overload accounting** — rejected (bounded admission), shed
//!    (deadline-aware), browned-out servings and breaker trips, plus the
//!    conservation identity over arrivals.
//! 3. **Determinism matrix** — every cell of
//!    {control on/off} × {fast-forward on/off} × {clean/chaos} replayed
//!    through `run_sweep` at 1 and 4 threads; digests must be
//!    byte-identical per cell across thread counts and replays, and the
//!    fast-forward pair of each cell must agree byte-for-byte.
//!
//! ```text
//! overload_baseline             # full run, writes BENCH_5.json
//! overload_baseline --quick     # shorter crowd (CI smoke)
//! overload_baseline --out FILE  # write somewhere else
//! ```

use fastg_bench::flash_crowd_scenario;
use fastg_bench::harness::{parse_bin_args, peak_rss_bytes, write_json_report};
use fastg_des::SimTime;
use fastg_json::ObjectBuilder;
use fastgshare::platform::{run_sweep, FaultKind, FaultPlan, PlatformReport};

const BASE_RPS: f64 = 30.0;
const PEAK_RPS: f64 = 400.0;
const SEED: u64 = 61;

/// A chaos plan layered on the crowd: one pod dies mid-ramp and a node
/// browns out thermally during the hold, recovering in the tail.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .at(SimTime::from_millis(5_500), FaultKind::PodCrash { func_index: 0 })
        .at(
            SimTime::from_secs(8),
            FaultKind::NodeDegrade {
                node_index: 1,
                factor: 1.5,
            },
        )
        .at(SimTime::from_secs(13), FaultKind::NodeRecover { node_index: 1 })
}

/// The per-run numbers the JSON (and the hard bars) are built from.
struct Outcome {
    goodput_rps: f64,
    good_completions: u64,
    wasted_service: SimTime,
    arrivals: u64,
    completed: u64,
    rejected: u64,
    shed_deadline: u64,
    dropped: u64,
    browned_out: u64,
    breaker_trips: u64,
    p99: SimTime,
    digest: u64,
}

fn outcome(report: &PlatformReport) -> Outcome {
    let fr = report
        .functions
        .values()
        .next()
        .expect("flash scenario has one function");
    Outcome {
        goodput_rps: fr.goodput_rps,
        good_completions: fr.good_completions,
        wasted_service: fr.wasted_service,
        arrivals: fr.arrivals,
        completed: fr.completed,
        rejected: fr.rejected,
        shed_deadline: fr.shed_deadline,
        dropped: fr.dropped,
        browned_out: fr.browned_out,
        breaker_trips: fr.breaker_trips,
        p99: fr.p99,
        digest: report.digest(),
    }
}

fn outcome_json(o: &Outcome) -> fastg_json::Value {
    ObjectBuilder::new()
        .field("goodput_rps", o.goodput_rps)
        .field("good_completions", o.good_completions)
        .field("wasted_service_seconds", o.wasted_service.as_secs_f64())
        .field("arrivals", o.arrivals)
        .field("completed", o.completed)
        .field("rejected", o.rejected)
        .field("shed_deadline", o.shed_deadline)
        .field("dropped", o.dropped)
        .field("browned_out", o.browned_out)
        .field("breaker_trips", o.breaker_trips)
        .field("p99_ms", o.p99.as_millis_f64())
        .field("digest", format!("{:016x}", o.digest))
        .build()
}

fn main() {
    let opts = parse_bin_args("overload_baseline", "BENCH_5.json");
    let seconds = if opts.quick { 15 } else { 30 };

    // 1. The headline pair: the same crowd with the plane on and off.
    let run = |control: bool| -> Outcome {
        let name = if control { "flash/on" } else { "flash/off" };
        let report = flash_crowd_scenario(
            name, control, true, None, BASE_RPS, PEAK_RPS, seconds, SEED,
        )
        .run()
        .expect("flash crowd runs");
        outcome(&report)
    };
    let on = run(true);
    let off = run(false);

    assert!(
        on.goodput_rps > off.goodput_rps,
        "goodput hard bar: on {:.2} rps must beat off {:.2} rps",
        on.goodput_rps,
        off.goodput_rps
    );
    assert!(
        on.wasted_service < off.wasted_service,
        "waste hard bar: on {} must be below off {}",
        on.wasted_service,
        off.wasted_service
    );
    assert!(on.rejected > 0, "the crowd never hit the admission bound");
    assert!(on.shed_deadline > 0, "deadline shedding never engaged");
    assert!(on.breaker_trips > 0, "the breaker never tripped");
    println!(
        "flash crowd ({seconds}s, {BASE_RPS}->{PEAK_RPS} rps): control on \
         goodput {:.2} rps / waste {:.2}s, off goodput {:.2} rps / waste {:.2}s",
        on.goodput_rps,
        on.wasted_service.as_secs_f64(),
        off.goodput_rps,
        off.wasted_service.as_secs_f64(),
    );
    println!(
        "overload accounting (on): rejected {} shed {} browned-out {} trips {}",
        on.rejected, on.shed_deadline, on.browned_out, on.breaker_trips,
    );

    // 2. Determinism matrix: each {control, chaos} cell replayed at 1 and
    //    4 sweep threads and across fast-forward, all digest-compared.
    let mut matrix = Vec::new();
    let mut all_match = true;
    for (control, chaos) in [(true, false), (false, false), (true, true), (false, true)] {
        let plan = chaos.then(chaos_plan);
        let cell = |ff: bool| {
            let label = format!(
                "flash/{}{}/ff-{}",
                if control { "on" } else { "off" },
                if chaos { "/chaos" } else { "" },
                if ff { "on" } else { "off" },
            );
            flash_crowd_scenario(
                label, control, ff, plan.clone(), BASE_RPS, PEAK_RPS, seconds, SEED,
            )
        };
        let grid = || vec![cell(true), cell(false)];
        let t1 = run_sweep(grid(), 1).expect("sweep t1");
        let t4 = run_sweep(grid(), 4).expect("sweep t4");
        let thread_parity = t1
            .iter()
            .zip(&t4)
            .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.digest() == r2.digest());
        let ff_parity = t1[0].1.canonical_text() == t1[1].1.canonical_text();
        let replay = run_sweep(grid(), 1).expect("sweep replay");
        let replay_parity = t1
            .iter()
            .zip(&replay)
            .all(|((_, r1), (_, r2))| r1.digest() == r2.digest());
        all_match &= thread_parity && ff_parity && replay_parity;
        println!(
            "determinism {}: threads {} ff {} replay {}",
            t1[0].0, thread_parity, ff_parity, replay_parity,
        );
        matrix.push(
            ObjectBuilder::new()
                .field("control", control)
                .field("chaos", chaos)
                .field("digest", format!("{:016x}", t1[0].1.digest()))
                .field("threads_1_vs_4_match", thread_parity)
                .field("fastforward_parity", ff_parity)
                .field("replay_match", replay_parity)
                .build(),
        );
    }
    assert!(all_match, "overload determinism matrix has a diverging cell");

    let doc = ObjectBuilder::new()
        .field("bench", "overload_baseline")
        .field("quick", opts.quick)
        .field(
            "scenario",
            ObjectBuilder::new()
                .field("base_rps", BASE_RPS)
                .field("peak_rps", PEAK_RPS)
                .field("seconds", seconds)
                .field("seed", SEED)
                .field("capacity_rps_approx", 70.0)
                .build(),
        )
        .field("control_on", outcome_json(&on))
        .field("control_off", outcome_json(&off))
        .field(
            "hard_bars",
            ObjectBuilder::new()
                .field("goodput_on_gt_off", on.goodput_rps > off.goodput_rps)
                .field("waste_on_lt_off", on.wasted_service < off.wasted_service)
                .field(
                    "goodput_gain",
                    on.goodput_rps / off.goodput_rps.max(f64::MIN_POSITIVE),
                )
                .build(),
        )
        .field("determinism_matrix", matrix)
        .field("determinism_all_match", all_match)
        .field("peak_rss_bytes", peak_rss_bytes())
        .build();
    write_json_report(&opts.out, &doc);
}
