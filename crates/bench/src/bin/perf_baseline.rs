//! `perf_baseline` — the PR's wall-clock evidence, in one JSON file.
//!
//! Measures two things and writes them to `BENCH_3.json`:
//!
//! 1. **`micro_des` single-run throughput** — the `platform_second`
//!    scenario from `benches/micro_des.rs` (1 node, 4 ResNet pods at
//!    12 %, 120 req/s Poisson, one simulated second), reported as
//!    events/second of wall-clock time. This is the hot path the DES
//!    optimizations target.
//! 2. **Sweep speedup** — a grid of sharing scenarios run through
//!    `run_sweep` at `threads = 1` and `threads = 4`, with the digest of
//!    every report compared across thread counts (they must be
//!    byte-identical) and the wall-clock ratio reported as the speedup.
//!    The host CPU count is recorded alongside: on a single-core
//!    container the speedup is honestly ~1×.
//!
//! ```text
//! perf_baseline             # full measurement, writes BENCH_3.json
//! perf_baseline --quick     # smaller grid / fewer repeats (CI smoke)
//! perf_baseline --out FILE  # write somewhere else
//! ```
//!
//! Timing uses best-of-N wall clock, which is robust against scheduler
//! noise on shared runners.

use fastg_bench::sharing_scenario;
use fastg_des::SimTime;
use fastg_json::ObjectBuilder;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{run_sweep, FunctionConfig, Platform, PlatformConfig, Scenario};
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    quick: bool,
    out: PathBuf,
}

fn parse_args() -> Options {
    let default_out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_3.json");
    let mut opts = Options {
        quick: false,
        out: default_out,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                let path = args.next().expect("--out needs a file argument");
                opts.out = PathBuf::from(path);
            }
            other => {
                eprintln!("usage: perf_baseline [--quick] [--out FILE] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The `micro_des` platform-second: returns events handled.
fn platform_second() -> u64 {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(3));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .expect("deploys");
    p.set_load(f, ArrivalProcess::poisson(120.0, 4));
    p.run_for(SimTime::from_secs(1));
    p.events_handled()
}

/// Best-of-N wall-clock seconds for `f`, plus its (stable) return value.
fn best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let v = f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        value = Some(v);
    }
    (best, value.expect("at least one repeat"))
}

fn sweep_grid(quick: bool) -> Vec<Scenario> {
    let (models, seconds): (&[&str], u64) = if quick {
        (&["resnet50"], 1)
    } else {
        (&["resnet50", "rnnt"], 3)
    };
    let mut grid = Vec::new();
    for model in models {
        for pods in [1usize, 2, 4, 8] {
            grid.push(sharing_scenario(
                format!("{model}/{pods}pods"),
                SharingPolicy::FaST,
                model,
                pods,
                12.0,
                seconds,
                1001,
            ));
        }
    }
    grid
}

fn main() {
    let opts = parse_args();
    let repeats = if opts.quick { 2 } else { 5 };
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);

    // 1. micro_des single-run throughput.
    let (des_secs, events) = best_of(repeats, platform_second);
    let events_per_sec = events as f64 / des_secs;
    println!(
        "micro_des: {events} events in {:.3} ms best-of-{repeats} ({events_per_sec:.0} events/s)",
        des_secs * 1e3
    );

    // 2. Sweep wall clock at 1 vs 4 threads, with digest parity.
    let scenarios = sweep_grid(opts.quick).len();
    let (t1, reports_1) =
        best_of(repeats, || run_sweep(sweep_grid(opts.quick), 1).expect("sweep t1"));
    let (t4, reports_4) =
        best_of(repeats, || run_sweep(sweep_grid(opts.quick), 4).expect("sweep t4"));
    let digests_match = reports_1.len() == reports_4.len()
        && reports_1
            .iter()
            .zip(&reports_4)
            .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.digest() == r2.digest());
    assert!(digests_match, "sweep digests diverged across thread counts");
    let speedup = t1 / t4;
    println!(
        "sweep ({scenarios} scenarios): threads=1 {:.3} s, threads=4 {:.3} s, speedup {speedup:.2}x \
         (host has {cpus} cpus), digests match: {digests_match}",
        t1, t4
    );

    let doc = ObjectBuilder::new()
        .field("bench", "perf_baseline")
        .field("quick", opts.quick)
        .field("host_cpus", u64::try_from(cpus).unwrap_or(u64::MAX))
        .field("repeats", u64::try_from(repeats).unwrap_or(u64::MAX))
        .field(
            "micro_des",
            ObjectBuilder::new()
                .field("events", events)
                .field("wall_seconds", des_secs)
                .field("events_per_sec", events_per_sec)
                .build(),
        )
        .field(
            "sweep",
            ObjectBuilder::new()
                .field("scenarios", u64::try_from(scenarios).unwrap_or(u64::MAX))
                .field("threads_1_seconds", t1)
                .field("threads_4_seconds", t4)
                .field("speedup_4_vs_1", speedup)
                .field("digests_match", digests_match)
                .build(),
        )
        .build();
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&opts.out, text).expect("write BENCH_3.json");
    println!("wrote {}", opts.out.display());
}
