//! `perf_baseline` — the PR's wall-clock evidence, in one JSON file.
//!
//! Measures three things and writes them to `BENCH_4.json`:
//!
//! 1. **`micro_des` throughput, fast-forward on vs off** — the
//!    `platform_second` scenario from `benches/micro_des.rs` (1 node,
//!    4 ResNet pods at 12 %, 120 req/s Poisson) run for several simulated
//!    seconds with event coalescing enabled and disabled. Both modes must
//!    produce a byte-identical canonical report (the parity hard bar);
//!    the headline metric is platform-seconds simulated per wall-clock
//!    second with coalescing on.
//! 2. **Coalescing effectiveness** — how many bursts became macro-events,
//!    how many per-kernel completions they absorbed, and the fraction of
//!    events that never had to exist (`1 - events_on / events_off`).
//! 3. **Sweep speedup** — a grid of sharing scenarios run through
//!    `run_sweep` at `threads = 1` and `threads = 4`, with the digest of
//!    every report compared across thread counts (they must be
//!    byte-identical) and the wall-clock ratio reported as the speedup.
//!    The host CPU count and the `fastg-par` resolved worker count are
//!    recorded alongside: on a single-core container the speedup is
//!    honestly ~1×.
//!
//! ```text
//! perf_baseline             # full measurement, writes BENCH_4.json
//! perf_baseline --quick     # smaller grid / fewer repeats (CI smoke)
//! perf_baseline --out FILE  # write somewhere else
//! ```
//!
//! Timing uses best-of-N wall clock, which is robust against scheduler
//! noise on shared runners.

use fastg_bench::harness::{best_of, parse_bin_args, peak_rss_bytes, write_json_report};
use fastg_bench::sharing_scenario;
use fastg_des::SimTime;
use fastg_json::ObjectBuilder;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{run_sweep, FunctionConfig, Platform, PlatformConfig, Scenario};

/// One `micro_des` run outcome: enough to time it and to prove parity.
/// Canonical-text rendering happens outside the timed region (the metric
/// is simulation throughput, not report serialization).
struct MicroRun {
    events: u64,
    report: fastgshare::platform::PlatformReport,
    ff_bursts: u64,
    coalesced_kernels: u64,
}

/// The `micro_des` scenario run for `sim_secs` simulated seconds with
/// fast-forward forced on or off.
fn platform_seconds(sim_secs: u64, fastforward: bool) -> MicroRun {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .seed(3)
            .fastforward(fastforward),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .expect("deploys");
    p.set_load(f, ArrivalProcess::poisson(120.0, 4));
    let report = p.run_for(SimTime::from_secs(sim_secs));
    MicroRun {
        events: p.events_handled(),
        report,
        ff_bursts: p.ff_bursts(),
        coalesced_kernels: p.coalesced_kernels(),
    }
}

fn sweep_grid(quick: bool) -> Vec<Scenario> {
    let (models, seconds): (&[&str], u64) = if quick {
        (&["resnet50"], 1)
    } else {
        (&["resnet50", "rnnt"], 3)
    };
    let mut grid = Vec::new();
    for model in models {
        for pods in [1usize, 2, 4, 8] {
            grid.push(sharing_scenario(
                format!("{model}/{pods}pods"),
                SharingPolicy::FaST,
                model,
                pods,
                12.0,
                seconds,
                1001,
            ));
        }
    }
    grid
}

fn main() {
    let opts = parse_bin_args("perf_baseline", "BENCH_4.json");
    let repeats = if opts.quick { 2 } else { 5 };
    let sim_secs = if opts.quick { 5 } else { 20 };
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let threads_resolved = fastg_par::resolve_threads(None);

    // 1. micro_des throughput with the coalescing layer on and off. The
    //    canonical report text must be byte-identical in both modes — the
    //    fast-forward parity hard bar, asserted in-job.
    let (t_on, on) = best_of(repeats, || platform_seconds(sim_secs, true));
    let (t_off, off) = best_of(repeats, || platform_seconds(sim_secs, false));
    let digests_match = on.report.canonical_text() == off.report.canonical_text();
    assert!(digests_match, "fast-forward parity broke in micro_des");
    assert!(on.ff_bursts > 0, "fast-forward never engaged in micro_des");
    assert_eq!(off.ff_bursts, 0, "disabled fast-forward coalesced a burst");
    let platform_secs_per_sec_on = sim_secs as f64 / t_on;
    let platform_secs_per_sec_off = sim_secs as f64 / t_off;
    let event_ratio = 1.0 - on.events as f64 / off.events as f64;
    println!(
        "micro_des ({sim_secs} platform-seconds, best-of-{repeats}): \
         ff-on {:.3} ms ({platform_secs_per_sec_on:.0} platform-s/s, {} events), \
         ff-off {:.3} ms ({platform_secs_per_sec_off:.0} platform-s/s, {} events)",
        t_on * 1e3,
        on.events,
        t_off * 1e3,
        off.events,
    );
    println!(
        "coalescing: {} bursts absorbed {} kernel completions \
         ({:.1}% of ff-off events never existed), digests match: {digests_match}",
        on.ff_bursts,
        on.coalesced_kernels,
        event_ratio * 100.0,
    );

    // 2. Sweep wall clock at 1 vs 4 threads, with digest parity.
    let scenarios = sweep_grid(opts.quick).len();
    let (t1, reports_1) =
        best_of(repeats, || run_sweep(sweep_grid(opts.quick), 1).expect("sweep t1"));
    let (t4, reports_4) =
        best_of(repeats, || run_sweep(sweep_grid(opts.quick), 4).expect("sweep t4"));
    let sweep_match = reports_1.len() == reports_4.len()
        && reports_1
            .iter()
            .zip(&reports_4)
            .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.digest() == r2.digest());
    assert!(sweep_match, "sweep digests diverged across thread counts");
    // A single-core host cannot measure parallel speedup: threads=4 just
    // time-slices one CPU and the ratio is scheduler noise. Report that
    // honestly instead of publishing a fake `speedup_4_vs_1`.
    let parallel_honest = cpus >= 2;
    let speedup = t1 / t4;
    if parallel_honest {
        println!(
            "sweep ({scenarios} scenarios): threads=1 {:.3} s, threads=4 {:.3} s, speedup {speedup:.2}x \
             (host has {cpus} cpus, {threads_resolved} workers resolved), digests match: {sweep_match}",
            t1, t4
        );
    } else {
        println!(
            "sweep ({scenarios} scenarios): threads=1 {:.3} s, threads=4 {:.3} s on a \
             single-core host — speedup not meaningful (parallel_honest=false), \
             digests match: {sweep_match}",
            t1, t4
        );
    }

    let doc = ObjectBuilder::new()
        .field("bench", "perf_baseline")
        .field("quick", opts.quick)
        .field("host_cpus", u64::try_from(cpus).unwrap_or(u64::MAX))
        .field(
            "threads_resolved",
            u64::try_from(threads_resolved).unwrap_or(u64::MAX),
        )
        .field("repeats", u64::try_from(repeats).unwrap_or(u64::MAX))
        .field(
            "micro_des",
            ObjectBuilder::new()
                .field("sim_seconds", sim_secs)
                .field("digests_match", digests_match)
                .field(
                    "ff_on",
                    ObjectBuilder::new()
                        .field("events", on.events)
                        .field("wall_seconds", t_on)
                        .field("events_per_sec", on.events as f64 / t_on)
                        .field("platform_seconds_per_sec", platform_secs_per_sec_on)
                        .build(),
                )
                .field(
                    "ff_off",
                    ObjectBuilder::new()
                        .field("events", off.events)
                        .field("wall_seconds", t_off)
                        .field("events_per_sec", off.events as f64 / t_off)
                        .field("platform_seconds_per_sec", platform_secs_per_sec_off)
                        .build(),
                )
                .field(
                    "coalescing",
                    ObjectBuilder::new()
                        .field("ff_bursts", on.ff_bursts)
                        .field("coalesced_kernels", on.coalesced_kernels)
                        .field("event_ratio", event_ratio)
                        .field("wall_speedup_on_vs_off", t_off / t_on)
                        .build(),
                )
                .build(),
        )
        .field("sweep", {
            let mut sweep = ObjectBuilder::new()
                .field("scenarios", u64::try_from(scenarios).unwrap_or(u64::MAX))
                .field("threads_1_seconds", t1)
                .field("threads_4_seconds", t4)
                .field("parallel_honest", parallel_honest);
            // Only publish a speedup a multi-core host actually measured.
            if parallel_honest {
                sweep = sweep.field("speedup_4_vs_1", speedup);
            }
            sweep.field("digests_match", sweep_match).build()
        })
        .field("peak_rss_bytes", peak_rss_bytes())
        .build();
    write_json_report(&opts.out, &doc);
}
