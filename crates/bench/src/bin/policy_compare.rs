//! `policy_compare` — the scheduler-policy evaluation grid.
//!
//! Runs all four placement policies (the paper's Algorithm 1 reference,
//! the guillotine fast path, ParvaGPU-style demand matching, and
//! Tally-style priority co-location) over the standard two-scenario grid
//! (Figure 11 mixed packing + latency-critical/best-effort co-location),
//! printing one throughput / SLO-violation / fragmentation line per
//! cell.
//!
//! The rendered grid is canonical — floats appear rounded *and* as bit
//! patterns, nothing wall-clock enters it — and the run asserts, in-run,
//! that it is byte-identical:
//!
//! * across worker-thread counts (cells fanned out via
//!   `fastg_par::par_map` at 1 vs 4 threads), and
//! * across all four event tie-break orders (FIFO, LIFO, and two seeded
//!   shuffles).
//!
//! ```text
//! policy_compare             # full grid
//! policy_compare --quick     # smaller grid (CI smoke)
//! ```

use fastgshare::manager::SchedPolicy;
use fastgshare::platform::{run_policy_cell, standard_grid, CompareReport, TieBreak};

struct Options {
    quick: bool,
}

fn parse_args() -> Options {
    let mut opts = Options { quick: false };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            other => {
                eprintln!("usage: policy_compare [--quick] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }
    opts
}

const POLICIES: [SchedPolicy; 4] = [
    SchedPolicy::Paper,
    SchedPolicy::FastPath,
    SchedPolicy::DemandMatch,
    SchedPolicy::PriorityColocate,
];

/// Runs the whole grid with cells fanned across `threads` workers.
fn grid_at(quick: bool, tiebreak: TieBreak, threads: usize) -> CompareReport {
    let (scale, seconds) = if quick { (1, 2) } else { (2, 8) };
    let scenarios = standard_grid(scale, seconds, 29);
    let mut jobs = Vec::new();
    for sc in &scenarios {
        for &policy in &POLICIES {
            jobs.push((policy, *sc));
        }
    }
    let cells = fastg_par::par_map(jobs, threads, move |_, (policy, sc)| {
        run_policy_cell(policy, &sc, tiebreak).expect("policy cell runs")
    })
    .expect("policy grid fan-out");
    CompareReport { cells }
}

fn main() {
    let opts = parse_args();

    // The reference rendering: FIFO tie-breaks, single-threaded.
    let reference = grid_at(opts.quick, TieBreak::Fifo, 1).render();
    print!("{reference}");

    // Thread-count invariance: the same grid fanned over 4 workers.
    let threaded = grid_at(opts.quick, TieBreak::Fifo, 4).render();
    assert_eq!(reference, threaded, "thread count leaked into the grid");

    // Tie-break invariance: adversarial same-instant event orders.
    for tb in [
        TieBreak::Lifo,
        TieBreak::SeededShuffle(1),
        TieBreak::SeededShuffle(2),
    ] {
        let perturbed = grid_at(opts.quick, tb, 2).render();
        assert_eq!(reference, perturbed, "tie-break {tb:?} leaked into the grid");
    }

    let cells = 1 + POLICIES.len() * 2; // header + policies × scenarios
    assert_eq!(reference.lines().count(), cells, "grid is missing cells");
    println!(
        "policy grid stable: {} cells byte-identical across 1/2/4 threads and 4 tie-break orders",
        cells - 1,
    );
}
