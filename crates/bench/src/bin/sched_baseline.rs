//! `sched_baseline` — scheduler fast-path evidence, in one JSON file.
//!
//! Measures two things and writes them to `BENCH_7.json`:
//!
//! 1. **The churn headline** — a 1200-node place/release storm driven
//!    straight through the `Scheduler` trait, once on the paper's
//!    maximal-rects reference (`NodeSelector` over `GpuRects`) and once
//!    on the guillotine arena (`ArenaScheduler` over `GuillotineAlloc` +
//!    free-capacity class index), same deterministic op sequence.
//!    Reports placement-ops/sec for both and asserts the arena's ≥ 10×
//!    speedup in-run (≥ 2× for the `--quick` CI smoke, which runs a
//!    fleet too small for the index to pay off fully).
//! 2. **Fleet digest parity** — a non-oversubscribed full-plane-demand
//!    fleet run end-to-end under `SchedPolicy::Paper` and
//!    `SchedPolicy::FastPath`. On full-plane demands both policies
//!    provably pick the lowest empty node, so the canonical platform
//!    reports must match byte for byte. Asserted in-run.
//!
//! ```text
//! sched_baseline             # full measurement, writes BENCH_7.json
//! sched_baseline --quick     # small storm / short fleet (CI smoke)
//! sched_baseline --out FILE  # write somewhere else
//! ```

use fastg_bench::harness::{parse_bin_args, peak_rss_bytes, write_json_report};
use fastg_bench::{churn_storm, parity_fleet, ChurnOutcome};
use fastg_des::SimTime;
use fastg_json::ObjectBuilder;
use fastgshare::manager::SchedPolicy;
use fastgshare::scheduler::{ArenaScheduler, NodeSelector, PlacementPolicy, Scheduler};
use std::time::Instant;

struct StormRun {
    outcome: ChurnOutcome,
    wall_seconds: f64,
    ops_per_sec: f64,
}

/// Runs the storm three times on fresh scheduler state and keeps the
/// fastest wall time: the storm itself is deterministic (identical
/// outcomes each repeat), so min-of-N only filters scheduler-external
/// noise out of the ops/sec ratio.
fn storm(mk: &dyn Fn() -> Box<dyn Scheduler>, nodes: usize, ops: u64, seed: u64) -> StormRun {
    let mut best: Option<StormRun> = None;
    for _ in 0..3 {
        let mut sched = mk();
        let t0 = Instant::now();
        let outcome = churn_storm(sched.as_mut(), nodes, ops, seed);
        let wall_seconds = t0.elapsed().as_secs_f64();
        if let Some(prev) = &best {
            assert_eq!(
                prev.outcome.placements, outcome.placements,
                "storm repeats diverged"
            );
        }
        if best.as_ref().map_or(true, |b| wall_seconds < b.wall_seconds) {
            best = Some(StormRun {
                outcome,
                wall_seconds,
                // Bench arithmetic on op counts far below 2^53.
                // fastg-lint: allow(no-lossy-cast)
                ops_per_sec: ops as f64 / wall_seconds.max(1e-9),
            });
        }
    }
    best.expect("three storm repeats ran")
}

fn storm_json(name: &str, run: &StormRun) -> fastg_json::Value {
    ObjectBuilder::new()
        .field("allocator", name)
        .field("wall_seconds", run.wall_seconds)
        .field("ops_per_sec", run.ops_per_sec)
        .field("placements", run.outcome.placements)
        .field("releases", run.outcome.releases)
        .field("rejects", run.outcome.rejects)
        .field("probes", run.outcome.probes)
        .field("exact_fallbacks", run.outcome.fallbacks)
        .field("used_area", run.outcome.used_area)
        .field(
            "gpus_in_use",
            u64::try_from(run.outcome.gpus_in_use).unwrap_or(u64::MAX),
        )
        .build()
}

fn main() {
    let opts = parse_bin_args("sched_baseline", "BENCH_7.json");

    // 1. The churn headline: identical op sequences through both
    //    allocators, wall-clock compared.
    let (nodes, ops) = if opts.quick {
        (96usize, 12_000u64)
    } else {
        (1200usize, 60_000u64)
    };
    let paper = storm(
        &|| Box::new(NodeSelector::new(PlacementPolicy::MaximalRectangles)),
        nodes,
        ops,
        41,
    );
    let fast = storm(
        &|| Box::new(ArenaScheduler::new(SchedPolicy::FastPath, false)),
        nodes,
        ops,
        41,
    );
    let speedup = fast.ops_per_sec / paper.ops_per_sec.max(1e-9);
    let floor = if opts.quick { 2.0 } else { 10.0 };
    println!(
        "churn storm: {nodes} nodes, {ops} ops — paper {:.0} ops/s ({} probes), \
         guillotine {:.0} ops/s ({} probes, {} fallbacks), speedup {speedup:.1}x",
        paper.ops_per_sec,
        paper.outcome.probes,
        fast.ops_per_sec,
        fast.outcome.probes,
        fast.outcome.fallbacks,
    );
    assert!(
        speedup >= floor,
        "guillotine speedup {speedup:.2}x below the {floor}x floor"
    );
    // Both allocators must keep their books consistent.
    for (name, run) in [("paper", &paper), ("guillotine", &fast)] {
        assert!(
            run.outcome.releases <= run.outcome.placements,
            "{name} released more than it placed"
        );
        assert!(run.outcome.used_area > 0, "{name} storm ended empty");
    }

    // 2. Fleet digest parity: Paper vs FastPath, byte-for-byte.
    let (fleet_nodes, fleet_secs) = if opts.quick { (12usize, 15u64) } else { (48, 45) };
    let runs = [SchedPolicy::Paper, SchedPolicy::FastPath].map(|sched| {
        let mut p = parity_fleet(fleet_nodes, 53, sched);
        let report = p.run_for(SimTime::from_secs(fleet_secs));
        (report.canonical_text(), report.digest(), p.scheduler_stats())
    });
    let [(paper_text, paper_digest, paper_stats), (fast_text, fast_digest, fast_stats)] = runs;
    assert_eq!(
        paper_text, fast_text,
        "paper vs fast-path fleet reports diverged"
    );
    assert_eq!(
        paper_stats.placements, fast_stats.placements,
        "allocators bound different pod counts"
    );
    assert!(paper_stats.placements > 0, "parity fleet placed nothing");
    println!(
        "fleet parity: ok ({fleet_nodes} nodes, {fleet_secs}s, {} placements, \
         digest {paper_digest:016x})",
        paper_stats.placements,
    );

    let rss = peak_rss_bytes();
    let doc = ObjectBuilder::new()
        .field("bench", "sched_baseline")
        .field("quick", opts.quick)
        .field(
            "churn",
            ObjectBuilder::new()
                .field("nodes", u64::try_from(nodes).unwrap_or(u64::MAX))
                .field("ops", ops)
                .field("paper", storm_json("paper-algo1", &paper))
                .field("guillotine", storm_json("fast-path", &fast))
                .field("speedup", speedup)
                .field("speedup_floor", floor)
                .field("speedup_floor_met", speedup >= floor)
                .build(),
        )
        .field(
            "parity",
            ObjectBuilder::new()
                .field("nodes", u64::try_from(fleet_nodes).unwrap_or(u64::MAX))
                .field("sim_seconds", fleet_secs)
                .field("digests_match", true)
                .field("digest_paper", paper_digest)
                .field("digest_fast", fast_digest)
                .field("placements", paper_stats.placements)
                .build(),
        )
        .field("peak_rss_bytes", rss)
        .build();
    write_json_report(&opts.out, &doc);
}
