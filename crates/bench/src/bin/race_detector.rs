//! Tie-break perturbation race detector.
//!
//! Runs every scenario of the determinism/chaos/overload/sweep matrix
//! under several tie-break orders (FIFO baseline, LIFO, two seeded
//! shuffles) and asserts that `PlatformReport::digest()` is identical
//! under all of them. A divergence means some handler depends on the
//! delivery order of same-instant events — a latent race. The detector
//! delta-debugs it to the first differently-ordered event and prints
//! both traces, then exits nonzero.
//!
//! ```text
//! cargo run --release -p fastg-bench --bin race_detector
//! ```

use std::process::ExitCode;

use fastg_bench::race::{detect_races, order_label, RaceOutcome, DEFAULT_ORDERS};

fn print_divergence(outcome: &RaceOutcome) {
    let Some(d) = &outcome.divergence else { return };
    println!("\n=== RACE in scenario `{}` ===", outcome.scenario);
    println!(
        "first divergent event: #{} (orders `{}` vs `{}`)",
        d.first_event, d.order_a, d.order_b
    );
    println!("--- trace under `{}` ---", d.order_a);
    for line in &d.context_a {
        println!("  {line}");
    }
    println!("--- trace under `{}` ---", d.order_b);
    for line in &d.context_b {
        println!("  {line}");
    }
    println!(
        "replay: FASTG_TIEBREAK={} cargo run -p fastg-bench --bin race_detector",
        d.order_b
    );
}

fn main() -> ExitCode {
    let orders: Vec<String> = DEFAULT_ORDERS.iter().map(|&tb| order_label(tb)).collect();
    println!("tie-break perturbation race detector");
    println!("orders: {}", orders.join(", "));

    let outcomes = match detect_races(&DEFAULT_ORDERS) {
        Ok(outcomes) => outcomes,
        Err(err) => {
            eprintln!("scenario failed to run: {err:?}");
            return ExitCode::FAILURE;
        }
    };

    let mut races = 0usize;
    println!("\n{:<28} {:>18}  status", "scenario", "digest(fifo)");
    for outcome in &outcomes {
        let base = outcome.digests.first().map_or(0, |&(_, d)| d);
        let status = if outcome.clean() { "ok" } else { "RACE" };
        println!("{:<28} {:>#18x}  {}", outcome.scenario, base, status);
        if !outcome.clean() {
            races += 1;
        }
    }
    for outcome in &outcomes {
        print_divergence(outcome);
    }

    if races == 0 {
        println!(
            "\nall {} scenarios digest-identical under {} tie-break orders",
            outcomes.len(),
            DEFAULT_ORDERS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{races} of {} scenarios diverge under tie-break perturbation",
            outcomes.len()
        );
        ExitCode::FAILURE
    }
}
