//! `fleet_baseline` — fleet-scale simulation evidence, in one JSON file.
//!
//! Measures three things and writes them to `BENCH_6.json`:
//!
//! 1. **Cluster fast-forward parity** — a mid-size fleet (Zipf-popularity
//!    constant loads, single-replica functions, one per node) run with
//!    cluster-level fast-forward on and off. Both modes must produce a
//!    byte-identical canonical report: crediting whole request cycles in
//!    closed form is a pure optimization. Asserted in-run.
//! 2. **The 10⁸-arrival headline** — a 1200-node fleet sized (via the
//!    aggregate constant rate) to serve at least 10⁸ platform-request
//!    arrivals, with cluster fast-forward on. Reports platform-seconds
//!    simulated per wall-clock second, the coalescing ratio (events that
//!    never had to be scheduled over the events an event-by-event run
//!    would deliver — asserted ≥ 95 %), and peak RSS (`VmHWM`).
//! 3. **Multi-core-honest sweep** — fleet scenarios with the *layered*
//!    arrival model (diurnal tail, flash-crowd head, regional-failover
//!    band) through `run_sweep` at `threads = 1` vs `4`, digests compared
//!    byte-for-byte. A parallel speedup is only claimed when
//!    `available_parallelism() ≥ 2`; a single-core host reports
//!    `parallel_honest = false` instead of scheduler noise.
//!
//! ```text
//! fleet_baseline             # full measurement, writes BENCH_6.json
//! fleet_baseline --quick     # small fleet / short horizon (CI smoke)
//! fleet_baseline --out FILE  # write somewhere else
//! ```
//!
//! `FASTG_FASTFORWARD=0` runs the same program with the device-level
//! coalescing layer off (cluster fast-forward requires it, so both layers
//! are off): the parity leg still passes — trivially, both runs are
//! event-by-event — and the headline drops its coalescing-ratio floor.

use fastg_bench::harness::{parse_bin_args, peak_rss_bytes, write_json_report};
use fastg_bench::{fleet_platform, fleet_sweep_scenario};
use fastg_des::SimTime;
use fastg_json::ObjectBuilder;
use fastgshare::platform::{run_sweep, PlatformConfig, Scenario};
use std::time::Instant;

struct FleetRun {
    canonical: String,
    arrivals: u64,
    events: u64,
    cycles: u64,
    coalesced: u64,
    wall_seconds: f64,
}

/// One fleet run: `nodes` nodes for `sim_secs` simulated seconds, with
/// cluster fast-forward on or off (on top of whatever device-level mode
/// `FASTG_FASTFORWARD` selected).
fn fleet_run(nodes: usize, sim_secs: u64, cluster_ff: bool) -> FleetRun {
    let (mut p, _) = fleet_platform(nodes, 61, cluster_ff);
    let t0 = Instant::now();
    let report = p.run_for(SimTime::from_secs(sim_secs));
    let wall_seconds = t0.elapsed().as_secs_f64();
    FleetRun {
        canonical: report.canonical_text(),
        arrivals: report.functions.values().map(|f| f.arrivals).sum(),
        events: p.events_handled(),
        cycles: p.ff_cluster_cycles(),
        coalesced: p.ff_cluster_coalesced_events(),
        wall_seconds,
    }
}

fn sweep_grid(quick: bool) -> Vec<Scenario> {
    let (count, nodes, seconds) = if quick { (2u64, 12, 8) } else { (4, 48, 30) };
    (0..count)
        .map(|i| fleet_sweep_scenario(format!("fleet-sweep-{i}"), nodes, seconds, 70 + i))
        .collect()
}

fn main() {
    let opts = parse_bin_args("fleet_baseline", "BENCH_6.json");
    let ff_enabled = PlatformConfig::default().fastforward;
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let threads_resolved = fastg_par::resolve_threads(None);

    // 1. Cluster fast-forward parity, asserted in-run. With the device
    //    layer disabled by the environment both runs are event-by-event
    //    and parity holds trivially (cluster FF requires the device FF).
    let (parity_nodes, parity_secs) = if opts.quick { (8, 20) } else { (24, 60) };
    let par_on = fleet_run(parity_nodes, parity_secs, true);
    let par_off = fleet_run(parity_nodes, parity_secs, false);
    assert_eq!(
        par_on.canonical, par_off.canonical,
        "cluster fast-forward parity broke on the fleet"
    );
    assert_eq!(par_off.cycles, 0, "disabled cluster fast-forward credited cycles");
    if ff_enabled {
        assert!(par_on.cycles > 0, "cluster fast-forward never engaged");
    }
    println!(
        "digest parity: ok ({parity_nodes} nodes, {parity_secs}s; \
         cluster-ff on: {} events / {} cycles credited, off: {} events)",
        par_on.events, par_on.cycles, par_off.events,
    );

    // 2. The headline fleet. Duration is sized from the aggregate rate so
    //    the run serves at least the arrival budget.
    let (nodes, target_arrivals) = if opts.quick {
        (32usize, 120_000u64)
    } else {
        (1200usize, 100_000_000u64)
    };
    let (_, total_rps) = fleet_platform(nodes, 61, ff_enabled);
    // Bounded by target/rate (~10^4 seconds), far inside u64.
    // fastg-lint: allow(no-lossy-cast)
    let sim_secs = ((target_arrivals as f64 * 1.02) / total_rps).ceil() as u64;
    let run = fleet_run(nodes, sim_secs, ff_enabled);
    assert!(
        run.arrivals >= target_arrivals,
        "undersized fleet: {} arrivals < {target_arrivals}",
        run.arrivals
    );
    // The coalescing ratio: events cluster FF never scheduled over the
    // events an event-by-event run would have delivered.
    let virtual_events = run.coalesced + run.events;
    let coalescing_ratio = if virtual_events > 0 {
        run.coalesced as f64 / virtual_events as f64
    } else {
        0.0
    };
    // The floor only binds when fast-forward is on; the FF=0 leg is the
    // event-by-event baseline and coalesces nothing by construction.
    let coalescing_floor_met = !ff_enabled || coalescing_ratio >= 0.95;
    assert!(
        coalescing_floor_met,
        "coalescing ratio {coalescing_ratio:.4} below the 0.95 floor"
    );
    let platform_secs_per_sec = sim_secs as f64 / run.wall_seconds;
    let rss = peak_rss_bytes();
    println!(
        "fleet headline: {nodes} nodes, {sim_secs} platform-seconds, {} arrivals, \
         {} events handled, {} cycles credited",
        run.arrivals, run.events, run.cycles,
    );
    println!(
        "throughput: {platform_secs_per_sec:.0} platform-s/s ({:.2}s wall), \
         coalescing ratio {coalescing_ratio:.4}, peak rss {:.0} MiB",
        run.wall_seconds,
        rss as f64 / (1024.0 * 1024.0),
    );

    // 3. Multi-core-honest sweep over the layered fleet scenarios.
    let scenarios = sweep_grid(opts.quick).len();
    let t0 = Instant::now();
    let reports_1 = run_sweep(sweep_grid(opts.quick), 1).expect("sweep t1");
    let t1 = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let reports_4 = run_sweep(sweep_grid(opts.quick), 4).expect("sweep t4");
    let t4 = t0.elapsed().as_secs_f64();
    let sweep_match = reports_1.len() == reports_4.len()
        && reports_1
            .iter()
            .zip(&reports_4)
            .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.digest() == r2.digest());
    assert!(sweep_match, "fleet sweep digests diverged across thread counts");
    let parallel_honest = cpus >= 2;
    if parallel_honest {
        println!(
            "sweep ({scenarios} layered fleets): threads=1 {t1:.3}s, threads=4 {t4:.3}s, \
             speedup {:.2}x ({cpus} cpus, {threads_resolved} workers), digests match: {sweep_match}",
            t1 / t4,
        );
    } else {
        println!(
            "sweep ({scenarios} layered fleets): threads=1 {t1:.3}s, threads=4 {t4:.3}s on a \
             single-core host — speedup not meaningful (parallel_honest=false), \
             digests match: {sweep_match}"
        );
    }

    let doc = ObjectBuilder::new()
        .field("bench", "fleet_baseline")
        .field("quick", opts.quick)
        .field("fastforward", ff_enabled)
        .field("host_cpus", u64::try_from(cpus).unwrap_or(u64::MAX))
        .field(
            "threads_resolved",
            u64::try_from(threads_resolved).unwrap_or(u64::MAX),
        )
        .field(
            "parity",
            ObjectBuilder::new()
                .field("nodes", u64::try_from(parity_nodes).unwrap_or(u64::MAX))
                .field("sim_seconds", parity_secs)
                .field("digests_match", true)
                .field("cluster_ff_cycles", par_on.cycles)
                .field("events_on", par_on.events)
                .field("events_off", par_off.events)
                .build(),
        )
        .field(
            "fleet",
            ObjectBuilder::new()
                .field("nodes", u64::try_from(nodes).unwrap_or(u64::MAX))
                .field("functions", u64::try_from(nodes).unwrap_or(u64::MAX))
                .field("sim_seconds", sim_secs)
                .field("arrivals", run.arrivals)
                .field("events_handled", run.events)
                .field("cluster_ff_cycles", run.cycles)
                .field("coalesced_events", run.coalesced)
                .field("coalescing_ratio", coalescing_ratio)
                .field("coalescing_floor_met", coalescing_floor_met)
                .field("wall_seconds", run.wall_seconds)
                .field("platform_seconds_per_sec", platform_secs_per_sec)
                .field("peak_rss_bytes", rss)
                .build(),
        )
        .field("sweep", {
            let mut sweep = ObjectBuilder::new()
                .field("scenarios", u64::try_from(scenarios).unwrap_or(u64::MAX))
                .field("threads_1_seconds", t1)
                .field("threads_4_seconds", t4)
                .field("parallel_honest", parallel_honest);
            if parallel_honest {
                sweep = sweep.field("speedup_4_vs_1", t1 / t4);
            }
            sweep.field("digests_match", sweep_match).build()
        })
        .field("peak_rss_bytes", rss)
        .build();
    write_json_report(&opts.out, &doc);
}
