//! Tie-break perturbation race detection (the DES's ThreadSanitizer).
//!
//! `EventQueue` breaks equal-time ties deterministically, so a handler
//! whose outcome depends on same-instant delivery order is *accidentally*
//! deterministic: one reordering away from a digest change. The detector
//! makes that a checked property. It runs every scenario of the
//! determinism/chaos/overload/sweep matrix under several [`TieBreak`]
//! orders and compares [`PlatformReport::digest`]s; a divergence is
//! delta-debugged by re-running the two orders with event tracing on and
//! locating the first differently-ordered event.
//!
//! [`PlatformReport::digest`]: fastgshare::platform::PlatformReport::digest

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{
    FaultKind, FaultPlan, FunctionConfig, PlatformConfig, PlatformError, Scenario, TieBreak,
};

use crate::flash_crowd_scenario;

/// The default perturbation set: FIFO (baseline) plus three adversarial
/// orders. Shuffle seeds are arbitrary fixed constants; each scenario
/// additionally folds its own config seed into the permutation.
pub const DEFAULT_ORDERS: [TieBreak; 4] = [
    TieBreak::Fifo,
    TieBreak::Lifo,
    TieBreak::SeededShuffle(1),
    TieBreak::SeededShuffle(2),
];

/// Human-readable label for a tie-break order (also the
/// `FASTG_TIEBREAK` syntax that selects it).
pub fn order_label(tb: TieBreak) -> String {
    match tb {
        TieBreak::Fifo => "fifo".to_string(),
        TieBreak::Lifo => "lifo".to_string(),
        TieBreak::SeededShuffle(s) => format!("shuffle:{s}"),
    }
}

/// The chaos plan shared by the fault-injected matrix entries (mirrors
/// the determinism suite: pod crash, node degrade, node crash, recover).
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .at(SimTime::from_secs(1), FaultKind::PodCrash { func_index: 0 })
        .at(
            SimTime::from_secs(2),
            FaultKind::NodeDegrade {
                node_index: 1,
                factor: 2.0,
            },
        )
        .at(SimTime::from_secs(3), FaultKind::NodeCrash { node_index: 0 })
        .at(SimTime::from_secs(4), FaultKind::NodeRecover { node_index: 1 })
}

/// The mixed two-function workload the determinism fingerprint tests
/// replay, one scenario per sharing policy.
fn policy_scenarios() -> Vec<Scenario> {
    [
        SharingPolicy::FaST,
        SharingPolicy::SingleToken,
        SharingPolicy::Racing,
    ]
    .into_iter()
    .map(|policy| {
        Scenario::new(
            format!("policy-{policy:?}"),
            PlatformConfig::default()
                .nodes(2)
                .policy(policy)
                .oversubscribe(true)
                .seed(7),
        )
        .function(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(3)
                .resources(12.0, 0.5, 0.8),
        )
        .function(
            FunctionConfig::new("rnnt", "rnnt")
                .replicas(2)
                .resources(24.0, 0.4, 0.4),
        )
        .load(0, ArrivalProcess::poisson(60.0, 8))
        .load(1, ArrivalProcess::poisson(8.0, 9))
        .duration(SimTime::from_secs(4))
    })
    .collect()
}

/// Clean and chaotic single-function runs, fast-forward on and off (the
/// FF-parity suite's configuration).
fn chaos_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for fastforward in [true, false] {
        for chaos in [false, true] {
            let mut cfg = PlatformConfig::default()
                .nodes(2)
                .policy(SharingPolicy::FaST)
                .recovery(true)
                .seed(11)
                .fastforward(fastforward);
            if chaos {
                cfg = cfg.fault_plan(chaos_plan());
            }
            out.push(
                Scenario::new(
                    format!(
                        "chaos-ff{}-{}",
                        u8::from(fastforward),
                        if chaos { "faults" } else { "clean" }
                    ),
                    cfg,
                )
                .function(
                    FunctionConfig::new("resnet", "resnet50")
                        .replicas(2)
                        .resources(25.0, 0.5, 0.8),
                )
                .load(0, ArrivalProcess::poisson(50.0, 13))
                .duration(SimTime::from_secs(6)),
            );
        }
    }
    out
}

/// The seeded sweep grid (with faults) the parallel-sweep determinism
/// tests pin.
fn sweep_scenarios() -> Vec<Scenario> {
    [11u64, 12, 13]
        .into_iter()
        .map(|seed| {
            Scenario::new(
                format!("sweep-seed{seed}"),
                PlatformConfig::default()
                    .nodes(2)
                    .policy(SharingPolicy::FaST)
                    .recovery(true)
                    .seed(seed)
                    .fault_plan(chaos_plan()),
            )
            .function(
                FunctionConfig::new("resnet", "resnet50")
                    .replicas(2)
                    .resources(25.0, 0.5, 0.8),
            )
            .load(0, ArrivalProcess::poisson(50.0, seed.wrapping_add(2)))
            .duration(SimTime::from_secs(5))
        })
        .collect()
}

/// The fleet matrix: single-replica functions pinned one-per-node at
/// full quota (the cluster fast-forward steady envelope), cluster FF
/// {on, off} × {clean, chaos}. Steady-cycle crediting and the replay
/// machinery that re-materializes in-flight work at control-plane
/// touches must be tie-break clean like everything else.
fn fleet_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for cluster_ff in [true, false] {
        for chaos in [false, true] {
            let mut cfg = PlatformConfig::default()
                .nodes(3)
                .policy(SharingPolicy::FaST)
                .oversubscribe(true)
                .recovery(true)
                .cluster_fastforward(cluster_ff)
                .seed(23);
            if chaos {
                cfg = cfg.fault_plan(chaos_plan());
            }
            let mut sc = Scenario::new(
                format!(
                    "fleet-cff{}-{}",
                    u8::from(cluster_ff),
                    if chaos { "faults" } else { "clean" }
                ),
                cfg,
            );
            for (i, (name, model, rate)) in [
                ("fleet-resnet", "resnet50", 18.0),
                ("fleet-bert", "bert_base", 30.0),
                ("fleet-rnnt", "rnnt", 9.0),
            ]
            .into_iter()
            .enumerate()
            {
                sc = sc
                    .function(
                        FunctionConfig::new(name, model)
                            .replicas(1)
                            .resources(100.0, 1.0, 1.0),
                    )
                    .load(i, ArrivalProcess::constant(rate));
            }
            out.push(sc.duration(SimTime::from_secs(6)));
        }
    }
    out
}

/// The flash-crowd overload matrix: control {off, on} × fast-forward
/// {on, off} × {clean, chaos}.
fn overload_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for control in [false, true] {
        for fastforward in [true, false] {
            for chaos in [false, true] {
                out.push(flash_crowd_scenario(
                    format!(
                        "overload-c{}-ff{}-{}",
                        u8::from(control),
                        u8::from(fastforward),
                        if chaos { "faults" } else { "clean" }
                    ),
                    control,
                    fastforward,
                    chaos.then(chaos_plan),
                    30.0,
                    400.0,
                    8,
                    17,
                ));
            }
        }
    }
    out
}

/// Every scenario the detector perturbs: the determinism fingerprint
/// workloads, the chaos/FF-parity runs, the seeded sweep grid, the
/// overload matrix and the cluster fast-forward fleet matrix.
pub fn race_matrix() -> Vec<Scenario> {
    let mut all = policy_scenarios();
    all.extend(chaos_scenarios());
    all.extend(sweep_scenarios());
    all.extend(overload_scenarios());
    all.extend(fleet_scenarios());
    all
}

/// A context window around the first divergent event of two traces.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Tie-break order of the baseline run.
    pub order_a: String,
    /// Tie-break order of the diverging run.
    pub order_b: String,
    /// Index (0-based) of the first event delivered differently.
    pub first_event: usize,
    /// Baseline trace lines around (and including) the divergence.
    pub context_a: Vec<String>,
    /// Diverging trace lines around (and including) the divergence.
    pub context_b: Vec<String>,
}

/// One scenario's detector verdict: the digest under every order, plus a
/// delta-debugged divergence if any order disagreed with the baseline.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Scenario label from the matrix.
    pub scenario: String,
    /// `(order label, report digest)` per perturbation, baseline first.
    pub digests: Vec<(String, u64)>,
    /// First divergence found, already delta-debugged. `None` means the
    /// scenario is tie-break clean.
    pub divergence: Option<Divergence>,
}

impl RaceOutcome {
    /// Whether every perturbation reproduced the baseline digest.
    pub fn clean(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Lines of trace context shown on each side of a divergence.
const CONTEXT: usize = 6;

/// Runs `scenario` under `order` and returns its report digest.
fn digest_under(scenario: &Scenario, order: TieBreak) -> Result<u64, PlatformError> {
    let mut sc = scenario.clone();
    sc.config = sc.config.tiebreak(order);
    Ok(sc.run()?.digest())
}

/// Re-runs `scenario` under `order` with event tracing enabled.
fn trace_under(scenario: &Scenario, order: TieBreak) -> Result<Vec<String>, PlatformError> {
    let mut sc = scenario.clone();
    sc.config = sc.config.tiebreak(order).trace_events(true);
    Ok(sc.run_traced()?.1)
}

/// The timestamp prefix of a trace line (`"99570us KernelFinish(..)"`
/// → `"99570us"`).
fn stamp(line: &str) -> &str {
    line.split(' ').next().unwrap_or("")
}

/// Index of the first *semantic* divergence between two traces: the
/// start of the first same-instant group whose event multiset differs.
/// Reordering within an instant is exactly the perturbation under test,
/// so it is skipped; the interesting point is where the two runs start
/// delivering *different events*, not the same events shuffled.
fn first_semantic_divergence(ta: &[String], tb: &[String]) -> usize {
    let mut i = 0;
    while i < ta.len() && i < tb.len() {
        let t = stamp(&ta[i]);
        if t != stamp(&tb[i]) {
            return i;
        }
        let end_a = ta[i..].iter().take_while(|l| stamp(l) == t).count();
        let end_b = tb[i..].iter().take_while(|l| stamp(l) == t).count();
        let mut ga: Vec<&String> = ta[i..i + end_a].iter().collect();
        let mut gb: Vec<&String> = tb[i..i + end_b].iter().collect();
        ga.sort();
        gb.sort();
        if ga != gb {
            return i;
        }
        i += end_a;
    }
    i.min(ta.len().max(tb.len()).saturating_sub(1))
}

/// Delta-debugs two orders of one scenario to the first divergent event,
/// returning context windows from both traces.
fn delta_debug(
    scenario: &Scenario,
    base: TieBreak,
    diverged: TieBreak,
) -> Result<Divergence, PlatformError> {
    let ta = trace_under(scenario, base)?;
    let tb = trace_under(scenario, diverged)?;
    let first = first_semantic_divergence(&ta, &tb);
    let window = |t: &[String]| -> Vec<String> {
        let lo = first.saturating_sub(CONTEXT);
        let hi = (first + CONTEXT + 1).min(t.len());
        t.get(lo..hi).map(<[String]>::to_vec).unwrap_or_default()
    };
    Ok(Divergence {
        order_a: order_label(base),
        order_b: order_label(diverged),
        first_event: first,
        context_a: window(&ta),
        context_b: window(&tb),
    })
}

/// Runs one scenario under every order, comparing digests against the
/// first (baseline) order and delta-debugging the first divergence.
pub fn detect_races_in(
    scenario: &Scenario,
    orders: &[TieBreak],
) -> Result<RaceOutcome, PlatformError> {
    let mut digests = Vec::with_capacity(orders.len());
    let mut divergence = None;
    for &order in orders {
        let digest = digest_under(scenario, order)?;
        digests.push((order_label(order), digest));
    }
    if let Some(&(_, base_digest)) = digests.first() {
        if let Some(bad) = digests.iter().position(|&(_, d)| d != base_digest) {
            divergence = Some(delta_debug(scenario, orders[0], orders[bad])?);
        }
    }
    Ok(RaceOutcome {
        scenario: scenario.name.clone(),
        digests,
        divergence,
    })
}

/// Runs the whole matrix under every order. Outcomes come back in matrix
/// order; any non-clean outcome carries its delta-debugged divergence.
pub fn detect_races(orders: &[TieBreak]) -> Result<Vec<RaceOutcome>, PlatformError> {
    race_matrix()
        .iter()
        .map(|sc| detect_races_in(sc, orders))
        .collect()
}
