//! Shared scenario runners for the figure-regeneration benches.
//!
//! Each `benches/figNN_*.rs` harness prints the paper table/series it
//! regenerates (deterministically) and then lets Criterion time one
//! representative configuration. The scenario builders live here so the
//! benches stay declarative.

use fastg_cluster::{NodeId, PodId, ResourceSpec};
use fastg_des::SimTime;
use fastg_workload::{patterns, ArrivalProcess};
use fastgshare::manager::{SchedPolicy, SharingPolicy};
use fastgshare::scheduler::Scheduler;
use fastgshare::platform::{
    FaultPlan, FunctionConfig, OverloadConfig, Platform, PlatformConfig, PlatformError,
    PlatformReport, Scenario,
};
use fastgshare::profiler::{ProfileDb, ProfileKey, ProfileRecord};

pub mod harness;
pub mod race;

/// Outcome of one saturated sharing run (one function, one node).
#[derive(Debug, Clone, Copy)]
pub struct SharingOutcome {
    /// Total steady-state throughput (req/s).
    pub rps: f64,
    /// Median latency.
    pub p50: SimTime,
    /// Tail latency.
    pub p99: SimTime,
    /// Mean GPU utilization (0..=1).
    pub utilization: f64,
    /// Mean SM occupancy (0..=1).
    pub sm_occupancy: f64,
}

/// The one-node sharing run as a [`Scenario`], so a whole grid of them
/// can fan out over `fastg-par` via `run_sweep`.
pub fn sharing_scenario(
    name: impl Into<String>,
    policy: SharingPolicy,
    model: &str,
    pods: usize,
    sm_pct: f64,
    seconds: u64,
    seed: u64,
) -> Scenario {
    let pods = if policy == SharingPolicy::Exclusive { 1 } else { pods };
    Scenario::new(
        name,
        PlatformConfig::default()
            .nodes(1)
            .policy(policy)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(seed),
    )
    .function(
        FunctionConfig::new("bench", model)
            .replicas(pods)
            .resources(sm_pct, 1.0, 1.0)
            .saturating(),
    )
    .duration(SimTime::from_secs(1 + seconds))
}

/// The flash-crowd overload scenario: two replicas at half quota
/// (~70 rps capacity) on two nodes, hit by a crowd that ramps from
/// `base_rps` to `peak_rps` and holds — far beyond anything the scaler
/// could absorb. With `control` the overload plane (bounded admission,
/// deadline shedding, circuit breaker, brownout) is armed; without it the
/// platform queues silently without limit. An optional `FaultPlan` layers
/// node chaos on top of the crowd.
#[allow(clippy::too_many_arguments)]
pub fn flash_crowd_scenario(
    name: impl Into<String>,
    control: bool,
    fastforward: bool,
    plan: Option<FaultPlan>,
    base_rps: f64,
    peak_rps: f64,
    seconds: u64,
    seed: u64,
) -> Scenario {
    let mut cfg = PlatformConfig::default()
        .nodes(2)
        .policy(SharingPolicy::FaST)
        .warmup(SimTime::from_secs(1))
        .fastforward(fastforward)
        .seed(seed);
    if control {
        cfg = cfg.overload(OverloadConfig::default());
    }
    if let Some(plan) = plan {
        cfg = cfg.fault_plan(plan);
    }
    Scenario::new(name, cfg)
        .function(
            FunctionConfig::new("flash", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 0.8),
        )
        .load(
            0,
            patterns::flash_crowd(
                base_rps,
                peak_rps,
                SimTime::from_secs(5),
                SimTime::from_secs(1),
                SimTime::from_secs(5),
                SimTime::from_secs(seconds),
                1,
                seed.wrapping_add(1),
            ),
        )
        .duration(SimTime::from_secs(seconds))
}

/// Condenses a single-function, single-node report into the figure row.
pub fn sharing_outcome(report: &PlatformReport) -> Result<SharingOutcome, PlatformError> {
    let fr = report
        .functions
        .values()
        .next()
        .ok_or(PlatformError::Internal("sharing report has no function"))?;
    let node = report
        .nodes
        .first()
        .ok_or(PlatformError::Internal("sharing report has no node"))?;
    Ok(SharingOutcome {
        rps: fr.throughput_rps,
        p50: fr.p50,
        p99: fr.p99,
        utilization: node.utilization,
        sm_occupancy: node.sm_occupancy,
    })
}

/// Runs `pods` saturating replicas of `model` on one V100 under `policy`
/// with `sm_pct` SM partitions, measuring for `seconds` after 1 s warm-up.
pub fn run_sharing(
    policy: SharingPolicy,
    model: &str,
    pods: usize,
    sm_pct: f64,
    seconds: u64,
    seed: u64,
) -> Result<SharingOutcome, PlatformError> {
    let report = sharing_scenario("sharing", policy, model, pods, sm_pct, seconds, seed).run()?;
    sharing_outcome(&report)
}

/// Deploys the Figure 11 pod set (2 BERT + 2 RNNT + 4 ResNet, descending
/// area order) on a 4-node cluster under `policy`, saturating, and runs
/// for `seconds` after 1 s warm-up. Returns `(gpus bound, report)`.
pub fn run_fig11(
    policy: SharingPolicy,
    seconds: u64,
    seed: u64,
) -> Result<(usize, PlatformReport), PlatformError> {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(policy)
            .warmup(SimTime::from_secs(1))
            .seed(seed),
    );
    p.deploy(
        FunctionConfig::new("bert", "bert_base")
            .replicas(2)
            .resources(50.0, 0.6, 0.6)
            .saturating(),
    )?;
    p.deploy(
        FunctionConfig::new("rnnt", "rnnt")
            .replicas(2)
            .resources(24.0, 0.4, 0.4)
            .saturating(),
    )?;
    p.deploy(
        FunctionConfig::new("resnet", "resnet50")
            .replicas(4)
            .resources(12.0, 0.4, 0.4)
            .saturating(),
    )?;
    let gpus = p.gpus_in_use();
    let report = p.run_for(SimTime::from_secs(1 + seconds));
    Ok((gpus, report))
}

/// An analytic ResNet-50 profile database (Figure 8 shaped) for
/// auto-scaling scenarios.
pub fn resnet_profile_db() -> ProfileDb {
    let model = fastg_models::zoo::resnet50();
    let mut db = ProfileDb::new();
    for &(sm_pct, sms) in &[(6.0, 5u32), (12.0, 10), (24.0, 19), (50.0, 40)] {
        for &q in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            db.insert(
                "resnet50",
                ProfileKey::new(sm_pct, q),
                ProfileRecord {
                    rps: model.ideal_rps(sms, q),
                    p50: model.latency_at(sms),
                    p99: model.latency_at(sms) * 2,
                    utilization: 0.0,
                    sm_occupancy: 0.0,
                },
            );
        }
    }
    db
}

/// One Figure 12 auto-scaling interval: `(time, replicas, served_rate,
/// p99)`.
pub type ScalingSample = (u64, usize, f64, SimTime);

/// The Figure 12 auto-scaling scenario: returns per-interval
/// [`ScalingSample`]s and the final report.
pub fn run_autoscaling(
    seed: u64,
    intervals: usize,
    interval_secs: u64,
) -> Result<(Vec<ScalingSample>, PlatformReport), PlatformError> {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .warmup(SimTime::from_secs(2))
            .seed(seed),
    );
    let f = p.deploy(
        FunctionConfig::new("resnet", "resnet50")
            .slo_ms(69)
            .replicas(1)
            .resources(12.0, 0.4, 1.0),
    )?;
    p.enable_autoscaler(resnet_profile_db());
    let total = u64::try_from(intervals)
        .unwrap_or(u64::MAX)
        .saturating_mul(interval_secs);
    p.set_load(
        f,
        ArrivalProcess::profile(
            vec![
                (SimTime::ZERO, 10.0),
                (SimTime::from_secs(total / 6), 10.0),
                (SimTime::from_secs(total / 2), 130.0),
                (SimTime::from_secs(total * 2 / 3), 130.0),
                (SimTime::from_secs(total * 3 / 4), 40.0),
                (SimTime::from_secs(total), 40.0),
            ],
            seed,
        ),
    );
    let mut samples = Vec::new();
    let mut prev_completed = 0u64;
    let mut last = None;
    let mut elapsed = 0u64;
    for _ in 0..intervals {
        let report = p.run_for(SimTime::from_secs(interval_secs));
        let fr = &report.functions[&f];
        let served = (fr.completed - prev_completed) as f64 / interval_secs as f64;
        prev_completed = fr.completed;
        elapsed += interval_secs;
        samples.push((elapsed, fr.replicas, served, fr.p99));
        last = Some(report);
    }
    let last = last.ok_or(PlatformError::Internal("autoscaling needs >= 1 interval"))?;
    Ok((samples, last))
}

/// Formats a `SimTime` latency as milliseconds for tables.
pub fn ms(t: SimTime) -> String {
    format!("{:.1}ms", t.as_millis_f64())
}

// ----- fleet-scale scenarios ----------------------------------------

/// The fleet model menu: `(zoo name, min rps, max rps)`. The rate caps
/// keep a single full-GPU replica inside the steady envelope (constant
/// arrival gap strictly above the model's service latency), which is what
/// lets cluster fast-forward credit whole request cycles analytically.
pub const FLEET_MODELS: [(&str, f64, f64); 4] = [
    ("resnet50", 6.0, 60.0),
    ("bert_base", 6.0, 35.0),
    ("resnext101", 5.0, 22.0),
    ("gnmt", 5.0, 25.0),
];

/// Per-function `(model, constant rps)` assignments for a fleet of
/// `funcs` single-replica functions: Zipf-popularity rates (exponent 1.1)
/// clamped into each model's steady envelope, models assigned round-robin
/// by rank. Deterministic; the sum of rates sizes the arrival budget.
pub fn fleet_rates(funcs: usize) -> Vec<(&'static str, f64)> {
    fastg_workload::fleet::zipf_rates(funcs, funcs as f64 * 30.0, 1.1)
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let (model, lo, hi) = FLEET_MODELS[i % FLEET_MODELS.len()];
            (model, r.clamp(lo, hi))
        })
        .collect()
}

/// The fleet platform configuration: one function per node, quota
/// `(100 % SM, 1.0, 1.0)` so each replica owns its device, 1 s quota
/// windows and 2 s metric samples (the control-plane touch cadence that
/// bounds how many events a steady node still schedules), and a
/// pre-reserved event heap sized to the fleet. Device-level fast-forward
/// follows `FASTG_FASTFORWARD` (the `PlatformConfig` default), so the
/// `=0` CI leg really is event-by-event — cluster fast-forward requires
/// the device layer, so `cluster_ff` only takes effect on top of it.
pub fn fleet_config(nodes: usize, seed: u64, cluster_ff: bool) -> PlatformConfig {
    PlatformConfig::default()
        .nodes(nodes)
        .policy(SharingPolicy::FaST)
        .oversubscribe(true)
        .window(SimTime::from_secs(1))
        .sample_interval(SimTime::from_secs(2))
        .event_capacity(nodes * 4)
        .cluster_fastforward(cluster_ff)
        .seed(seed)
}

/// Builds the steady fleet and attaches its constant Zipf loads. Returns
/// the platform plus the aggregate arrival rate (rps), from which callers
/// size the duration needed to hit an arrival budget.
pub fn fleet_platform(nodes: usize, seed: u64, cluster_ff: bool) -> (Platform, f64) {
    let mut p = Platform::new(fleet_config(nodes, seed, cluster_ff));
    let mut total_rps = 0.0;
    for (i, (model, rate)) in fleet_rates(nodes).iter().enumerate() {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("fleet-{i:04}"), model)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            // Bench fixture constructor; a failed deploy is a bug in
            // the fixture itself. fastg-lint: allow(no-panic-in-lib)
            .expect("fleet function deploys");
        p.set_load(f, ArrivalProcess::constant(*rate));
        total_rps += rate;
    }
    (p, total_rps)
}

/// A non-oversubscribed fleet where every function demands the full
/// (100 % quota × 100 % SM) plane, so placement flows through the
/// pluggable scheduler instead of the oversubscribe least-loaded scan.
/// On full-plane demands the paper reference and the guillotine fast
/// path provably agree — an empty plane is the only feasible host and
/// both orderings reduce to "lowest empty node id" — so whole-run
/// canonical reports must match byte for byte across `sched` values.
pub fn parity_fleet(nodes: usize, seed: u64, sched: SchedPolicy) -> Platform {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(nodes)
            .policy(SharingPolicy::FaST)
            .scheduler(sched)
            .window(SimTime::from_secs(1))
            .sample_interval(SimTime::from_secs(2))
            .event_capacity(nodes * 4)
            .seed(seed),
    );
    for (i, (model, rate)) in fleet_rates(nodes).iter().enumerate() {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("fleet-{i:04}"), model)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            // Bench fixture constructor; a failed deploy is a bug in
            // the fixture itself. fastg-lint: allow(no-panic-in-lib)
            .expect("parity fleet function deploys");
        p.set_load(f, ArrivalProcess::constant(*rate));
    }
    p
}

// ----- scheduler churn storms ---------------------------------------

/// The churn pod menu: `(SM %, quota)` shapes spanning small slivers to
/// near-full planes, so storms exercise every size class of the arena's
/// free-capacity index.
pub const CHURN_SHAPES: [(f64, f64); 6] = [
    (50.0, 0.6),
    (24.0, 0.4),
    (12.0, 0.4),
    (6.0, 0.2),
    (25.0, 0.5),
    (95.0, 0.95),
];

/// The `i`-th storm pod's resource spec (menu round-robin).
pub fn churn_spec(i: u64) -> ResourceSpec {
    let (sm, q) = CHURN_SHAPES[usize::try_from(i).unwrap_or(0) % CHURN_SHAPES.len()];
    ResourceSpec::new(sm, q, q, 0)
}

/// Outcome of one churn storm, for cross-allocator comparison.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOutcome {
    /// Successful placements (select + bind).
    pub placements: u64,
    /// Releases performed.
    pub releases: u64,
    /// Demands no node could host.
    pub rejects: u64,
    /// Bound area across the cluster at storm end.
    pub used_area: u64,
    /// GPUs hosting at least one pod at storm end.
    pub gpus_in_use: usize,
    /// Per-node fit probes the selector performed.
    pub probes: u64,
    /// Placements that took the exact maximal-rects fallback.
    pub fallbacks: u64,
}

/// Drives `sched` through a deterministic place/release storm over
/// `nodes` fresh GPUs: `ops` operations, ~45 % of them releases of a
/// pseudo-randomly chosen live pod (xorshift64, seed-keyed — never
/// wall-clock), the rest placements off the [`CHURN_SHAPES`] menu.
/// Live-pod count is capped at 3 × nodes (~60 % mean occupancy), so the
/// storm measures steady-state placement churn, not the degenerate
/// full-cluster reject scan. The op sequence depends only on
/// `(ops, seed)` and the live-pod count, so allocators processing the
/// same demands see comparable work.
pub fn churn_storm(sched: &mut dyn Scheduler, nodes: usize, ops: u64, seed: u64) -> ChurnOutcome {
    for i in 0..nodes {
        sched.add_gpu(NodeId(u32::try_from(i).unwrap_or(u32::MAX)));
    }
    let max_live = nodes * 3;
    let mut rng = seed | 1;
    let mut live: Vec<(NodeId, PodId)> = Vec::new();
    let mut next_pod = 0u64;
    let mut out = ChurnOutcome {
        placements: 0,
        releases: 0,
        rejects: 0,
        used_area: 0,
        gpus_in_use: 0,
        probes: 0,
        fallbacks: 0,
    };
    for _ in 0..ops {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        if !live.is_empty() && (rng % 100 < 45 || live.len() >= max_live) {
            let len = u64::try_from(live.len()).unwrap_or(1);
            let at = usize::try_from((rng / 100) % len).unwrap_or(0);
            let (node, pod) = live.swap_remove(at);
            sched.release(node, pod);
            out.releases += 1;
        } else {
            let spec = churn_spec(next_pod);
            let pod = PodId(next_pod);
            next_pod += 1;
            match sched.select_node(&spec, &mut |_| true) {
                Some(node) if sched.bind(node, pod, &spec).is_some() => {
                    live.push((node, pod));
                    out.placements += 1;
                }
                _ => out.rejects += 1,
            }
        }
    }
    out.used_area = sched.total_used_area();
    out.gpus_in_use = sched.gpus_in_use();
    let stats = sched.stats();
    out.probes = stats.probes;
    out.fallbacks = stats.exact_fallbacks;
    out
}

/// A fleet [`Scenario`] with the *layered* arrival model — diurnal
/// breathing on the tail, a flash crowd on the head function and a
/// regional-failover step on the near-head band (`fastg_workload::fleet`)
/// — for the multi-core sweep leg, where realism matters more than
/// coalescing.
pub fn fleet_sweep_scenario(
    name: impl Into<String>,
    nodes: usize,
    seconds: u64,
    seed: u64,
) -> Scenario {
    let duration = SimTime::from_secs(seconds);
    // The layered model re-derives each rank's Zipf share internally, so
    // it takes the fleet-wide aggregate rate; cap the head's share at the
    // single-replica envelope by keeping the aggregate modest.
    let total_rps = nodes as f64 * 12.0;
    let mut s = Scenario::new(name, fleet_config(nodes, seed, true));
    for (i, (model, _)) in fleet_rates(nodes).iter().enumerate() {
        s = s
            .function(
                FunctionConfig::new(&format!("fleet-{i:04}"), model)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .load(
                i,
                fastg_workload::fleet::fleet_function(i, nodes, total_rps, 1.1, duration, seed),
            );
    }
    s.duration(duration)
}
