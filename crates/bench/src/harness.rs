//! Shared harness plumbing for the `*_baseline` evidence bins: CLI
//! parsing, best-of-N wall-clock timing, peak-RSS sampling and the JSON
//! report tail. Every bin takes the same `--quick` / `--out FILE` pair
//! and ends by writing one pretty-printed JSON document, so the
//! boilerplate lives here once instead of being pasted per bin.

use std::path::{Path, PathBuf};
use std::time::Instant;

/// The options every baseline bin shares.
pub struct BinOptions {
    /// Smaller grids / shorter horizons (the CI smoke leg).
    pub quick: bool,
    /// Where the JSON report lands.
    pub out: PathBuf,
}

/// The default report path: `<workspace root>/<file>`.
pub fn default_out(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(file)
}

/// Parses the shared `--quick` / `--out FILE` CLI. Unknown arguments
/// print a usage line naming `bin` and exit with status 2.
pub fn parse_bin_args(bin: &str, default_out_file: &str) -> BinOptions {
    let mut opts = BinOptions {
        quick: false,
        out: default_out(default_out_file),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => match args.next() {
                Some(path) => opts.out = PathBuf::from(path),
                None => {
                    eprintln!("usage: {bin} [--quick] [--out FILE] (--out needs a file)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: {bin} [--quick] [--out FILE] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Peak resident set size (`VmHWM`) in bytes, 0 where `/proc` is absent.
/// Every baseline bin reports this uniformly, so memory regressions show
/// up in the committed evidence, not just the one bench that happened to
/// sample it.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Best-of-N wall-clock seconds for `f`, plus its (deterministic, hence
/// stable across repeats) return value. Min-of-N is robust against
/// scheduler noise on shared runners.
pub fn best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let mut value = f();
    let mut best = t0.elapsed().as_secs_f64();
    for _ in 1..repeats.max(1) {
        let t0 = Instant::now();
        value = f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    (best, value)
}

/// Writes the report document as pretty-printed JSON (trailing newline)
/// and prints the destination. Exits with status 2 on I/O failure.
pub fn write_json_report(out: &Path, doc: &fastg_json::Value) {
    let mut text = doc.to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(out, text) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(2);
    }
    println!("wrote {}", out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_last_value_and_min_time() {
        let mut n = 0u64;
        let (secs, v) = best_of(3, || {
            n += 1;
            n
        });
        assert_eq!(v, 3);
        assert!(secs >= 0.0);
        // Zero repeats still runs once.
        let (_, v) = best_of(0, || 7u64);
        assert_eq!(v, 7);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "VmHWM should parse on Linux");
        }
    }

    #[test]
    fn default_out_lands_in_workspace_root() {
        let p = default_out("BENCH_X.json");
        assert!(p.ends_with("BENCH_X.json"));
    }
}
