//! # fastg-par — deterministic parallel execution for independent runs
//!
//! Every sweep in this workspace — the Figure 8 profiler grid, a
//! `SuccessiveHalving` round, the figure benches — is a fan-out of
//! *independent, seeded, deterministic* simulations. Parallelism across
//! such runs is purely a wall-clock optimization: each run owns all of
//! its state, so executing them on worker threads and collecting results
//! **in input order** produces byte-identical output to the sequential
//! loop, regardless of completion order.
//!
//! This crate is the only place in the workspace allowed to touch
//! `std::thread` / `std::sync` (enforced by `fastg-lint`'s
//! `no-threads-outside-par` rule): the DES core stays provably
//! single-threaded, and callers opt into parallelism through [`par_map`].
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — results are returned in input order; worker
//!    scheduling can never leak into the output. `threads = 1` takes an
//!    exact sequential path (no threads spawned, no queue, same closure
//!    call order as a `for` loop).
//! 2. **No dependencies** — scoped `std::thread`s and a fixed-chunk
//!    atomic work queue, consistent with the offline-shims policy (no
//!    rayon).
//! 3. **Typed failure** — a panicking worker item is captured
//!    ([`std::panic::catch_unwind`]) and surfaced as
//!    [`ParError::WorkerPanic`] with the item index, instead of tearing
//!    down the whole sweep.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count for every
/// sweep that resolves its threads through [`resolve_threads`].
pub const THREADS_ENV: &str = "FASTG_THREADS";

/// Items claimed per queue operation. Each item here is a whole
/// simulation (milliseconds to seconds of work), so the finest chunk
/// gives the best load balance across heterogeneous run lengths while
/// the claim itself (one `fetch_add`) stays negligible.
const CHUNK: usize = 1;

/// An error from a parallel map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// The closure panicked while processing the item at `index`.
    WorkerPanic {
        /// Input-order index of the item whose closure panicked.
        index: usize,
        /// Rendered panic payload (`&str`/`String` payloads verbatim).
        message: String,
    },
    /// A worker thread died outside the per-item panic capture, losing
    /// the items it had claimed. This indicates a bug in `fastg-par`
    /// itself rather than in the caller's closure.
    WorkerLost,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
            ParError::WorkerLost => write!(f, "a worker thread was lost mid-sweep"),
        }
    }
}

impl std::error::Error for ParError {}

/// Resolves a worker-thread count: an explicit request wins, then the
/// `FASTG_THREADS` environment variable, then the machine's available
/// parallelism. Every path is capped at the machine's available
/// parallelism — each worker runs a whole simulation, so threads beyond
/// the hardware only add scheduler churn — and the result is always ≥ 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if let Some(n) = explicit {
        return n.clamp(1, hw);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, hw);
        }
    }
    hw
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on `threads` worker threads, returning results
/// **in input order**.
///
/// The closure receives `(index, item)` and takes ownership of the item;
/// state can therefore be threaded *through* a sweep (e.g. a live
/// simulation carried between search rounds). Items are claimed from a
/// fixed-chunk atomic queue, so a slow run never staves the pool, and
/// completion order cannot affect the output: slot `i` of the result is
/// always the value `f(i, items[i])` produced, exactly as the sequential
/// loop would produce it.
///
/// `threads = 1` (or a single item) is *exactly* the sequential path: no
/// threads are spawned and items are processed in order. A panicking
/// closure is captured in both modes and returned as
/// [`ParError::WorkerPanic`] for the smallest failing index.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Result<Vec<R>, ParError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(r) => out.push(r),
                Err(p) => {
                    return Err(ParError::WorkerPanic {
                        index: i,
                        message: panic_message(p),
                    })
                }
            }
        }
        return Ok(out);
    }

    let total = items.len();
    // Input items behind per-slot locks so any worker can claim-and-take,
    // and output slots the same way; lock contention is nil because every
    // slot is touched exactly once.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<Result<R, String>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                let end = start.saturating_add(CHUNK).min(total);
                for i in start..end {
                    let item = match inputs[i].lock() {
                        Ok(mut slot) => slot.take(),
                        Err(_) => None,
                    };
                    let Some(item) = item else {
                        continue;
                    };
                    let r = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                    if let Ok(mut slot) = outputs[i].lock() {
                        *slot = Some(r.map_err(panic_message));
                    }
                }
            });
        }
    });

    let mut out = Vec::with_capacity(total);
    for (i, slot) in outputs.into_iter().enumerate() {
        match slot.into_inner().unwrap_or(None) {
            Some(Ok(r)) => out.push(r),
            Some(Err(message)) => return Err(ParError::WorkerPanic { index: i, message }),
            None => return Err(ParError::WorkerLost),
        }
    }
    Ok(out)
}

/// [`par_map`] over a fallible closure: short-circuits to the error of
/// the smallest failing input index (deterministic even when a later
/// item fails first in wall-clock time). Panics still surface as
/// [`ParError::WorkerPanic`], converted through `From`.
pub fn try_par_map<T, R, E, F>(items: Vec<T>, threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send + From<ParError>,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let results = par_map(items, threads, f)?;
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map(items.clone(), threads, |_, x| x * x).unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn order_survives_reversed_completion_order() {
        // Early items sleep longest: completion order is the reverse of
        // input order, output order must not be.
        let items: Vec<u64> = (0..8).collect();
        let got = par_map(items, 4, |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            x * 10
        })
        .unwrap();
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_thread_is_sequential_call_order() {
        // With threads=1 the closure must observe strictly increasing
        // indices (the exact sequential path).
        let seen = Mutex::new(Vec::new());
        par_map((0..16).collect::<Vec<u32>>(), 1, |i, x| {
            if let Ok(mut s) = seen.lock() {
                s.push(i);
            }
            x
        })
        .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, (0..16).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = par_map(Vec::<u32>::new(), 4, |_, x| x).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn panic_is_captured_with_index() {
        for threads in [1, 4] {
            let err = par_map((0..10).collect::<Vec<u32>>(), threads, |i, x| {
                assert!(i != 7, "boom at 7");
                x
            })
            .unwrap_err();
            match err {
                ParError::WorkerPanic { index, message } => {
                    assert_eq!(index, 7);
                    assert!(message.contains("boom"), "message: {message}");
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn panic_error_is_smallest_index() {
        // Two panicking items: the reported index must be the smaller
        // one regardless of which worker hit its panic first.
        let err = par_map((0..32).collect::<Vec<u32>>(), 4, |i, x| {
            if i == 5 || i == 30 {
                panic!("fail {i}");
            }
            x
        })
        .unwrap_err();
        assert!(matches!(err, ParError::WorkerPanic { index: 5, .. }), "{err:?}");
    }

    #[derive(Debug, PartialEq)]
    enum TestErr {
        Par(ParError),
        Odd(usize),
    }

    impl From<ParError> for TestErr {
        fn from(e: ParError) -> Self {
            TestErr::Par(e)
        }
    }

    #[test]
    fn try_par_map_short_circuits_smallest_index() {
        for threads in [1, 4] {
            let err = try_par_map((0..20).collect::<Vec<u32>>(), threads, |i, x| {
                if i % 2 == 1 && i > 10 {
                    Err(TestErr::Odd(i))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err, TestErr::Odd(11), "threads={threads}");
        }
    }

    #[test]
    fn try_par_map_success() {
        let got = try_par_map((0..10).collect::<Vec<u64>>(), 3, |_, x| {
            Ok::<u64, TestErr>(x + 1)
        })
        .unwrap();
        assert_eq!(got, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn owned_items_move_through() {
        // Items are moved into the closure (not borrowed): simulate the
        // carry-forward pattern where state flows through a round.
        let states: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8]).collect();
        let advanced = par_map(states, 4, |_, mut v| {
            v.push(99);
            v
        })
        .unwrap();
        for (i, v) in advanced.iter().enumerate() {
            assert_eq!(v, &vec![i as u8, 99]);
        }
    }

    #[test]
    fn resolve_threads_precedence() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolve_threads(Some(3)), 3.clamp(1, hw));
        assert_eq!(resolve_threads(Some(0)), 1, "explicit zero clamps to 1");
        assert_eq!(
            resolve_threads(Some(usize::MAX)),
            hw,
            "requests are capped at the machine's parallelism"
        );
        // Env var path: set, resolve, unset. (Test processes may run
        // concurrently; use a dedicated guard-free check since this is
        // the only test touching the variable.)
        std::env::set_var(THREADS_ENV, "5");
        assert_eq!(resolve_threads(None), 5.clamp(1, hw));
        std::env::set_var(THREADS_ENV, "not-a-number");
        let fallback = resolve_threads(None);
        assert!(fallback >= 1);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(resolve_threads(None), hw);
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map(vec![1u32, 2], 16, |_, x| x * 2).unwrap();
        assert_eq!(got, vec![2, 4]);
    }
}
