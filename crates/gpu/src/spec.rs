//! GPU hardware descriptions.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Static description of a GPU device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuSpec {
    /// Marketing name, e.g. "Tesla V100".
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 (the paper's testbed GPU): 80 SMs, 16 GiB.
    pub fn v100() -> Self {
        GpuSpec {
            name: "Tesla V100".to_string(),
            sm_count: 80,
            memory_bytes: 16 * GIB,
        }
    }

    /// NVIDIA A100 HGX: 108 SMs, 40 GiB. Used to show the under-utilization
    /// argument worsens on bigger parts.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100 HGX".to_string(),
            sm_count: 108,
            memory_bytes: 40 * GIB,
        }
    }

    /// NVIDIA T4: 40 SMs, 16 GiB. A smaller inference part.
    pub fn t4() -> Self {
        GpuSpec {
            name: "Tesla T4".to_string(),
            sm_count: 40,
            memory_bytes: 16 * GIB,
        }
    }

    /// NVIDIA H100 SXM: 132 SMs, 80 GiB. The paper's intro argument —
    /// under-utilization worsens as parts grow — is sharpest here.
    pub fn h100() -> Self {
        GpuSpec {
            name: "H100 SXM".to_string(),
            sm_count: 132,
            memory_bytes: 80 * GIB,
        }
    }

    /// A custom part for tests and what-if studies. A zero SM count is
    /// clamped to one — a GPU needs at least one SM.
    pub fn custom(name: &str, sm_count: u32, memory_bytes: u64) -> Self {
        debug_assert!(sm_count > 0, "a GPU needs at least one SM");
        GpuSpec {
            name: name.to_string(),
            sm_count: sm_count.max(1),
            memory_bytes,
        }
    }

    /// Number of SMs corresponding to an active-thread percentage, rounded
    /// to the nearest SM but never below one (MPS guarantees a client can
    /// always make progress). Out-of-range percentages are clamped to
    /// `[0, 100]`.
    pub fn sms_for_percentage(&self, pct: f64) -> u32 {
        debug_assert!((0.0..=100.0).contains(&pct), "percentage out of range: {pct}");
        let pct = pct.clamp(0.0, 100.0);
        // fastg-lint: allow(no-lossy-cast) — rounded value is ≤ sm_count.
        ((self.sm_count as f64 * pct / 100.0).round() as u32).max(1)
    }
}

impl Snap for GpuSpec {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            name,
            sm_count,
            memory_bytes,
        } = self;
        name.snap(w);
        w.u32(*sm_count);
        w.u64(*memory_bytes);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let name = String::unsnap(r)?;
        let sm_count = r.u32()?;
        if sm_count == 0 {
            return Err(SnapError::new("gpu spec sm count"));
        }
        Ok(GpuSpec {
            name,
            sm_count,
            memory_bytes: r.u64()?,
        })
    }
}

/// One gibibyte, in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;
/// One mebibyte, in bytes.
pub const MIB: u64 = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let v = GpuSpec::v100();
        assert_eq!(v.sm_count, 80);
        assert_eq!(v.memory_bytes, 16 * GIB);
        assert_eq!(GpuSpec::a100().sm_count, 108);
        assert_eq!(GpuSpec::t4().sm_count, 40);
    }

    #[test]
    fn percentage_to_sms() {
        let v = GpuSpec::v100();
        assert_eq!(v.sms_for_percentage(100.0), 80);
        assert_eq!(v.sms_for_percentage(50.0), 40);
        assert_eq!(v.sms_for_percentage(12.0), 10); // 9.6 rounds to 10
        assert_eq!(v.sms_for_percentage(6.0), 5); // 4.8 rounds to 5
        assert_eq!(v.sms_for_percentage(0.0), 1); // floor of one SM
    }

    #[test]
    #[should_panic(expected = "percentage out of range")]
    fn percentage_validated() {
        GpuSpec::v100().sms_for_percentage(120.0);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        GpuSpec::custom("bad", 0, GIB);
    }
}
