//! The device-level error type: every fallible [`crate::GpuDevice`]
//! operation returns a [`GpuError`] instead of panicking, so a bad request
//! reaching the device mid-chaos-plan surfaces as a typed result the
//! platform can degrade on rather than a crash of the whole run.

use crate::device::KernelId;
use crate::memory::MemError;
use crate::mps::{ClientId, MpsError};
use std::fmt;

/// Any error a [`crate::GpuDevice`] operation can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// MPS client registry rejected the operation.
    Mps(MpsError),
    /// Device memory allocator rejected the operation.
    Mem(MemError),
    /// The kernel id is not resident — completed twice, or a stale finish
    /// event from before a [`crate::GpuDevice::hard_reset`].
    KernelNotResident(KernelId),
    /// A client was unregistered while it still had queued or resident
    /// kernels; the caller (pod teardown) must drain first.
    WorkInFlight(ClientId),
    /// The client is registered with MPS but has no stream — an internal
    /// bookkeeping inconsistency that callers should treat as fatal for
    /// the device.
    MissingStream(ClientId),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::Mps(e) => write!(f, "MPS: {e}"),
            GpuError::Mem(e) => write!(f, "device memory: {e}"),
            GpuError::KernelNotResident(k) => {
                write!(f, "kernel {k:?} is not resident (double finish or stale event)")
            }
            GpuError::WorkInFlight(c) => {
                write!(f, "MPS client {c:?} still has queued or resident kernels")
            }
            GpuError::MissingStream(c) => {
                write!(f, "MPS client {c:?} has no stream (device state inconsistent)")
            }
        }
    }
}

impl std::error::Error for GpuError {}

impl From<MpsError> for GpuError {
    fn from(e: MpsError) -> Self {
        GpuError::Mps(e)
    }
}

impl From<MemError> for GpuError {
    fn from(e: MemError) -> Self {
        GpuError::Mem(e)
    }
}
