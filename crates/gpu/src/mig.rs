//! Multi-Instance GPU (MIG) partitioning.
//!
//! Ampere/Hopper parts can be split at the hardware level into up to
//! seven isolated GPU instances. The paper (§2.3) notes FaST-GShare is
//! compatible with MIG: each MIG instance runs its own MPS server, and
//! multiple MPS clients share each instance. This module models the
//! slicing: a [`MigProfile`] consumes compute and memory *slices* of the
//! parent GPU, and [`MigConfig::instances`] yields one [`GpuSpec`] per
//! instance, each of which becomes an independent [`crate::GpuDevice`]
//! (and thus an independent FaST-GShare "node").
//!
//! The paper's criticism stands reproducible here: MIG offers only the
//! seven pre-defined shapes below, far coarser than FaST-Manager's
//! arbitrary spatio-temporal rectangles.

use crate::spec::GpuSpec;

/// Number of compute slices on a MIG-capable part (A100/H100: 7).
pub const COMPUTE_SLICES: u32 = 7;
/// Number of memory slices (A100: 8, of which one profile uses 1/8).
pub const MEMORY_SLICES: u32 = 8;

/// A MIG instance profile, named after the A100 catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigProfile {
    /// `1g.5gb`: 1 compute slice, 1 memory slice.
    P1g,
    /// `2g.10gb`: 2 compute slices, 2 memory slices.
    P2g,
    /// `3g.20gb`: 3 compute slices, 4 memory slices.
    P3g,
    /// `4g.20gb`: 4 compute slices, 4 memory slices.
    P4g,
    /// `7g.40gb`: the whole part.
    P7g,
}

impl MigProfile {
    /// Compute slices this profile consumes.
    pub fn compute_slices(self) -> u32 {
        match self {
            MigProfile::P1g => 1,
            MigProfile::P2g => 2,
            MigProfile::P3g => 3,
            MigProfile::P4g => 4,
            MigProfile::P7g => 7,
        }
    }

    /// Memory slices this profile consumes.
    pub fn memory_slices(self) -> u32 {
        match self {
            MigProfile::P1g => 1,
            MigProfile::P2g => 2,
            MigProfile::P3g => 4,
            MigProfile::P4g => 4,
            MigProfile::P7g => 8,
        }
    }

    /// Catalogue name on an A100-40GB.
    pub fn name(self) -> &'static str {
        match self {
            MigProfile::P1g => "1g.5gb",
            MigProfile::P2g => "2g.10gb",
            MigProfile::P3g => "3g.20gb",
            MigProfile::P4g => "4g.20gb",
            MigProfile::P7g => "7g.40gb",
        }
    }

    /// This profile's compute share of the parent, in whole percent
    /// (rounded up: a `1g` instance owns ⌈100/7⌉ = 15 % of the SMs).
    pub fn compute_percent(self) -> u32 {
        (self.compute_slices() * 100).div_ceil(COMPUTE_SLICES)
    }

    /// Every profile, ascending by compute share.
    pub const ALL: [MigProfile; 5] = [
        MigProfile::P1g,
        MigProfile::P2g,
        MigProfile::P3g,
        MigProfile::P4g,
        MigProfile::P7g,
    ];
}

/// Snaps an SM-percent demand *up* to the smallest MIG compute-slice
/// share that covers it — the quantization a ParvaGPU-style demand
/// matcher applies to the spatial axis before packing, so every reserved
/// height corresponds to a realizable instance shape
/// (15/29/43/58/100 %). Demands above a whole part clamp to 100 %.
pub fn snap_to_slice_percent(sm_percent: u32) -> u32 {
    for profile in MigProfile::ALL {
        let pct = profile.compute_percent();
        if sm_percent <= pct {
            return pct.max(1);
        }
    }
    100
}

/// Errors from MIG configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigError {
    /// The requested profiles need more compute slices than exist.
    ComputeOverflow {
        /// Slices requested.
        requested: u32,
    },
    /// The requested profiles need more memory slices than exist.
    MemoryOverflow {
        /// Slices requested.
        requested: u32,
    },
    /// MIG requires a part with at least [`COMPUTE_SLICES`] × 2 SMs.
    UnsupportedGpu(String),
}

impl std::fmt::Display for MigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigError::ComputeOverflow { requested } => {
                write!(f, "{requested} compute slices requested, {COMPUTE_SLICES} available")
            }
            MigError::MemoryOverflow { requested } => {
                write!(f, "{requested} memory slices requested, {MEMORY_SLICES} available")
            }
            MigError::UnsupportedGpu(name) => write!(f, "{name} does not support MIG"),
        }
    }
}

impl std::error::Error for MigError {}

/// A validated MIG layout for one physical GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigConfig {
    parent: GpuSpec,
    profiles: Vec<MigProfile>,
}

impl MigConfig {
    /// Validates a layout on a parent GPU.
    pub fn new(parent: GpuSpec, profiles: Vec<MigProfile>) -> Result<Self, MigError> {
        if parent.sm_count < COMPUTE_SLICES * 2 {
            return Err(MigError::UnsupportedGpu(parent.name));
        }
        let compute: u32 = profiles.iter().map(|p| p.compute_slices()).sum();
        if compute > COMPUTE_SLICES {
            return Err(MigError::ComputeOverflow { requested: compute });
        }
        let memory: u32 = profiles.iter().map(|p| p.memory_slices()).sum();
        if memory > MEMORY_SLICES {
            return Err(MigError::MemoryOverflow { requested: memory });
        }
        Ok(MigConfig { parent, profiles })
    }

    /// The common "seven small instances" layout.
    pub fn seven_way(parent: GpuSpec) -> Result<Self, MigError> {
        Self::new(parent, vec![MigProfile::P1g; 7])
    }

    /// The configured profiles.
    pub fn profiles(&self) -> &[MigProfile] {
        &self.profiles
    }

    /// One [`GpuSpec`] per instance. SMs are apportioned per compute
    /// slice (A100: 108 SMs / 7 ≈ 15 per slice, remainder unexposed —
    /// matching real MIG, where each GPC contributes 14 SMs), memory per
    /// memory slice.
    pub fn instances(&self) -> Vec<GpuSpec> {
        let sm_per_slice = self.parent.sm_count / COMPUTE_SLICES;
        let mem_per_slice = self.parent.memory_bytes / u64::from(MEMORY_SLICES);
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| GpuSpec {
                name: format!("{} MIG {} #{i}", self.parent.name, p.name()),
                sm_count: sm_per_slice * p.compute_slices(),
                memory_bytes: mem_per_slice * u64::from(p.memory_slices()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GIB;

    #[test]
    fn slice_percent_snapping_covers_the_catalogue() {
        // Percents are ⌈100·s/7⌉ for s ∈ {1,2,3,4,7}.
        assert_eq!(MigProfile::P1g.compute_percent(), 15);
        assert_eq!(MigProfile::P2g.compute_percent(), 29);
        assert_eq!(MigProfile::P3g.compute_percent(), 43);
        assert_eq!(MigProfile::P4g.compute_percent(), 58);
        assert_eq!(MigProfile::P7g.compute_percent(), 100);
        // Snapping rounds up to the smallest covering shape and clamps.
        assert_eq!(snap_to_slice_percent(1), 15);
        assert_eq!(snap_to_slice_percent(15), 15);
        assert_eq!(snap_to_slice_percent(16), 29);
        assert_eq!(snap_to_slice_percent(43), 43);
        assert_eq!(snap_to_slice_percent(44), 58);
        assert_eq!(snap_to_slice_percent(59), 100);
        assert_eq!(snap_to_slice_percent(250), 100);
    }

    #[test]
    fn seven_way_split_of_a100() {
        let cfg = MigConfig::seven_way(GpuSpec::a100()).unwrap();
        let inst = cfg.instances();
        assert_eq!(inst.len(), 7);
        // 108 / 7 = 15 SMs per slice.
        assert!(inst.iter().all(|g| g.sm_count == 15));
        // 40 GiB / 8 = 5 GiB per memory slice.
        assert!(inst.iter().all(|g| g.memory_bytes == 5 * GIB));
        assert!(inst[0].name.contains("1g.5gb"));
    }

    #[test]
    fn mixed_layout_apportions_slices() {
        let cfg = MigConfig::new(
            GpuSpec::a100(),
            vec![MigProfile::P4g, MigProfile::P2g, MigProfile::P1g],
        )
        .unwrap();
        let inst = cfg.instances();
        assert_eq!(inst[0].sm_count, 60); // 4 × 15
        assert_eq!(inst[0].memory_bytes, 20 * GIB);
        assert_eq!(inst[1].sm_count, 30);
        assert_eq!(inst[2].sm_count, 15);
    }

    #[test]
    fn compute_overflow_rejected() {
        let err = MigConfig::new(GpuSpec::a100(), vec![MigProfile::P4g, MigProfile::P4g]);
        assert_eq!(err, Err(MigError::ComputeOverflow { requested: 8 }));
    }

    #[test]
    fn memory_overflow_rejected() {
        // 3g (4 mem) + 3g (4 mem) + 1g (1 mem) = 9 > 8, compute 7 ≤ 7.
        let err = MigConfig::new(
            GpuSpec::a100(),
            vec![MigProfile::P3g, MigProfile::P3g, MigProfile::P1g],
        );
        assert_eq!(err, Err(MigError::MemoryOverflow { requested: 9 }));
    }

    #[test]
    fn tiny_gpu_rejected() {
        let err = MigConfig::seven_way(GpuSpec::custom("edge", 8, GIB));
        assert!(matches!(err, Err(MigError::UnsupportedGpu(_))));
    }

    /// The paper's §2.3 scenario: MPS clients run inside a MIG instance.
    #[test]
    fn mps_inside_mig_instance() {
        use crate::device::{GpuDevice, KernelDesc};
        use crate::mps::MpsMode;
        use fastg_des::SimTime;
        let cfg = MigConfig::new(GpuSpec::a100(), vec![MigProfile::P3g]).unwrap();
        let spec = cfg.instances().remove(0);
        assert_eq!(spec.sm_count, 45);
        let mut dev = GpuDevice::new(spec, MpsMode::Shared);
        let a = dev.register_client(50.0).unwrap(); // 22-ish SMs of the instance
        let b = dev.register_client(50.0).unwrap();
        let ka = dev
            .launch(
                SimTime::ZERO,
                a,
                KernelDesc {
                    blocks: 40,
                    work_per_block: SimTime::from_micros(10),
                    tag: 0,
                },
            )
            .unwrap()
            .unwrap();
        let kb = dev
            .launch(
                SimTime::ZERO,
                b,
                KernelDesc {
                    blocks: 40,
                    work_per_block: SimTime::from_micros(10),
                    tag: 1,
                },
            )
            .unwrap()
            .unwrap();
        // Both clients run concurrently within the instance's 45 SMs.
        assert_eq!(ka.granted_sms + kb.granted_sms, 45);
    }
}
