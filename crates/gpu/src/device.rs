//! The GPU execution engine: per-client in-order kernel streams over a
//! shared SM pool.
//!
//! The device is a *pure state machine*. `launch` and `on_kernel_finish`
//! return [`KernelStart`] effects carrying absolute finish timestamps; the
//! caller owns the event loop and schedules a finish callback for each
//! effect. This inversion keeps the device independently testable and free
//! of event-queue coupling.
//!
//! ## Execution model
//!
//! * Each MPS client has one in-order stream (CUDA default-stream
//!   semantics): at most one of its kernels is resident at a time; queued
//!   launches wait behind it. Cross-client kernels run concurrently — that
//!   is the Hyper-Q/MPS behaviour FaST-GShare's spatial sharing exploits.
//! * A kernel with `blocks` thread-blocks starting when `free` SMs are
//!   available is granted `granted = min(sm_cap(client), blocks, free)` SMs
//!   and runs for `ceil(blocks / granted) × work_per_block` (wave
//!   execution). It holds `granted` SMs for its whole residency
//!   (non-preemptive; real SMs run resident blocks to completion, and MPS
//!   partitions are enforced at block dispatch).
//! * A kernel needing SMs when none are free waits in a FIFO of ready
//!   clients; this creates the queueing contention that blows up tail
//!   latency in the paper's "racing" (over-subscribed, no temporal control)
//!   configuration.

use crate::error::GpuError;
use crate::memory::GpuMemory;
use crate::metrics::GpuMetrics;
use crate::mps::{MpsError, MpsMode, MpsServer};
use crate::spec::GpuSpec;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{sanitizer, SimTime};
use std::collections::VecDeque;

pub use crate::mps::ClientId;

/// Identifies one kernel launch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u64);

/// Description of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDesc {
    /// Number of thread-blocks in the grid. Bounds the kernel's usable
    /// parallelism: granting more SMs than blocks cannot speed it up —
    /// this is what makes throughput saturate along the spatial axis
    /// (paper Figure 8).
    pub blocks: u32,
    /// Time for one SM to retire one block (one wave slot).
    pub work_per_block: SimTime,
    /// Caller-defined tag threaded through to [`KernelStart`] /
    /// [`KernelDone`] (the platform stores a request/stage cookie here).
    pub tag: u64,
}

impl KernelDesc {
    /// Total SM-time this kernel needs regardless of how it is scheduled.
    pub fn total_work(&self) -> SimTime {
        self.work_per_block * u64::from(self.blocks)
    }
}

/// Effect: a kernel became resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStart {
    /// The launch this effect belongs to.
    pub kernel: KernelId,
    /// Owning MPS client.
    pub client: ClientId,
    /// Caller tag from the [`KernelDesc`].
    pub tag: u64,
    /// SMs granted for the kernel's residency.
    pub granted_sms: u32,
    /// When it became resident.
    pub started: SimTime,
    /// Absolute time at which the caller must invoke
    /// [`GpuDevice::on_kernel_finish`].
    pub finish_at: SimTime,
}

/// Result of completing a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDone {
    /// The completed launch.
    pub kernel: KernelId,
    /// Owning MPS client.
    pub client: ClientId,
    /// Caller tag from the [`KernelDesc`].
    pub tag: u64,
    /// Residency duration (the GPU time the FaST Backend charges against
    /// the pod's quota).
    pub gpu_time: SimTime,
    /// SMs the kernel held.
    pub granted_sms: u32,
}

#[derive(Debug, Clone)]
struct Running {
    client: ClientId,
    tag: u64,
    granted: u32,
    started: SimTime,
}

/// One kernel of a fast-forwarded burst: its launch description plus the
/// analytically derived residency interval and grant.
#[derive(Debug, Clone, Copy)]
struct FfKernel {
    desc: KernelDesc,
    start: SimTime,
    finish: SimTime,
    granted: u32,
}

/// The analytic schedule of one client's uncontended burst. The `resident`
/// kernel's start has already been accounted (it *is* running as far as
/// metrics and the SM pool are concerned); `rest` holds the projected
/// future kernels in order.
#[derive(Debug)]
struct FfTimeline {
    client: ClientId,
    resident: FfKernel,
    rest: VecDeque<FfKernel>,
    /// Kernels whose finish boundary has been applied so far.
    completed: u64,
    /// Total GPU time of the applied finishes.
    served: SimTime,
    /// Prefix of `completed` whose integer counter tallies have been
    /// flushed into the metrics (the boundary halves are always applied
    /// eagerly; the commutative tallies batch up between syncs).
    tallied: u64,
    /// Prefix of `served` covered by `tallied`.
    tallied_served: SimTime,
}

/// Result of completing an entire fast-forwarded burst
/// ([`GpuDevice::ff_complete`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfDone {
    /// Kernels the burst completed.
    pub completed: u64,
    /// Total GPU residency time across all of them (what the FaST Backend
    /// charges at the synchronization point).
    pub gpu_time: SimTime,
}

/// Result of invalidating a fast-forwarded burst mid-flight
/// ([`GpuDevice::ff_break`]): the analytically reconstructed per-kernel
/// state the caller resumes stepping from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfBreak {
    /// Kernels whose completion had already been accounted.
    pub completed: u64,
    /// Total GPU time of those completions.
    pub gpu_time: SimTime,
    /// The kernel that was mid-flight at the break instant, now a real
    /// resident; the caller must schedule its finish at
    /// [`KernelStart::finish_at`]. Remaining kernels were requeued into
    /// the client's stream and start through the normal per-kernel path.
    pub resumed: KernelStart,
}

#[derive(Debug, Clone, Default)]
struct ClientStream {
    queued: VecDeque<KernelDesc>,
    running: Option<KernelId>,
    waiting: bool,
}

/// A simulated GPU: spec, MPS server, SM pool, memory and metrics.
///
/// ```
/// use fastg_gpu::{GpuDevice, GpuSpec, KernelDesc, MpsMode};
/// use fastg_des::SimTime;
///
/// let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
/// let client = gpu.register_client(12.0).unwrap(); // 12 % ≈ 10 SMs
/// let start = gpu
///     .launch(SimTime::ZERO, client, KernelDesc {
///         blocks: 19,
///         work_per_block: SimTime::from_micros(200),
///         tag: 0,
///     })
///     .unwrap()
///     .expect("idle stream starts immediately");
/// // 19 blocks on 10 SMs = 2 waves of 200 µs.
/// assert_eq!(start.finish_at, SimTime::from_micros(400));
/// let (done, _) = gpu.on_kernel_finish(start.finish_at, start.kernel).unwrap();
/// assert_eq!(done.gpu_time, SimTime::from_micros(400));
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    spec: GpuSpec,
    mps: MpsServer,
    memory: GpuMemory,
    metrics: GpuMetrics,
    free_sms: u32,
    /// Per-client streams, keyed by linear scan: a device hosts a handful
    /// of clients, and the kernel-completion path runs hot enough that a
    /// short Vec probe beats tree traversal.
    streams: Vec<(ClientId, ClientStream)>,
    /// Resident kernels (same linear-scan rationale; at most one kernel
    /// per client stream is resident at a time).
    running: Vec<(KernelId, Running)>,
    /// Clients whose stream head is ready but could not be granted SMs,
    /// in arrival order.
    wait_queue: VecDeque<ClientId>,
    next_kernel: u64,
    /// Kernel-duration multiplier (≥ 1.0). 1.0 is full speed; a degraded
    /// device (thermal throttling analogue) stretches every kernel started
    /// while the scale is raised. Resident kernels keep their durations.
    clock_scale: f64,
    /// Active fast-forward timelines, one per coalesced client burst.
    /// Their metric/SM-pool boundary events are applied lazily, in global
    /// time order, by [`Self::ff_sync`] before any other device activity.
    ff: Vec<FfTimeline>,
    /// Recycled timeline buffers (a burst per request makes this hot).
    ff_pool: Vec<VecDeque<FfKernel>>,
}

impl GpuDevice {
    /// Creates a device with the given spec and MPS mode.
    pub fn new(spec: GpuSpec, mode: MpsMode) -> Self {
        let mps = MpsServer::new(&spec, mode);
        let memory = GpuMemory::new(spec.memory_bytes);
        let metrics = GpuMetrics::new(spec.sm_count);
        let free_sms = spec.sm_count;
        GpuDevice {
            spec,
            mps,
            memory,
            metrics,
            free_sms,
            streams: Vec::new(),
            running: Vec::new(),
            wait_queue: VecDeque::new(),
            next_kernel: 0,
            clock_scale: 1.0,
            ff: Vec::new(),
            ff_pool: Vec::new(),
        }
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The MPS server (client registry, spatial partitions).
    pub fn mps(&self) -> &MpsServer {
        &self.mps
    }

    /// Device memory allocator.
    pub fn memory(&self) -> &GpuMemory {
        &self.memory
    }

    /// Mutable device memory allocator.
    pub fn memory_mut(&mut self) -> &mut GpuMemory {
        &mut self.memory
    }

    /// Metric accounting.
    pub fn metrics(&self) -> &GpuMetrics {
        &self.metrics
    }

    /// Mutable metric accounting (for window sampling).
    pub fn metrics_mut(&mut self) -> &mut GpuMetrics {
        &mut self.metrics
    }

    /// SMs not currently granted to any resident kernel.
    pub fn free_sms(&self) -> u32 {
        self.free_sms
    }

    /// Current kernel-duration multiplier (1.0 = full speed).
    pub fn clock_scale(&self) -> f64 {
        self.clock_scale
    }

    /// Sets the kernel-duration multiplier. Values above 1.0 model a
    /// degraded device (clock throttling): every *subsequently started*
    /// kernel takes `factor ×` its nominal duration. Resident kernels are
    /// unaffected. Values ≤ 0 are clamped to 1.0.
    pub fn set_clock_scale(&mut self, factor: f64) {
        debug_assert!(
            self.ff.is_empty(),
            "clock change invalidates fast-forward (caller must ff_break first)"
        );
        self.clock_scale = if factor > 0.0 { factor } else { 1.0 };
    }

    fn stream_mut(&mut self, client: ClientId) -> Option<&mut ClientStream> {
        self.streams
            .iter_mut()
            .find(|(id, _)| *id == client)
            .map(|(_, s)| s)
    }

    /// Hard-resets the device, as when its node loses power: every resident
    /// kernel is aborted (accounted as busy time but not as a completion),
    /// all queued work is discarded, every MPS client is unregistered, all
    /// device memory is reclaimed and the full SM pool is freed. The clock
    /// scale returns to 1.0.
    ///
    /// [`KernelId`]s are *not* reused after a reset, so stale finish events
    /// scheduled before the crash can be recognised and dropped by the
    /// caller ([`Self::on_kernel_finish`] returns
    /// [`GpuError::KernelNotResident`] for them).
    pub fn hard_reset(&mut self, now: SimTime) {
        // Bring lazily-deferred fast-forward accounting up to the crash
        // instant, then abort each timeline's in-flight kernel exactly as
        // a real resident would be (busy time accounted, no completion).
        self.ff_sync(now);
        let ff = std::mem::take(&mut self.ff);
        for mut tl in ff {
            self.metrics.kernel_aborted(now, tl.resident.granted);
            tl.rest.clear();
            self.ff_pool.push(tl.rest);
        }
        let running = std::mem::take(&mut self.running);
        for (_, run) in running {
            self.metrics.kernel_aborted(now, run.granted);
        }
        self.streams.clear();
        self.wait_queue.clear();
        self.free_sms = self.spec.sm_count;
        self.memory = GpuMemory::new(self.spec.memory_bytes);
        for client in self.mps.client_ids() {
            let _ = self.mps.unregister(client);
        }
        self.clock_scale = 1.0;
    }

    /// Whether a kernel id refers to a currently resident kernel. After a
    /// [`Self::hard_reset`] all previously resident kernels report `false`;
    /// callers use this to discard stale finish events.
    pub fn is_resident(&self, kernel: KernelId) -> bool {
        self.running.iter().any(|(id, _)| *id == kernel)
    }

    /// Number of kernels currently resident.
    pub fn resident_kernels(&self) -> usize {
        self.running.len()
    }

    /// Registers an MPS client with an active-thread percentage.
    pub fn register_client(&mut self, percentage: f64) -> Result<ClientId, MpsError> {
        let id = self.mps.register(percentage)?;
        self.streams.push((id, ClientStream::default()));
        Ok(id)
    }

    /// Changes a client's spatial partition. Takes effect for subsequent
    /// kernel starts; resident kernels keep their grant.
    pub fn set_partition(&mut self, client: ClientId, percentage: f64) -> Result<(), MpsError> {
        debug_assert!(
            self.ff.is_empty(),
            "repartition invalidates fast-forward (caller must ff_break first)"
        );
        self.mps.set_percentage(client, percentage)
    }

    /// Unregisters a client.
    ///
    /// # Errors
    /// [`GpuError::WorkInFlight`] if the client still has queued or
    /// resident kernels — the caller (pod teardown) must drain first; the
    /// client stays registered.
    pub fn unregister_client(&mut self, client: ClientId) -> Result<(), GpuError> {
        if let Some((_, s)) = self.streams.iter().find(|(id, _)| *id == client) {
            if !s.queued.is_empty() || s.running.is_some() {
                return Err(GpuError::WorkInFlight(client));
            }
        }
        // A fast-forwarded burst is in-flight work even though the stream
        // looks idle (its kernels live in the timeline, not the queue).
        if self.ff.iter().any(|t| t.client == client) {
            return Err(GpuError::WorkInFlight(client));
        }
        self.streams.retain(|(id, _)| *id != client);
        self.wait_queue.retain(|&c| c != client);
        self.mps.unregister(client)?;
        Ok(())
    }

    /// Launches a kernel into `client`'s stream at time `now`. If the stream
    /// is idle and SMs are free the kernel becomes resident immediately and
    /// a [`KernelStart`] is returned; otherwise it waits.
    pub fn launch(
        &mut self,
        now: SimTime,
        client: ClientId,
        desc: KernelDesc,
    ) -> Result<Option<KernelStart>, GpuError> {
        self.ff_sync(now);
        debug_assert!(
            !self.ff.iter().any(|t| t.client == client),
            "launch into a fast-forwarded stream (caller must ff_break first)"
        );
        if !self.mps.is_registered(client) {
            return Err(GpuError::Mps(MpsError::UnknownClient(client)));
        }
        let has_free_sms = self.free_sms > 0;
        let Some(stream) = self.stream_mut(client) else {
            debug_assert!(false, "registered client {client:?} has no stream");
            return Err(GpuError::MissingStream(client));
        };
        stream.queued.push_back(desc);
        if stream.running.is_none() && !stream.waiting {
            if has_free_sms {
                return self.start_head(now, client).map(Some);
            }
            stream.waiting = true;
            self.wait_queue.push_back(client);
        }
        Ok(None)
    }

    /// Completes a resident kernel. Returns its [`KernelDone`] record plus
    /// any kernels that became resident because SMs (or the stream) freed
    /// up.
    ///
    /// # Errors
    /// [`GpuError::KernelNotResident`] if `kernel` is not resident (e.g.
    /// completed twice, or a stale event from before a hard reset); the
    /// device state is unchanged.
    pub fn on_kernel_finish(
        &mut self,
        now: SimTime,
        kernel: KernelId,
    ) -> Result<(KernelDone, Vec<KernelStart>), GpuError> {
        let mut started = Vec::new();
        let done = self.on_kernel_finish_into(now, kernel, &mut started)?;
        Ok((done, started))
    }

    /// Like [`Self::on_kernel_finish`], but appends the newly started
    /// kernels to a caller-supplied buffer so the simulation's hottest
    /// event handler can reuse one allocation across every completion.
    pub fn on_kernel_finish_into(
        &mut self,
        now: SimTime,
        kernel: KernelId,
        started: &mut Vec<KernelStart>,
    ) -> Result<KernelDone, GpuError> {
        self.ff_sync(now);
        let i = self
            .running
            .iter()
            .position(|(id, _)| *id == kernel)
            .ok_or(GpuError::KernelNotResident(kernel))?;
        let (_, run) = self.running.swap_remove(i);
        self.free_sms += run.granted;
        debug_assert!(self.free_sms <= self.spec.sm_count);
        let gpu_time = now - run.started;
        self.metrics
            .kernel_finished(now, run.client, run.granted, gpu_time);
        let done = KernelDone {
            kernel,
            client: run.client,
            tag: run.tag,
            gpu_time,
            granted_sms: run.granted,
        };

        // The owner's stream is now idle; if it has queued work it joins the
        // back of the wait queue (round-robin fairness across clients).
        if let Some(stream) = self.stream_mut(run.client) {
            stream.running = None;
            if !stream.queued.is_empty() && !stream.waiting {
                stream.waiting = true;
                self.wait_queue.push_back(run.client);
            }
        } else {
            debug_assert!(false, "resident kernel's client {:?} has no stream", run.client);
        }

        // Admit waiting clients while SMs remain.
        while self.free_sms > 0 {
            let Some(client) = self.wait_queue.pop_front() else {
                break;
            };
            let Some(stream) = self.stream_mut(client) else {
                debug_assert!(false, "waiting client {client:?} has no stream");
                continue;
            };
            stream.waiting = false;
            if stream.queued.is_empty() || stream.running.is_some() {
                continue;
            }
            started.push(self.start_head(now, client)?);
        }
        if sanitizer::active() {
            self.sanitize_sm_conservation("on_kernel_finish");
        }
        Ok(done)
    }

    /// Starts the head kernel of `client`'s stream. Caller guarantees the
    /// stream is non-empty, not running, and `free_sms > 0`; a broken
    /// precondition surfaces as [`GpuError::MissingStream`].
    fn start_head(&mut self, now: SimTime, client: ClientId) -> Result<KernelStart, GpuError> {
        let Ok(cap) = self.mps.sm_cap(client) else {
            debug_assert!(false, "start_head on unregistered client {client:?}");
            return Err(GpuError::Mps(MpsError::UnknownClient(client)));
        };
        let Some(desc) = self.stream_mut(client).and_then(|s| s.queued.pop_front()) else {
            debug_assert!(false, "start_head on empty stream for {client:?}");
            return Err(GpuError::MissingStream(client));
        };
        let granted = cap.min(desc.blocks.max(1)).min(self.free_sms);
        debug_assert!(granted >= 1);
        if sanitizer::active() {
            sanitizer::check(
                granted <= cap && cap <= self.spec.sm_count,
                "sm-conservation",
                || {
                    format!(
                        "grant chain broken for {client:?}: granted {granted} <= cap {cap} <= device {}",
                        self.spec.sm_count
                    )
                },
            );
        }
        let waves = u64::from(desc.blocks.max(1).div_ceil(granted));
        let nominal = desc.work_per_block * waves;
        // `clock_scale` is only ever assigned exact values (1.0 or a
        // caller-provided factor), so a tight epsilon test is safe here.
        let duration = if (self.clock_scale - 1.0).abs() < f64::EPSILON {
            nominal
        } else {
            nominal.scale(self.clock_scale)
        };
        let id = KernelId(self.next_kernel);
        self.next_kernel += 1;
        self.free_sms -= granted;
        if let Some(stream) = self.stream_mut(client) {
            stream.running = Some(id);
        }
        self.running.push((
            id,
            Running {
                client,
                tag: desc.tag,
                granted,
                started: now,
            },
        ));
        self.metrics.kernel_started(now, granted);
        Ok(KernelStart {
            kernel: id,
            client,
            tag: desc.tag,
            granted_sms: granted,
            started: now,
            finish_at: now + duration,
        })
    }

    // ----- analytic fast-forward --------------------------------------
    //
    // When a burst runs in the *capped regime* — the sum of every client's
    // SM cap fits in the device, nobody is waiting for SMs, and no
    // resident grant exceeds its owner's cap — each kernel start is
    // guaranteed its full `min(cap, blocks)` grant no matter what other
    // clients do, so a client's whole burst schedule can be computed up
    // front with wave arithmetic. The device then holds the schedule as a
    // timeline and applies its per-kernel metric/SM-pool boundary events
    // lazily (in global time order, via `ff_sync`) so that utilization,
    // occupancy, per-client busy time and completion counters stay
    // byte-identical to per-kernel stepping.

    /// Whether the device is in the capped regime (see module comment):
    /// the precondition under which fast-forwarded schedules are exact.
    pub fn ff_regime_ok(&self) -> bool {
        if !self.wait_queue.is_empty() {
            return false;
        }
        if self.mps.total_sm_cap() > u64::from(self.spec.sm_count) {
            return false;
        }
        self.running
            .iter()
            .all(|(_, r)| self.mps.sm_cap(r.client).is_ok_and(|cap| r.granted <= cap))
    }

    /// Whether `client` has an active fast-forward timeline.
    pub fn ff_active(&self, client: ClientId) -> bool {
        self.ff.iter().any(|t| t.client == client)
    }

    /// Whether any fast-forward timeline is active on this device.
    pub fn has_ff(&self) -> bool {
        !self.ff.is_empty()
    }

    /// Attempts to coalesce an entire burst for `client` into one analytic
    /// timeline. On success the first kernel becomes (virtually) resident
    /// immediately — exactly as [`Self::launch`] would start it — and the
    /// completion time of the burst's final kernel is returned so the
    /// caller can schedule a single macro-event for it. Returns `None`
    /// (leaving the device untouched) when the burst is not provably
    /// uncontended: the caller must fall back to per-kernel launches.
    pub fn fast_forward_burst<I>(
        &mut self,
        now: SimTime,
        client: ClientId,
        descs: I,
    ) -> Option<SimTime>
    where
        I: IntoIterator<Item = KernelDesc>,
        I::IntoIter: ExactSizeIterator,
    {
        self.ff_sync(now);
        let idle = self
            .streams
            .iter()
            .find(|(id, _)| *id == client)
            .is_some_and(|(_, s)| s.running.is_none() && s.queued.is_empty() && !s.waiting);
        if !idle || self.ff_active(client) || !self.ff_regime_ok() {
            return None;
        }
        let cap = self.mps.sm_cap(client).ok()?;
        let iter = descs.into_iter();
        if iter.len() == 0 {
            return None;
        }
        let mut rest = self.ff_pool.pop().unwrap_or_default();
        rest.reserve(iter.len().saturating_sub(1));
        let mut t = now;
        let mut first: Option<FfKernel> = None;
        for desc in iter {
            // Same wave arithmetic as `start_head`; in the capped regime
            // `free_sms` never binds below `min(cap, blocks)`.
            let granted = cap.min(desc.blocks.max(1));
            let waves = u64::from(desc.blocks.max(1).div_ceil(granted));
            let nominal = desc.work_per_block * waves;
            let duration = if (self.clock_scale - 1.0).abs() < f64::EPSILON {
                nominal
            } else {
                nominal.scale(self.clock_scale)
            };
            let k = FfKernel {
                desc,
                start: t,
                finish: t + duration,
                granted,
            };
            t = k.finish;
            if first.is_none() {
                first = Some(k);
            } else {
                rest.push_back(k);
            }
        }
        let resident = first?;
        debug_assert!(self.free_sms >= resident.granted, "capped regime violated");
        self.free_sms -= resident.granted;
        if sanitizer::active() {
            sanitizer::check(
                resident.granted <= self.spec.sm_count,
                "sm-conservation",
                || {
                    format!(
                        "fast-forward grant {} exceeds device {}",
                        resident.granted, self.spec.sm_count
                    )
                },
            );
        }
        self.metrics.kernel_started(now, resident.granted);
        self.ff.push(FfTimeline {
            client,
            resident,
            rest,
            completed: 0,
            served: SimTime::ZERO,
            tallied: 0,
            tallied_served: SimTime::ZERO,
        });
        Some(t)
    }

    /// Applies every deferred fast-forward boundary event *strictly
    /// before* `now`, across all timelines in global time order. Called
    /// at the top of every device entry point; boundaries at exactly
    /// `now` are left pending, matching the event-queue order in which
    /// per-kernel stepping would deliver them (a finish scheduled in the
    /// past always outranks one scheduled at the current instant).
    pub fn ff_sync(&mut self, now: SimTime) {
        self.ff_sync_to(now, false);
    }

    /// Like [`Self::ff_sync`] but inclusive of boundaries at exactly
    /// `now`: the report/sampling flush at the end of a run, where
    /// per-kernel stepping would already have delivered same-instant
    /// finish events.
    pub fn ff_sync_inclusive(&mut self, now: SimTime) {
        self.ff_sync_to(now, true);
    }

    fn ff_sync_to(&mut self, now: SimTime, inclusive: bool) {
        if self.ff.is_empty() {
            return;
        }
        let mut last_landed = SimTime::ZERO;
        loop {
            // Earliest pending boundary across timelines; ties break by
            // client id (same-instant cross-client boundaries commute in
            // every metric, so any fixed order is parity-safe).
            let next = self
                .ff
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.rest.is_empty())
                .min_by_key(|(_, t)| (t.resident.finish, t.client));
            let Some((i, t)) = next else {
                break;
            };
            let due = if inclusive {
                t.resident.finish <= now
            } else {
                t.resident.finish < now
            };
            if !due {
                break;
            }
            if sanitizer::active() {
                let boundary = t.resident.finish;
                sanitizer::check(
                    boundary >= last_landed
                        && (boundary < now || (inclusive && boundary == now)),
                    "ff-sync-order",
                    || {
                        format!(
                            "boundary {boundary:?} violates {} replay to {now:?} (last landed {last_landed:?})",
                            if inclusive { "inclusive" } else { "strict-<" }
                        )
                    },
                );
                last_landed = boundary;
            }
            self.ff_advance(i);
        }
        self.ff_flush_tallies();
        if sanitizer::active() {
            self.sanitize_sm_conservation("ff_sync");
        }
    }

    /// Shadow-check (`FASTG_SANITIZE=1`): every SM is either free or
    /// granted to exactly one resident kernel — real or fast-forwarded —
    /// at all times. O(residents); only ever runs with the sanitizer
    /// armed.
    fn sanitize_sm_conservation(&self, site: &'static str) {
        let granted: u32 = self
            .running
            .iter()
            .map(|(_, r)| r.granted)
            .chain(self.ff.iter().map(|t| t.resident.granted))
            .sum();
        sanitizer::check(
            granted + self.free_sms == self.spec.sm_count,
            "sm-conservation",
            || {
                format!(
                    "{site}: granted {granted} + free {} != device {} ({} running, {} ff timelines)",
                    self.free_sms,
                    self.spec.sm_count,
                    self.running.len(),
                    self.ff.len()
                )
            },
        );
    }

    /// Flushes the batched completion counters of every live timeline, so
    /// any external metrics read after a sync sees exactly what per-kernel
    /// stepping would have recorded.
    fn ff_flush_tallies(&mut self) {
        let metrics = &mut self.metrics;
        for tl in &mut self.ff {
            let kernels = tl.completed - tl.tallied;
            if kernels > 0 {
                let busy = tl.served - tl.tallied_served;
                tl.tallied = tl.completed;
                tl.tallied_served = tl.served;
                metrics.tally_finished(tl.client, kernels, busy);
            }
        }
    }

    /// Applies one finish/start boundary pair of timeline `i`: the
    /// resident kernel finishes and its successor becomes resident, with
    /// the exact metric-call sequence `on_kernel_finish_into` +
    /// `start_head` would have produced. Caller guarantees `rest` is
    /// non-empty (the final finish is applied only by [`Self::ff_complete`],
    /// because it carries the burst's synchronization point).
    fn ff_advance(&mut self, i: usize) {
        let Some(tl) = self.ff.get_mut(i) else {
            debug_assert!(false, "ff_advance on missing timeline");
            return;
        };
        let Some(next) = tl.rest.pop_front() else {
            debug_assert!(false, "ff_advance past the final kernel");
            return;
        };
        let k = tl.resident;
        debug_assert_eq!(next.start, k.finish, "burst timelines are gapless");
        tl.completed += 1;
        tl.served += k.finish - k.start;
        tl.resident = next;
        self.free_sms += k.granted;
        self.free_sms -= next.granted;
        self.metrics
            .kernel_handoff(k.finish, k.granted, next.granted);
    }

    /// Completes a fast-forwarded burst at its macro-event time `now` (the
    /// analytic finish of its final kernel): applies every remaining
    /// boundary and returns the burst's totals for the caller's
    /// synchronization point. Returns `None` if `client` has no timeline
    /// (e.g. a stale macro-event after an invalidation the caller missed).
    pub fn ff_complete(&mut self, now: SimTime, client: ClientId) -> Option<FfDone> {
        // Other timelines' earlier boundaries must land first so the
        // global metric ordering matches per-kernel stepping.
        self.ff_sync(now);
        let i = self.ff.iter().position(|t| t.client == client)?;
        let mut tl = self.ff.swap_remove(i);
        loop {
            let k = tl.resident;
            debug_assert!(k.finish <= now, "macro-event fired before its burst end");
            tl.completed += 1;
            tl.served += k.finish - k.start;
            self.free_sms += k.granted;
            match tl.rest.pop_front() {
                Some(next) => {
                    self.free_sms -= next.granted;
                    self.metrics
                        .kernel_handoff(k.finish, k.granted, next.granted);
                    tl.resident = next;
                }
                None => {
                    self.metrics.kernel_finish_boundary(k.finish, k.granted);
                    break;
                }
            }
        }
        self.metrics
            .tally_finished(tl.client, tl.completed - tl.tallied, tl.served - tl.tallied_served);
        debug_assert_eq!(tl.resident.finish, now, "burst end mismatch");
        if sanitizer::active() {
            sanitizer::check(tl.resident.finish == now, "ff-sync-order", || {
                format!(
                    "macro-event for {client:?} fired at {now:?} but its burst ends at {:?}",
                    tl.resident.finish
                )
            });
            self.sanitize_sm_conservation("ff_complete");
        }
        self.ff_pool.push(tl.rest);
        Some(FfDone {
            completed: tl.completed,
            gpu_time: tl.served,
        })
    }

    /// Invalidates `client`'s fast-forwarded burst at `now`, analytically
    /// reconstructing exact per-kernel state: boundaries strictly before
    /// `now` are applied, the mid-flight kernel is materialized as a real
    /// resident (the caller schedules its finish), and the untouched
    /// remainder is requeued into the client's stream for normal stepping
    /// under whatever contention change triggered the break.
    pub fn ff_break(&mut self, now: SimTime, client: ClientId) -> Option<FfBreak> {
        self.ff_sync(now);
        let i = self.ff.iter().position(|t| t.client == client)?;
        let mut tl = self.ff.swap_remove(i);
        debug_assert_eq!(tl.tallied, tl.completed, "sync flushes tallies");
        let k = tl.resident;
        if sanitizer::active() {
            // Strict-< sync left the mid-flight kernel resident: it must
            // span the break instant, or the reconstruction re-runs (or
            // drops) GPU time.
            sanitizer::check(k.start <= now && k.finish >= now, "ff-sync-order", || {
                format!(
                    "materialized kernel [{:?}, {:?}] does not span break at {now:?}",
                    k.start, k.finish
                )
            });
        }
        let id = KernelId(self.next_kernel);
        self.next_kernel += 1;
        self.running.push((
            id,
            Running {
                client,
                tag: k.desc.tag,
                granted: k.granted,
                started: k.start,
            },
        ));
        if let Some(stream) = self.stream_mut(client) {
            stream.running = Some(id);
            for q in tl.rest.drain(..) {
                stream.queued.push_back(q.desc);
            }
        } else {
            debug_assert!(false, "fast-forwarded client {client:?} has no stream");
        }
        self.ff_pool.push(tl.rest);
        Some(FfBreak {
            completed: tl.completed,
            gpu_time: tl.served,
            resumed: KernelStart {
                kernel: id,
                client,
                tag: k.desc.tag,
                granted_sms: k.granted,
                started: k.start,
                finish_at: k.finish,
            },
        })
    }
}

impl Snap for KernelId {
    fn snap(&self, w: &mut SnapWriter) {
        let KernelId(raw) = self;
        w.u64(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(KernelId(r.u64()?))
    }
}

impl Snap for KernelDesc {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            blocks,
            work_per_block,
            tag,
        } = self;
        w.u32(*blocks);
        work_per_block.snap(w);
        w.u64(*tag);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(KernelDesc {
            blocks: r.u32()?,
            work_per_block: SimTime::unsnap(r)?,
            tag: r.u64()?,
        })
    }
}

impl Snap for Running {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            client,
            tag,
            granted,
            started,
        } = self;
        client.snap(w);
        w.u64(*tag);
        w.u32(*granted);
        started.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Running {
            client: ClientId::unsnap(r)?,
            tag: r.u64()?,
            granted: r.u32()?,
            started: SimTime::unsnap(r)?,
        })
    }
}

impl Snap for FfKernel {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            desc,
            start,
            finish,
            granted,
        } = self;
        desc.snap(w);
        start.snap(w);
        finish.snap(w);
        w.u32(*granted);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let desc = KernelDesc::unsnap(r)?;
        let start = SimTime::unsnap(r)?;
        let finish = SimTime::unsnap(r)?;
        if finish < start {
            return Err(SnapError::new("ff kernel interval"));
        }
        Ok(FfKernel {
            desc,
            start,
            finish,
            granted: r.u32()?,
        })
    }
}

impl Snap for FfTimeline {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            client,
            resident,
            rest,
            completed,
            served,
            tallied,
            tallied_served,
        } = self;
        client.snap(w);
        resident.snap(w);
        rest.snap(w);
        w.u64(*completed);
        served.snap(w);
        w.u64(*tallied);
        tallied_served.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let client = ClientId::unsnap(r)?;
        let resident = FfKernel::unsnap(r)?;
        let rest: VecDeque<FfKernel> = VecDeque::unsnap(r)?;
        let completed = r.u64()?;
        let served = SimTime::unsnap(r)?;
        let tallied = r.u64()?;
        let tallied_served = SimTime::unsnap(r)?;
        if tallied > completed || tallied_served > served {
            return Err(SnapError::new("ff tally prefix"));
        }
        Ok(FfTimeline {
            client,
            resident,
            rest,
            completed,
            served,
            tallied,
            tallied_served,
        })
    }
}

impl Snap for ClientStream {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            queued,
            running,
            waiting,
        } = self;
        queued.snap(w);
        running.snap(w);
        w.bool(*waiting);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ClientStream {
            queued: VecDeque::unsnap(r)?,
            running: Option::unsnap(r)?,
            waiting: r.bool()?,
        })
    }
}

impl Snap for GpuDevice {
    /// Captures the complete behavioral state of the device. The recycled
    /// timeline buffers (`ff_pool`) are a pure allocation cache and restore
    /// empty.
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            spec,
            mps,
            memory,
            metrics,
            free_sms,
            streams,
            running,
            wait_queue,
            next_kernel,
            clock_scale,
            ff,
            ff_pool: _,
        } = self;
        spec.snap(w);
        mps.snap(w);
        memory.snap(w);
        metrics.snap(w);
        w.u32(*free_sms);
        streams.snap(w);
        running.snap(w);
        wait_queue.snap(w);
        w.u64(*next_kernel);
        clock_scale.snap(w);
        ff.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let spec = GpuSpec::unsnap(r)?;
        let mps = MpsServer::unsnap(r)?;
        let memory = GpuMemory::unsnap(r)?;
        let metrics = GpuMetrics::unsnap(r)?;
        let free_sms = r.u32()?;
        if free_sms > spec.sm_count {
            return Err(SnapError::new("gpu free sms"));
        }
        let streams: Vec<(ClientId, ClientStream)> = Vec::unsnap(r)?;
        let running: Vec<(KernelId, Running)> = Vec::unsnap(r)?;
        let wait_queue: VecDeque<ClientId> = VecDeque::unsnap(r)?;
        let next_kernel = r.u64()?;
        if running.iter().any(|(id, _)| id.0 >= next_kernel) {
            return Err(SnapError::new("gpu kernel id space"));
        }
        Ok(GpuDevice {
            spec,
            mps,
            memory,
            metrics,
            free_sms,
            streams,
            running,
            wait_queue,
            next_kernel,
            clock_scale: f64::unsnap(r)?,
            ff: Vec::unsnap(r)?,
            ff_pool: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::new(GpuSpec::v100(), MpsMode::Shared)
    }

    fn kernel(blocks: u32, work_us: u64) -> KernelDesc {
        KernelDesc {
            blocks,
            work_per_block: SimTime::from_micros(work_us),
            tag: 0,
        }
    }

    #[test]
    fn single_kernel_single_wave() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let start = gpu
            .launch(SimTime::ZERO, c, kernel(20, 10))
            .unwrap()
            .expect("starts immediately");
        assert_eq!(start.granted_sms, 20); // blocks bound the grant
        assert_eq!(start.finish_at, SimTime::from_micros(10)); // one wave
        assert_eq!(gpu.free_sms(), 60);
        let (done, next) = gpu.on_kernel_finish(start.finish_at, start.kernel).unwrap();
        assert_eq!(done.gpu_time, SimTime::from_micros(10));
        assert!(next.is_empty());
        assert_eq!(gpu.free_sms(), 80);
    }

    #[test]
    fn partition_caps_grant_and_stretches_duration() {
        let mut gpu = v100();
        let c = gpu.register_client(12.0).unwrap(); // 10 SMs
        let start = gpu.launch(SimTime::ZERO, c, kernel(20, 10)).unwrap().unwrap();
        assert_eq!(start.granted_sms, 10);
        // ceil(20/10) = 2 waves.
        assert_eq!(start.finish_at, SimTime::from_micros(20));
    }

    #[test]
    fn in_order_stream_serializes_same_client() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s1 = gpu.launch(SimTime::ZERO, c, kernel(10, 10)).unwrap().unwrap();
        // Second launch queues behind the first.
        assert!(gpu.launch(SimTime::ZERO, c, kernel(10, 10)).unwrap().is_none());
        let (_, started) = gpu.on_kernel_finish(s1.finish_at, s1.kernel).unwrap();
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].started, SimTime::from_micros(10));
        assert_eq!(started[0].finish_at, SimTime::from_micros(20));
    }

    #[test]
    fn cross_client_kernels_run_concurrently() {
        let mut gpu = v100();
        let a = gpu.register_client(50.0).unwrap();
        let b = gpu.register_client(50.0).unwrap();
        let sa = gpu.launch(SimTime::ZERO, a, kernel(40, 10)).unwrap().unwrap();
        let sb = gpu.launch(SimTime::ZERO, b, kernel(40, 10)).unwrap().unwrap();
        assert_eq!(sa.granted_sms, 40);
        assert_eq!(sb.granted_sms, 40);
        assert_eq!(gpu.free_sms(), 0);
        assert_eq!(gpu.resident_kernels(), 2);
    }

    #[test]
    fn sm_exhaustion_queues_and_fifo_admits() {
        let mut gpu = v100();
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        let c = gpu.register_client(100.0).unwrap();
        let sa = gpu.launch(SimTime::ZERO, a, kernel(80, 10)).unwrap().unwrap();
        assert_eq!(sa.granted_sms, 80);
        // b and c wait: no SMs free.
        assert!(gpu.launch(SimTime::ZERO, b, kernel(80, 10)).unwrap().is_none());
        assert!(gpu.launch(SimTime::ZERO, c, kernel(80, 10)).unwrap().is_none());
        let (_, started) = gpu.on_kernel_finish(sa.finish_at, sa.kernel).unwrap();
        // b arrived first; it takes everything, c keeps waiting.
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].client, b);
        let (_, started) = gpu.on_kernel_finish(started[0].finish_at, started[0].kernel).unwrap();
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].client, c);
    }

    #[test]
    fn contended_start_gets_partial_grant() {
        let mut gpu = v100();
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        let _sa = gpu.launch(SimTime::ZERO, a, kernel(60, 10)).unwrap().unwrap();
        // 20 SMs left: b's 40-block kernel gets 20 and needs 2 waves.
        let sb = gpu.launch(SimTime::ZERO, b, kernel(40, 10)).unwrap().unwrap();
        assert_eq!(sb.granted_sms, 20);
        assert_eq!(sb.finish_at, SimTime::from_micros(20));
        assert_eq!(gpu.free_sms(), 0);
    }

    #[test]
    fn round_robin_between_backlogged_clients() {
        let mut gpu = GpuDevice::new(GpuSpec::custom("one-sm", 1, 1 << 30), MpsMode::Shared);
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, a, kernel(1, 10)).unwrap().unwrap();
        // Both clients have another kernel queued.
        assert!(gpu.launch(SimTime::ZERO, a, kernel(1, 10)).unwrap().is_none());
        assert!(gpu.launch(SimTime::ZERO, b, kernel(1, 10)).unwrap().is_none());
        let (_, next) = gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        // b was enqueued to the wait queue before a finished -> b runs next.
        assert_eq!(next[0].client, b);
        let (_, next) = gpu.on_kernel_finish(next[0].finish_at, next[0].kernel).unwrap();
        assert_eq!(next[0].client, a);
    }

    #[test]
    fn metrics_track_occupancy() {
        let mut gpu = v100();
        let c = gpu.register_client(50.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(40, 1000)).unwrap().unwrap();
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        let stats = gpu.metrics().window_stats(SimTime::from_micros(2000));
        // 40 SMs busy for 1000us of a 2000us window = 25 % occupancy.
        assert!((stats.sm_occupancy - 0.25).abs() < 1e-9);
        assert!((stats.utilization - 0.5).abs() < 1e-9);
        assert_eq!(gpu.metrics().client_busy(c), SimTime::from_micros(1000));
    }

    #[test]
    fn unknown_client_launch_rejected() {
        let mut gpu = v100();
        let err = gpu.launch(SimTime::ZERO, ClientId(99), kernel(1, 1));
        assert!(err.is_err());
    }

    #[test]
    fn double_finish_is_a_typed_error() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(1, 1)).unwrap().unwrap();
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        let err = gpu.on_kernel_finish(s.finish_at, s.kernel);
        assert_eq!(err.unwrap_err(), GpuError::KernelNotResident(s.kernel));
        // The device stays usable after the bad completion.
        assert_eq!(gpu.free_sms(), gpu.spec().sm_count);
    }

    #[test]
    fn unregister_with_resident_kernel_is_a_typed_error() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(1, 1)).unwrap().unwrap();
        let err = gpu.unregister_client(c);
        assert_eq!(err.unwrap_err(), GpuError::WorkInFlight(c));
        // The client is untouched: drain and retry succeeds.
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        gpu.unregister_client(c).unwrap();
    }

    #[test]
    fn unregister_clean_client() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(1, 1)).unwrap().unwrap();
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        gpu.unregister_client(c).unwrap();
        assert_eq!(gpu.mps().client_count(), 0);
    }

    #[test]
    fn clock_scale_stretches_new_kernels_only() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s1 = gpu.launch(SimTime::ZERO, c, kernel(20, 10)).unwrap().unwrap();
        assert_eq!(s1.finish_at, SimTime::from_micros(10));
        gpu.set_clock_scale(2.0);
        assert_eq!(gpu.clock_scale(), 2.0);
        // Queued behind s1; starts at s1's finish with the degraded clock.
        assert!(gpu.launch(SimTime::ZERO, c, kernel(20, 10)).unwrap().is_none());
        let (_, started) = gpu.on_kernel_finish(s1.finish_at, s1.kernel).unwrap();
        assert_eq!(started[0].finish_at - started[0].started, SimTime::from_micros(20));
        gpu.set_clock_scale(1.0);
        let (_, _) = gpu.on_kernel_finish(started[0].finish_at, started[0].kernel).unwrap();
        let s3 = gpu
            .launch(SimTime::from_micros(100), c, kernel(20, 10))
            .unwrap()
            .unwrap();
        assert_eq!(s3.finish_at - s3.started, SimTime::from_micros(10));
    }

    #[test]
    fn hard_reset_aborts_and_clears_everything() {
        let mut gpu = v100();
        let a = gpu.register_client(50.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        gpu.memory_mut().alloc(1 << 20).unwrap();
        let sa = gpu.launch(SimTime::ZERO, a, kernel(40, 1000)).unwrap().unwrap();
        // b's kernel queues behind a full pool? No — 40 SMs remain, it runs.
        let _sb = gpu.launch(SimTime::ZERO, b, kernel(40, 1000)).unwrap().unwrap();
        // A third launch from a waits in-stream.
        assert!(gpu.launch(SimTime::ZERO, a, kernel(10, 10)).unwrap().is_none());
        assert_eq!(gpu.resident_kernels(), 2);

        gpu.hard_reset(SimTime::from_micros(500));
        assert_eq!(gpu.resident_kernels(), 0);
        assert_eq!(gpu.free_sms(), gpu.spec().sm_count);
        assert_eq!(gpu.mps().client_count(), 0);
        assert_eq!(gpu.memory().used(), 0);
        assert!(!gpu.is_resident(sa.kernel));
        // Aborted kernels count busy time but no completions.
        assert_eq!(gpu.metrics().total_kernels(), 0);
        let stats = gpu.metrics().window_stats(SimTime::from_micros(1000));
        assert!((stats.utilization - 0.5).abs() < 1e-9);
        // The device is reusable after the reset.
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::from_micros(1000), c, kernel(1, 1)).unwrap().unwrap();
        assert_ne!(s.kernel, sa.kernel); // ids are not reused
    }

    #[test]
    fn zero_block_kernel_treated_as_one() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(0, 10)).unwrap().unwrap();
        assert_eq!(s.granted_sms, 1);
        assert_eq!(s.finish_at, SimTime::from_micros(10));
    }

    /// Steps a burst through the per-kernel path: launch everything, then
    /// drive each finish at its scheduled time. Returns the last finish.
    fn run_per_kernel(gpu: &mut GpuDevice, client: ClientId, descs: &[KernelDesc]) -> SimTime {
        let mut pending: VecDeque<KernelStart> = VecDeque::new();
        for &d in descs {
            if let Some(s) = gpu.launch(SimTime::ZERO, client, d).unwrap() {
                pending.push_back(s);
            }
        }
        let mut last = SimTime::ZERO;
        while let Some(s) = pending.pop_front() {
            last = s.finish_at;
            let (_, started) = gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
            pending.extend(started);
        }
        last
    }

    #[test]
    fn fast_forward_matches_per_kernel_metrics() {
        let descs = [kernel(19, 200), kernel(40, 100), kernel(5, 50)];
        let mut stepped = v100();
        let cs = stepped.register_client(12.0).unwrap();
        let end_stepped = run_per_kernel(&mut stepped, cs, &descs);

        let mut ffwd = v100();
        let cf = ffwd.register_client(12.0).unwrap();
        let end_ff = ffwd
            .fast_forward_burst(SimTime::ZERO, cf, descs.iter().copied())
            .expect("idle capped-regime burst coalesces");
        assert_eq!(end_ff, end_stepped);
        let done = ffwd.ff_complete(end_ff, cf).unwrap();
        assert_eq!(done.completed, descs.len() as u64);

        assert_eq!(ffwd.free_sms(), stepped.free_sms());
        assert_eq!(ffwd.metrics().total_kernels(), stepped.metrics().total_kernels());
        assert_eq!(ffwd.metrics().client_busy(cf), stepped.metrics().client_busy(cs));
        let w = end_ff + SimTime::from_micros(1);
        let a = ffwd.metrics_mut().sample(w);
        let b = stepped.metrics_mut().sample(w);
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(a.sm_occupancy.to_bits(), b.sm_occupancy.to_bits());
    }

    #[test]
    fn fast_forward_sync_interleaves_two_clients_in_time_order() {
        // Two concurrent FF bursts whose boundaries interleave; a third
        // per-kernel client observes the pool afterwards.
        let mut gpu = v100();
        let a = gpu.register_client(25.0).unwrap(); // 20 SMs
        let b = gpu.register_client(50.0).unwrap(); // 40 SMs
        let ba = [kernel(20, 100), kernel(20, 100)];
        let bb = [kernel(40, 70), kernel(40, 70), kernel(40, 70)];
        let end_a = gpu.fast_forward_burst(SimTime::ZERO, a, ba.iter().copied()).unwrap();
        let end_b = gpu.fast_forward_burst(SimTime::ZERO, b, bb.iter().copied()).unwrap();
        assert_eq!(end_a, SimTime::from_micros(200));
        assert_eq!(end_b, SimTime::from_micros(210));
        gpu.ff_complete(end_a, a).unwrap();
        gpu.ff_complete(end_b, b).unwrap();
        assert_eq!(gpu.metrics().total_kernels(), 5);
        assert_eq!(gpu.free_sms(), 80);
        assert_eq!(gpu.metrics().client_busy(a), SimTime::from_micros(200));
        assert_eq!(gpu.metrics().client_busy(b), SimTime::from_micros(210));
    }

    #[test]
    fn fast_forward_refused_outside_capped_regime() {
        let mut gpu = v100();
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap(); // 200 % total: contended
        assert!(gpu
            .fast_forward_burst(SimTime::ZERO, a, [kernel(1, 1)].iter().copied())
            .is_none());
        gpu.unregister_client(b).unwrap();
        // Alone at 100 % the regime holds again.
        assert!(gpu
            .fast_forward_burst(SimTime::ZERO, a, [kernel(1, 1)].iter().copied())
            .is_some());
    }

    #[test]
    fn ff_break_reconstructs_exact_per_kernel_state() {
        let descs = [kernel(10, 100), kernel(10, 100), kernel(10, 100)];
        let mut gpu = v100();
        let c = gpu.register_client(12.0).unwrap(); // 10 SMs, 1 wave each
        let end = gpu.fast_forward_burst(SimTime::ZERO, c, descs.iter().copied()).unwrap();
        assert_eq!(end, SimTime::from_micros(300));

        // Break mid-flight of kernel #2 (t = 150): kernel #1's boundary is
        // applied, #2 is materialized as a real resident, #3 requeues.
        let brk = gpu.ff_break(SimTime::from_micros(150), c).unwrap();
        assert_eq!(brk.completed, 1);
        assert_eq!(brk.gpu_time, SimTime::from_micros(100));
        assert_eq!(brk.resumed.started, SimTime::from_micros(100));
        assert_eq!(brk.resumed.finish_at, SimTime::from_micros(200));
        assert_eq!(brk.resumed.granted_sms, 10);
        assert!(gpu.is_resident(brk.resumed.kernel));
        assert!(!gpu.has_ff());
        assert_eq!(gpu.free_sms(), 70);
        assert_eq!(gpu.metrics().total_kernels(), 1);

        // Normal stepping resumes and finishes the burst identically.
        let (done, started) = gpu
            .on_kernel_finish(brk.resumed.finish_at, brk.resumed.kernel)
            .unwrap();
        assert_eq!(done.gpu_time, SimTime::from_micros(100));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].finish_at, SimTime::from_micros(300));
        gpu.on_kernel_finish(started[0].finish_at, started[0].kernel).unwrap();
        assert_eq!(gpu.metrics().total_kernels(), 3);
        assert_eq!(gpu.metrics().client_busy(c), SimTime::from_micros(300));
        assert_eq!(gpu.free_sms(), 80);
    }

    #[test]
    fn hard_reset_aborts_ff_timeline() {
        let mut gpu = v100();
        let c = gpu.register_client(50.0).unwrap();
        gpu.fast_forward_burst(SimTime::ZERO, c, [kernel(40, 1000); 2].iter().copied())
            .unwrap();
        gpu.hard_reset(SimTime::from_micros(500));
        assert!(!gpu.has_ff());
        assert_eq!(gpu.free_sms(), gpu.spec().sm_count);
        // The in-flight kernel was aborted: busy time, no completion.
        assert_eq!(gpu.metrics().total_kernels(), 0);
        let stats = gpu.metrics().window_stats(SimTime::from_micros(1000));
        assert!((stats.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_round_trip_continues_identically() {
        // Build a device mid-flight: one resident kernel, one queued, one
        // waiting client, and an active fast-forward timeline on a third.
        let mut gpu = v100();
        let a = gpu.register_client(25.0).unwrap(); // 20 SMs
        let b = gpu.register_client(50.0).unwrap(); // 40 SMs
        let c = gpu.register_client(12.0).unwrap(); // 10 SMs
        let sa = gpu.launch(SimTime::ZERO, a, kernel(20, 100)).unwrap().unwrap();
        assert!(gpu.launch(SimTime::ZERO, a, kernel(20, 50)).unwrap().is_none());
        let _sb = gpu.launch(SimTime::ZERO, b, kernel(40, 70)).unwrap().unwrap();
        let end_c = gpu
            .fast_forward_burst(SimTime::ZERO, c, [kernel(10, 30), kernel(10, 30)].iter().copied())
            .unwrap();

        let mut w = SnapWriter::new();
        gpu.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        let mut restored = GpuDevice::unsnap(&mut r).unwrap();
        r.expect_done().unwrap();

        // Drive both devices through the same tail and compare.
        for dev in [&mut gpu, &mut restored] {
            dev.ff_complete(end_c, c).unwrap();
            let (done, started) = dev.on_kernel_finish(sa.finish_at, sa.kernel).unwrap();
            assert_eq!(done.gpu_time, SimTime::from_micros(100));
            for s in started {
                dev.on_kernel_finish(s.finish_at, s.kernel).unwrap();
            }
        }
        assert_eq!(gpu.free_sms(), restored.free_sms());
        assert_eq!(gpu.metrics().total_kernels(), restored.metrics().total_kernels());
        for cl in [a, b, c] {
            assert_eq!(gpu.metrics().client_busy(cl), restored.metrics().client_busy(cl));
        }
        let t = SimTime::from_micros(500);
        let x = gpu.metrics_mut().sample(t);
        let y = restored.metrics_mut().sample(t);
        assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
        assert_eq!(x.sm_occupancy.to_bits(), y.sm_occupancy.to_bits());
    }

    #[test]
    fn snapshot_rejects_corrupt_free_sms() {
        let gpu = v100();
        let mut w = SnapWriter::new();
        gpu.spec().snap(&mut w);
        gpu.mps().snap(&mut w);
        gpu.memory().snap(&mut w);
        gpu.metrics().snap(&mut w);
        w.u32(81); // free_sms beyond the V100's 80
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert!(GpuDevice::unsnap(&mut r).is_err());
    }

    #[test]
    fn unregister_with_ff_timeline_is_a_typed_error() {
        let mut gpu = v100();
        let c = gpu.register_client(50.0).unwrap();
        let end = gpu
            .fast_forward_burst(SimTime::ZERO, c, [kernel(1, 10)].iter().copied())
            .unwrap();
        assert_eq!(gpu.unregister_client(c).unwrap_err(), GpuError::WorkInFlight(c));
        gpu.ff_complete(end, c).unwrap();
        gpu.unregister_client(c).unwrap();
    }
}
