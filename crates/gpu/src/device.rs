//! The GPU execution engine: per-client in-order kernel streams over a
//! shared SM pool.
//!
//! The device is a *pure state machine*. `launch` and `on_kernel_finish`
//! return [`KernelStart`] effects carrying absolute finish timestamps; the
//! caller owns the event loop and schedules a finish callback for each
//! effect. This inversion keeps the device independently testable and free
//! of event-queue coupling.
//!
//! ## Execution model
//!
//! * Each MPS client has one in-order stream (CUDA default-stream
//!   semantics): at most one of its kernels is resident at a time; queued
//!   launches wait behind it. Cross-client kernels run concurrently — that
//!   is the Hyper-Q/MPS behaviour FaST-GShare's spatial sharing exploits.
//! * A kernel with `blocks` thread-blocks starting when `free` SMs are
//!   available is granted `granted = min(sm_cap(client), blocks, free)` SMs
//!   and runs for `ceil(blocks / granted) × work_per_block` (wave
//!   execution). It holds `granted` SMs for its whole residency
//!   (non-preemptive; real SMs run resident blocks to completion, and MPS
//!   partitions are enforced at block dispatch).
//! * A kernel needing SMs when none are free waits in a FIFO of ready
//!   clients; this creates the queueing contention that blows up tail
//!   latency in the paper's "racing" (over-subscribed, no temporal control)
//!   configuration.

use crate::error::GpuError;
use crate::memory::GpuMemory;
use crate::metrics::GpuMetrics;
use crate::mps::{MpsError, MpsMode, MpsServer};
use crate::spec::GpuSpec;
use fastg_des::SimTime;
use std::collections::VecDeque;

pub use crate::mps::ClientId;

/// Identifies one kernel launch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u64);

/// Description of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDesc {
    /// Number of thread-blocks in the grid. Bounds the kernel's usable
    /// parallelism: granting more SMs than blocks cannot speed it up —
    /// this is what makes throughput saturate along the spatial axis
    /// (paper Figure 8).
    pub blocks: u32,
    /// Time for one SM to retire one block (one wave slot).
    pub work_per_block: SimTime,
    /// Caller-defined tag threaded through to [`KernelStart`] /
    /// [`KernelDone`] (the platform stores a request/stage cookie here).
    pub tag: u64,
}

impl KernelDesc {
    /// Total SM-time this kernel needs regardless of how it is scheduled.
    pub fn total_work(&self) -> SimTime {
        self.work_per_block * u64::from(self.blocks)
    }
}

/// Effect: a kernel became resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStart {
    /// The launch this effect belongs to.
    pub kernel: KernelId,
    /// Owning MPS client.
    pub client: ClientId,
    /// Caller tag from the [`KernelDesc`].
    pub tag: u64,
    /// SMs granted for the kernel's residency.
    pub granted_sms: u32,
    /// When it became resident.
    pub started: SimTime,
    /// Absolute time at which the caller must invoke
    /// [`GpuDevice::on_kernel_finish`].
    pub finish_at: SimTime,
}

/// Result of completing a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDone {
    /// The completed launch.
    pub kernel: KernelId,
    /// Owning MPS client.
    pub client: ClientId,
    /// Caller tag from the [`KernelDesc`].
    pub tag: u64,
    /// Residency duration (the GPU time the FaST Backend charges against
    /// the pod's quota).
    pub gpu_time: SimTime,
    /// SMs the kernel held.
    pub granted_sms: u32,
}

#[derive(Debug, Clone)]
struct Running {
    client: ClientId,
    tag: u64,
    granted: u32,
    started: SimTime,
}

#[derive(Debug, Clone, Default)]
struct ClientStream {
    queued: VecDeque<KernelDesc>,
    running: Option<KernelId>,
    waiting: bool,
}

/// A simulated GPU: spec, MPS server, SM pool, memory and metrics.
///
/// ```
/// use fastg_gpu::{GpuDevice, GpuSpec, KernelDesc, MpsMode};
/// use fastg_des::SimTime;
///
/// let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
/// let client = gpu.register_client(12.0).unwrap(); // 12 % ≈ 10 SMs
/// let start = gpu
///     .launch(SimTime::ZERO, client, KernelDesc {
///         blocks: 19,
///         work_per_block: SimTime::from_micros(200),
///         tag: 0,
///     })
///     .unwrap()
///     .expect("idle stream starts immediately");
/// // 19 blocks on 10 SMs = 2 waves of 200 µs.
/// assert_eq!(start.finish_at, SimTime::from_micros(400));
/// let (done, _) = gpu.on_kernel_finish(start.finish_at, start.kernel).unwrap();
/// assert_eq!(done.gpu_time, SimTime::from_micros(400));
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    spec: GpuSpec,
    mps: MpsServer,
    memory: GpuMemory,
    metrics: GpuMetrics,
    free_sms: u32,
    /// Per-client streams, keyed by linear scan: a device hosts a handful
    /// of clients, and the kernel-completion path runs hot enough that a
    /// short Vec probe beats tree traversal.
    streams: Vec<(ClientId, ClientStream)>,
    /// Resident kernels (same linear-scan rationale; at most one kernel
    /// per client stream is resident at a time).
    running: Vec<(KernelId, Running)>,
    /// Clients whose stream head is ready but could not be granted SMs,
    /// in arrival order.
    wait_queue: VecDeque<ClientId>,
    next_kernel: u64,
    /// Kernel-duration multiplier (≥ 1.0). 1.0 is full speed; a degraded
    /// device (thermal throttling analogue) stretches every kernel started
    /// while the scale is raised. Resident kernels keep their durations.
    clock_scale: f64,
}

impl GpuDevice {
    /// Creates a device with the given spec and MPS mode.
    pub fn new(spec: GpuSpec, mode: MpsMode) -> Self {
        let mps = MpsServer::new(&spec, mode);
        let memory = GpuMemory::new(spec.memory_bytes);
        let metrics = GpuMetrics::new(spec.sm_count);
        let free_sms = spec.sm_count;
        GpuDevice {
            spec,
            mps,
            memory,
            metrics,
            free_sms,
            streams: Vec::new(),
            running: Vec::new(),
            wait_queue: VecDeque::new(),
            next_kernel: 0,
            clock_scale: 1.0,
        }
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The MPS server (client registry, spatial partitions).
    pub fn mps(&self) -> &MpsServer {
        &self.mps
    }

    /// Device memory allocator.
    pub fn memory(&self) -> &GpuMemory {
        &self.memory
    }

    /// Mutable device memory allocator.
    pub fn memory_mut(&mut self) -> &mut GpuMemory {
        &mut self.memory
    }

    /// Metric accounting.
    pub fn metrics(&self) -> &GpuMetrics {
        &self.metrics
    }

    /// Mutable metric accounting (for window sampling).
    pub fn metrics_mut(&mut self) -> &mut GpuMetrics {
        &mut self.metrics
    }

    /// SMs not currently granted to any resident kernel.
    pub fn free_sms(&self) -> u32 {
        self.free_sms
    }

    /// Current kernel-duration multiplier (1.0 = full speed).
    pub fn clock_scale(&self) -> f64 {
        self.clock_scale
    }

    /// Sets the kernel-duration multiplier. Values above 1.0 model a
    /// degraded device (clock throttling): every *subsequently started*
    /// kernel takes `factor ×` its nominal duration. Resident kernels are
    /// unaffected. Values ≤ 0 are clamped to 1.0.
    pub fn set_clock_scale(&mut self, factor: f64) {
        self.clock_scale = if factor > 0.0 { factor } else { 1.0 };
    }

    fn stream_mut(&mut self, client: ClientId) -> Option<&mut ClientStream> {
        self.streams
            .iter_mut()
            .find(|(id, _)| *id == client)
            .map(|(_, s)| s)
    }

    /// Hard-resets the device, as when its node loses power: every resident
    /// kernel is aborted (accounted as busy time but not as a completion),
    /// all queued work is discarded, every MPS client is unregistered, all
    /// device memory is reclaimed and the full SM pool is freed. The clock
    /// scale returns to 1.0.
    ///
    /// [`KernelId`]s are *not* reused after a reset, so stale finish events
    /// scheduled before the crash can be recognised and dropped by the
    /// caller ([`Self::on_kernel_finish`] returns
    /// [`GpuError::KernelNotResident`] for them).
    pub fn hard_reset(&mut self, now: SimTime) {
        let running = std::mem::take(&mut self.running);
        for (_, run) in running {
            self.metrics.kernel_aborted(now, run.granted);
        }
        self.streams.clear();
        self.wait_queue.clear();
        self.free_sms = self.spec.sm_count;
        self.memory = GpuMemory::new(self.spec.memory_bytes);
        for client in self.mps.client_ids() {
            let _ = self.mps.unregister(client);
        }
        self.clock_scale = 1.0;
    }

    /// Whether a kernel id refers to a currently resident kernel. After a
    /// [`Self::hard_reset`] all previously resident kernels report `false`;
    /// callers use this to discard stale finish events.
    pub fn is_resident(&self, kernel: KernelId) -> bool {
        self.running.iter().any(|(id, _)| *id == kernel)
    }

    /// Number of kernels currently resident.
    pub fn resident_kernels(&self) -> usize {
        self.running.len()
    }

    /// Registers an MPS client with an active-thread percentage.
    pub fn register_client(&mut self, percentage: f64) -> Result<ClientId, MpsError> {
        let id = self.mps.register(percentage)?;
        self.streams.push((id, ClientStream::default()));
        Ok(id)
    }

    /// Changes a client's spatial partition. Takes effect for subsequent
    /// kernel starts; resident kernels keep their grant.
    pub fn set_partition(&mut self, client: ClientId, percentage: f64) -> Result<(), MpsError> {
        self.mps.set_percentage(client, percentage)
    }

    /// Unregisters a client.
    ///
    /// # Errors
    /// [`GpuError::WorkInFlight`] if the client still has queued or
    /// resident kernels — the caller (pod teardown) must drain first; the
    /// client stays registered.
    pub fn unregister_client(&mut self, client: ClientId) -> Result<(), GpuError> {
        if let Some((_, s)) = self.streams.iter().find(|(id, _)| *id == client) {
            if !s.queued.is_empty() || s.running.is_some() {
                return Err(GpuError::WorkInFlight(client));
            }
        }
        self.streams.retain(|(id, _)| *id != client);
        self.wait_queue.retain(|&c| c != client);
        self.mps.unregister(client)?;
        Ok(())
    }

    /// Launches a kernel into `client`'s stream at time `now`. If the stream
    /// is idle and SMs are free the kernel becomes resident immediately and
    /// a [`KernelStart`] is returned; otherwise it waits.
    pub fn launch(
        &mut self,
        now: SimTime,
        client: ClientId,
        desc: KernelDesc,
    ) -> Result<Option<KernelStart>, GpuError> {
        if !self.mps.is_registered(client) {
            return Err(GpuError::Mps(MpsError::UnknownClient(client)));
        }
        let has_free_sms = self.free_sms > 0;
        let Some(stream) = self.stream_mut(client) else {
            debug_assert!(false, "registered client {client:?} has no stream");
            return Err(GpuError::MissingStream(client));
        };
        stream.queued.push_back(desc);
        if stream.running.is_none() && !stream.waiting {
            if has_free_sms {
                return self.start_head(now, client).map(Some);
            }
            stream.waiting = true;
            self.wait_queue.push_back(client);
        }
        Ok(None)
    }

    /// Completes a resident kernel. Returns its [`KernelDone`] record plus
    /// any kernels that became resident because SMs (or the stream) freed
    /// up.
    ///
    /// # Errors
    /// [`GpuError::KernelNotResident`] if `kernel` is not resident (e.g.
    /// completed twice, or a stale event from before a hard reset); the
    /// device state is unchanged.
    pub fn on_kernel_finish(
        &mut self,
        now: SimTime,
        kernel: KernelId,
    ) -> Result<(KernelDone, Vec<KernelStart>), GpuError> {
        let mut started = Vec::new();
        let done = self.on_kernel_finish_into(now, kernel, &mut started)?;
        Ok((done, started))
    }

    /// Like [`Self::on_kernel_finish`], but appends the newly started
    /// kernels to a caller-supplied buffer so the simulation's hottest
    /// event handler can reuse one allocation across every completion.
    pub fn on_kernel_finish_into(
        &mut self,
        now: SimTime,
        kernel: KernelId,
        started: &mut Vec<KernelStart>,
    ) -> Result<KernelDone, GpuError> {
        let i = self
            .running
            .iter()
            .position(|(id, _)| *id == kernel)
            .ok_or(GpuError::KernelNotResident(kernel))?;
        let (_, run) = self.running.swap_remove(i);
        self.free_sms += run.granted;
        debug_assert!(self.free_sms <= self.spec.sm_count);
        let gpu_time = now - run.started;
        self.metrics
            .kernel_finished(now, run.client, run.granted, gpu_time);
        let done = KernelDone {
            kernel,
            client: run.client,
            tag: run.tag,
            gpu_time,
            granted_sms: run.granted,
        };

        // The owner's stream is now idle; if it has queued work it joins the
        // back of the wait queue (round-robin fairness across clients).
        if let Some(stream) = self.stream_mut(run.client) {
            stream.running = None;
            if !stream.queued.is_empty() && !stream.waiting {
                stream.waiting = true;
                self.wait_queue.push_back(run.client);
            }
        } else {
            debug_assert!(false, "resident kernel's client {:?} has no stream", run.client);
        }

        // Admit waiting clients while SMs remain.
        while self.free_sms > 0 {
            let Some(client) = self.wait_queue.pop_front() else {
                break;
            };
            let Some(stream) = self.stream_mut(client) else {
                debug_assert!(false, "waiting client {client:?} has no stream");
                continue;
            };
            stream.waiting = false;
            if stream.queued.is_empty() || stream.running.is_some() {
                continue;
            }
            started.push(self.start_head(now, client)?);
        }
        Ok(done)
    }

    /// Starts the head kernel of `client`'s stream. Caller guarantees the
    /// stream is non-empty, not running, and `free_sms > 0`; a broken
    /// precondition surfaces as [`GpuError::MissingStream`].
    fn start_head(&mut self, now: SimTime, client: ClientId) -> Result<KernelStart, GpuError> {
        let Ok(cap) = self.mps.sm_cap(client) else {
            debug_assert!(false, "start_head on unregistered client {client:?}");
            return Err(GpuError::Mps(MpsError::UnknownClient(client)));
        };
        let Some(desc) = self.stream_mut(client).and_then(|s| s.queued.pop_front()) else {
            debug_assert!(false, "start_head on empty stream for {client:?}");
            return Err(GpuError::MissingStream(client));
        };
        let granted = cap.min(desc.blocks.max(1)).min(self.free_sms);
        debug_assert!(granted >= 1);
        let waves = u64::from(desc.blocks.max(1).div_ceil(granted));
        let nominal = desc.work_per_block * waves;
        // `clock_scale` is only ever assigned exact values (1.0 or a
        // caller-provided factor), so a tight epsilon test is safe here.
        let duration = if (self.clock_scale - 1.0).abs() < f64::EPSILON {
            nominal
        } else {
            nominal.scale(self.clock_scale)
        };
        let id = KernelId(self.next_kernel);
        self.next_kernel += 1;
        self.free_sms -= granted;
        if let Some(stream) = self.stream_mut(client) {
            stream.running = Some(id);
        }
        self.running.push((
            id,
            Running {
                client,
                tag: desc.tag,
                granted,
                started: now,
            },
        ));
        self.metrics.kernel_started(now, granted);
        Ok(KernelStart {
            kernel: id,
            client,
            tag: desc.tag,
            granted_sms: granted,
            started: now,
            finish_at: now + duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::new(GpuSpec::v100(), MpsMode::Shared)
    }

    fn kernel(blocks: u32, work_us: u64) -> KernelDesc {
        KernelDesc {
            blocks,
            work_per_block: SimTime::from_micros(work_us),
            tag: 0,
        }
    }

    #[test]
    fn single_kernel_single_wave() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let start = gpu
            .launch(SimTime::ZERO, c, kernel(20, 10))
            .unwrap()
            .expect("starts immediately");
        assert_eq!(start.granted_sms, 20); // blocks bound the grant
        assert_eq!(start.finish_at, SimTime::from_micros(10)); // one wave
        assert_eq!(gpu.free_sms(), 60);
        let (done, next) = gpu.on_kernel_finish(start.finish_at, start.kernel).unwrap();
        assert_eq!(done.gpu_time, SimTime::from_micros(10));
        assert!(next.is_empty());
        assert_eq!(gpu.free_sms(), 80);
    }

    #[test]
    fn partition_caps_grant_and_stretches_duration() {
        let mut gpu = v100();
        let c = gpu.register_client(12.0).unwrap(); // 10 SMs
        let start = gpu.launch(SimTime::ZERO, c, kernel(20, 10)).unwrap().unwrap();
        assert_eq!(start.granted_sms, 10);
        // ceil(20/10) = 2 waves.
        assert_eq!(start.finish_at, SimTime::from_micros(20));
    }

    #[test]
    fn in_order_stream_serializes_same_client() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s1 = gpu.launch(SimTime::ZERO, c, kernel(10, 10)).unwrap().unwrap();
        // Second launch queues behind the first.
        assert!(gpu.launch(SimTime::ZERO, c, kernel(10, 10)).unwrap().is_none());
        let (_, started) = gpu.on_kernel_finish(s1.finish_at, s1.kernel).unwrap();
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].started, SimTime::from_micros(10));
        assert_eq!(started[0].finish_at, SimTime::from_micros(20));
    }

    #[test]
    fn cross_client_kernels_run_concurrently() {
        let mut gpu = v100();
        let a = gpu.register_client(50.0).unwrap();
        let b = gpu.register_client(50.0).unwrap();
        let sa = gpu.launch(SimTime::ZERO, a, kernel(40, 10)).unwrap().unwrap();
        let sb = gpu.launch(SimTime::ZERO, b, kernel(40, 10)).unwrap().unwrap();
        assert_eq!(sa.granted_sms, 40);
        assert_eq!(sb.granted_sms, 40);
        assert_eq!(gpu.free_sms(), 0);
        assert_eq!(gpu.resident_kernels(), 2);
    }

    #[test]
    fn sm_exhaustion_queues_and_fifo_admits() {
        let mut gpu = v100();
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        let c = gpu.register_client(100.0).unwrap();
        let sa = gpu.launch(SimTime::ZERO, a, kernel(80, 10)).unwrap().unwrap();
        assert_eq!(sa.granted_sms, 80);
        // b and c wait: no SMs free.
        assert!(gpu.launch(SimTime::ZERO, b, kernel(80, 10)).unwrap().is_none());
        assert!(gpu.launch(SimTime::ZERO, c, kernel(80, 10)).unwrap().is_none());
        let (_, started) = gpu.on_kernel_finish(sa.finish_at, sa.kernel).unwrap();
        // b arrived first; it takes everything, c keeps waiting.
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].client, b);
        let (_, started) = gpu.on_kernel_finish(started[0].finish_at, started[0].kernel).unwrap();
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].client, c);
    }

    #[test]
    fn contended_start_gets_partial_grant() {
        let mut gpu = v100();
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        let _sa = gpu.launch(SimTime::ZERO, a, kernel(60, 10)).unwrap().unwrap();
        // 20 SMs left: b's 40-block kernel gets 20 and needs 2 waves.
        let sb = gpu.launch(SimTime::ZERO, b, kernel(40, 10)).unwrap().unwrap();
        assert_eq!(sb.granted_sms, 20);
        assert_eq!(sb.finish_at, SimTime::from_micros(20));
        assert_eq!(gpu.free_sms(), 0);
    }

    #[test]
    fn round_robin_between_backlogged_clients() {
        let mut gpu = GpuDevice::new(GpuSpec::custom("one-sm", 1, 1 << 30), MpsMode::Shared);
        let a = gpu.register_client(100.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, a, kernel(1, 10)).unwrap().unwrap();
        // Both clients have another kernel queued.
        assert!(gpu.launch(SimTime::ZERO, a, kernel(1, 10)).unwrap().is_none());
        assert!(gpu.launch(SimTime::ZERO, b, kernel(1, 10)).unwrap().is_none());
        let (_, next) = gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        // b was enqueued to the wait queue before a finished -> b runs next.
        assert_eq!(next[0].client, b);
        let (_, next) = gpu.on_kernel_finish(next[0].finish_at, next[0].kernel).unwrap();
        assert_eq!(next[0].client, a);
    }

    #[test]
    fn metrics_track_occupancy() {
        let mut gpu = v100();
        let c = gpu.register_client(50.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(40, 1000)).unwrap().unwrap();
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        let stats = gpu.metrics().window_stats(SimTime::from_micros(2000));
        // 40 SMs busy for 1000us of a 2000us window = 25 % occupancy.
        assert!((stats.sm_occupancy - 0.25).abs() < 1e-9);
        assert!((stats.utilization - 0.5).abs() < 1e-9);
        assert_eq!(gpu.metrics().client_busy(c), SimTime::from_micros(1000));
    }

    #[test]
    fn unknown_client_launch_rejected() {
        let mut gpu = v100();
        let err = gpu.launch(SimTime::ZERO, ClientId(99), kernel(1, 1));
        assert!(err.is_err());
    }

    #[test]
    fn double_finish_is_a_typed_error() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(1, 1)).unwrap().unwrap();
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        let err = gpu.on_kernel_finish(s.finish_at, s.kernel);
        assert_eq!(err.unwrap_err(), GpuError::KernelNotResident(s.kernel));
        // The device stays usable after the bad completion.
        assert_eq!(gpu.free_sms(), gpu.spec().sm_count);
    }

    #[test]
    fn unregister_with_resident_kernel_is_a_typed_error() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(1, 1)).unwrap().unwrap();
        let err = gpu.unregister_client(c);
        assert_eq!(err.unwrap_err(), GpuError::WorkInFlight(c));
        // The client is untouched: drain and retry succeeds.
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        gpu.unregister_client(c).unwrap();
    }

    #[test]
    fn unregister_clean_client() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(1, 1)).unwrap().unwrap();
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        gpu.unregister_client(c).unwrap();
        assert_eq!(gpu.mps().client_count(), 0);
    }

    #[test]
    fn clock_scale_stretches_new_kernels_only() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s1 = gpu.launch(SimTime::ZERO, c, kernel(20, 10)).unwrap().unwrap();
        assert_eq!(s1.finish_at, SimTime::from_micros(10));
        gpu.set_clock_scale(2.0);
        assert_eq!(gpu.clock_scale(), 2.0);
        // Queued behind s1; starts at s1's finish with the degraded clock.
        assert!(gpu.launch(SimTime::ZERO, c, kernel(20, 10)).unwrap().is_none());
        let (_, started) = gpu.on_kernel_finish(s1.finish_at, s1.kernel).unwrap();
        assert_eq!(started[0].finish_at - started[0].started, SimTime::from_micros(20));
        gpu.set_clock_scale(1.0);
        let (_, _) = gpu.on_kernel_finish(started[0].finish_at, started[0].kernel).unwrap();
        let s3 = gpu
            .launch(SimTime::from_micros(100), c, kernel(20, 10))
            .unwrap()
            .unwrap();
        assert_eq!(s3.finish_at - s3.started, SimTime::from_micros(10));
    }

    #[test]
    fn hard_reset_aborts_and_clears_everything() {
        let mut gpu = v100();
        let a = gpu.register_client(50.0).unwrap();
        let b = gpu.register_client(100.0).unwrap();
        gpu.memory_mut().alloc(1 << 20).unwrap();
        let sa = gpu.launch(SimTime::ZERO, a, kernel(40, 1000)).unwrap().unwrap();
        // b's kernel queues behind a full pool? No — 40 SMs remain, it runs.
        let _sb = gpu.launch(SimTime::ZERO, b, kernel(40, 1000)).unwrap().unwrap();
        // A third launch from a waits in-stream.
        assert!(gpu.launch(SimTime::ZERO, a, kernel(10, 10)).unwrap().is_none());
        assert_eq!(gpu.resident_kernels(), 2);

        gpu.hard_reset(SimTime::from_micros(500));
        assert_eq!(gpu.resident_kernels(), 0);
        assert_eq!(gpu.free_sms(), gpu.spec().sm_count);
        assert_eq!(gpu.mps().client_count(), 0);
        assert_eq!(gpu.memory().used(), 0);
        assert!(!gpu.is_resident(sa.kernel));
        // Aborted kernels count busy time but no completions.
        assert_eq!(gpu.metrics().total_kernels(), 0);
        let stats = gpu.metrics().window_stats(SimTime::from_micros(1000));
        assert!((stats.utilization - 0.5).abs() < 1e-9);
        // The device is reusable after the reset.
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::from_micros(1000), c, kernel(1, 1)).unwrap().unwrap();
        assert_ne!(s.kernel, sa.kernel); // ids are not reused
    }

    #[test]
    fn zero_block_kernel_treated_as_one() {
        let mut gpu = v100();
        let c = gpu.register_client(100.0).unwrap();
        let s = gpu.launch(SimTime::ZERO, c, kernel(0, 10)).unwrap().unwrap();
        assert_eq!(s.granted_sms, 1);
        assert_eq!(s.finish_at, SimTime::from_micros(10));
    }
}
