//! DCGM-exporter-style GPU metrics.
//!
//! Two headline signals, with the exact semantics the paper's measurements
//! rely on:
//!
//! * **Utilization** (`nvidia-smi` "GPU-Util"): the fraction of wall-clock
//!   time during which *at least one* kernel was resident. A single tiny
//!   kernel keeps utilization at 100 %, which is why Figure 1b can show
//!   > 95 % utilization with < 10 % SM occupancy.
//! * **SM occupancy**: the time-weighted mean fraction of SMs occupied by
//!   resident kernels.

use crate::device::ClientId;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{BusyTracker, SimTime, TimeSeries, TimeWeighted};
use std::collections::BTreeMap;

/// A snapshot of the GPU's aggregate counters over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuWindowStats {
    /// Busy fraction (0..=1) of the window.
    pub utilization: f64,
    /// Mean fraction (0..=1) of SMs occupied over the window.
    pub sm_occupancy: f64,
    /// Kernels completed during the window.
    pub kernels_completed: u64,
}

/// Live metric accounting for one GPU.
#[derive(Debug, Clone)]
pub struct GpuMetrics {
    sm_count: u32,
    util: BusyTracker,
    occupied_sms: TimeWeighted,
    kernels_completed: u64,
    window_kernels: u64,
    per_client_busy: BTreeMap<ClientId, SimTime>,
    util_series: TimeSeries,
    occ_series: TimeSeries,
    window_start: SimTime,
}

impl GpuMetrics {
    /// Creates metric accounting for a GPU with `sm_count` SMs, starting at
    /// time zero.
    pub fn new(sm_count: u32) -> Self {
        GpuMetrics {
            sm_count,
            util: BusyTracker::new(SimTime::ZERO),
            occupied_sms: TimeWeighted::new(SimTime::ZERO, 0.0),
            kernels_completed: 0,
            window_kernels: 0,
            per_client_busy: BTreeMap::new(),
            util_series: TimeSeries::new(),
            occ_series: TimeSeries::new(),
            window_start: SimTime::ZERO,
        }
    }

    /// Records a kernel starting with `granted_sms` SMs.
    pub fn kernel_started(&mut self, now: SimTime, granted_sms: u32) {
        self.util.begin(now);
        self.occupied_sms.add(now, granted_sms as f64);
    }

    /// Records a kernel finishing; `gpu_time` is its residency duration and
    /// `client` the MPS client it belonged to.
    pub fn kernel_finished(
        &mut self,
        now: SimTime,
        client: ClientId,
        granted_sms: u32,
        gpu_time: SimTime,
    ) {
        self.util.end(now);
        self.occupied_sms.add(now, -(granted_sms as f64));
        self.kernels_completed += 1;
        self.window_kernels += 1;
        *self
            .per_client_busy
            .entry(client)
            .or_insert(SimTime::ZERO) += gpu_time;
    }

    /// The pure time-integral half of [`Self::kernel_finished`] — busy
    /// interval end plus SM release — without the completion tallies. The
    /// fast-forward drain applies these boundaries one by one (their order
    /// against other clients' boundaries is what report parity hangs on)
    /// and batches the commutative integer counters through
    /// [`Self::tally_finished`] instead.
    pub fn kernel_finish_boundary(&mut self, now: SimTime, granted_sms: u32) {
        self.util.end(now);
        self.occupied_sms.add(now, -(granted_sms as f64));
    }

    /// The merged boundary of a back-to-back kernel handoff: one kernel
    /// finishes and its successor starts at the same instant `now`.
    /// Bit-identical to [`Self::kernel_finish_boundary`] followed by
    /// [`Self::kernel_started`] at equal timestamps: the busy tracker's
    /// end+begin pair telescopes to a no-op (integer busy sums are
    /// associative and the active count is unchanged), and the two
    /// occupancy deltas — exact small integers in `f64` — sum into one.
    pub fn kernel_handoff(&mut self, now: SimTime, finished_sms: u32, started_sms: u32) {
        self.occupied_sms
            .add(now, f64::from(started_sms) - f64::from(finished_sms));
    }

    /// Batched counter updates equivalent to `kernels` individual
    /// [`Self::kernel_finished`] calls whose boundary halves were already
    /// applied via [`Self::kernel_finish_boundary`]: pure integer sums, so
    /// one call per sync is bit-identical to one call per kernel.
    pub fn tally_finished(&mut self, client: ClientId, kernels: u64, busy: SimTime) {
        if kernels == 0 {
            return;
        }
        self.kernels_completed += kernels;
        self.window_kernels += kernels;
        *self
            .per_client_busy
            .entry(client)
            .or_insert(SimTime::ZERO) += busy;
    }

    /// Records a resident kernel being aborted (node crash / hard reset):
    /// its busy interval and SM occupancy end at `now`, but it counts
    /// neither as a completion nor toward any client's busy time — the work
    /// was lost, not served.
    pub fn kernel_aborted(&mut self, now: SimTime, granted_sms: u32) {
        self.util.end(now);
        self.occupied_sms.add(now, -(granted_sms as f64));
    }

    /// Closes the current sampling window at `now`, appends the samples to
    /// the exported series, and opens a new window. Returns the window's
    /// stats (the DCGM-exporter scrape analogue).
    pub fn sample(&mut self, now: SimTime) -> GpuWindowStats {
        let stats = self.window_stats(now);
        self.util_series.push(now, stats.utilization);
        self.occ_series.push(now, stats.sm_occupancy);
        self.util.reset(now);
        self.occupied_sms.reset(now);
        self.window_start = now;
        self.window_kernels = 0;
        stats
    }

    /// Stats for the window open since the last [`Self::sample`] (or start),
    /// without closing it.
    pub fn window_stats(&self, now: SimTime) -> GpuWindowStats {
        GpuWindowStats {
            utilization: self.util.utilization_at(now),
            sm_occupancy: self.occupied_sms.mean_at(now) / self.sm_count as f64,
            kernels_completed: self.window_kernels,
        }
    }

    /// Total kernels completed since creation.
    pub fn total_kernels(&self) -> u64 {
        self.kernels_completed
    }

    /// A probe of the counters cluster fast-forward snapshots around one
    /// real template cycle: `(busy_total, raw occupancy integral, total
    /// kernels, client busy)`. All four are exact quantities (integer
    /// SimTime sums and integer-valued `f64`), so the per-cycle deltas the
    /// caller derives are exact too.
    pub fn steady_probe(&self, now: SimTime, client: ClientId) -> (SimTime, f64, u64, SimTime) {
        (
            self.util.busy_at(now),
            self.occupied_sms.raw_integral_at(now),
            self.kernels_completed,
            self.client_busy(client),
        )
    }

    /// Credits `k` coalesced steady cycles in closed form — bit-identical
    /// to replaying the template cycle `k` times through the event-driven
    /// path, because every credited quantity is exact integer arithmetic
    /// (see [`fastg_des::TimeWeighted::credit_raw`]). Only valid while the
    /// device is idle (no resident kernels), which holds at the completion
    /// instants cluster FF enters and exits steady state on.
    pub fn credit_steady_cycles(
        &mut self,
        client: ClientId,
        k: u64,
        cycle_busy: SimTime,
        cycle_occ_raw: f64,
        cycle_kernels: u64,
        cycle_client_busy: SimTime,
    ) {
        debug_assert_eq!(self.util.active(), 0, "credit while kernels resident");
        self.util.credit(cycle_busy * k);
        // u64→f64: k is bounded by the run's cycle count, far below 2^53.
        // fastg-lint: allow(no-lossy-cast)
        self.occupied_sms.credit_raw(cycle_occ_raw * k as f64);
        self.tally_finished(client, cycle_kernels * k, cycle_client_busy * k);
    }

    /// Cumulative GPU busy time attributed to `client` (the Gemini-style
    /// usage monitor the FaST Backend charges quotas from).
    pub fn client_busy(&self, client: ClientId) -> SimTime {
        self.per_client_busy
            .get(&client)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// The exported utilization series (one point per sample call).
    pub fn utilization_series(&self) -> &TimeSeries {
        &self.util_series
    }

    /// The exported SM-occupancy series (one point per sample call).
    pub fn occupancy_series(&self) -> &TimeSeries {
        &self.occ_series
    }

    /// Number of SMs this accounting was created for.
    pub fn sm_count(&self) -> u32 {
        self.sm_count
    }

    /// Number of kernels currently resident.
    pub fn resident_kernels(&self) -> u32 {
        self.util.active()
    }
}

impl Snap for GpuMetrics {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            sm_count,
            util,
            occupied_sms,
            kernels_completed,
            window_kernels,
            per_client_busy,
            util_series,
            occ_series,
            window_start,
        } = self;
        w.u32(*sm_count);
        util.snap(w);
        occupied_sms.snap(w);
        w.u64(*kernels_completed);
        w.u64(*window_kernels);
        per_client_busy.snap(w);
        util_series.snap(w);
        occ_series.snap(w);
        window_start.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(GpuMetrics {
            sm_count: r.u32()?,
            util: BusyTracker::unsnap(r)?,
            occupied_sms: TimeWeighted::unsnap(r)?,
            kernels_completed: r.u64()?,
            window_kernels: r.u64()?,
            per_client_busy: BTreeMap::unsnap(r)?,
            util_series: TimeSeries::unsnap(r)?,
            occ_series: TimeSeries::unsnap(r)?,
            window_start: SimTime::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_vs_occupancy_divergence() {
        // One 8-SM kernel resident the whole time on an 80-SM GPU:
        // utilization 100 %, occupancy 10 %. This is the Figure 1 effect.
        let mut m = GpuMetrics::new(80);
        m.kernel_started(SimTime::ZERO, 8);
        let stats = m.window_stats(SimTime::from_secs(1));
        assert!((stats.utilization - 1.0).abs() < 1e-9);
        assert!((stats.sm_occupancy - 0.1).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_lower_utilization() {
        let mut m = GpuMetrics::new(80);
        m.kernel_started(SimTime::ZERO, 80);
        m.kernel_finished(SimTime::from_millis(250), ClientId(0), 80, SimTime::from_millis(250));
        let stats = m.window_stats(SimTime::from_secs(1));
        assert!((stats.utilization - 0.25).abs() < 1e-9);
        assert!((stats.sm_occupancy - 0.25).abs() < 1e-9);
        assert_eq!(stats.kernels_completed, 1);
    }

    #[test]
    fn sampling_resets_window() {
        let mut m = GpuMetrics::new(10);
        m.kernel_started(SimTime::ZERO, 10);
        m.kernel_finished(SimTime::from_millis(500), ClientId(1), 10, SimTime::from_millis(500));
        let w1 = m.sample(SimTime::from_secs(1));
        assert!((w1.utilization - 0.5).abs() < 1e-9);
        assert_eq!(w1.kernels_completed, 1);
        // Second window: idle.
        let w2 = m.sample(SimTime::from_secs(2));
        assert_eq!(w2.utilization, 0.0);
        assert_eq!(w2.kernels_completed, 0);
        assert_eq!(m.utilization_series().len(), 2);
        assert_eq!(m.total_kernels(), 1);
    }

    #[test]
    fn per_client_busy_accumulates() {
        let mut m = GpuMetrics::new(80);
        let c = ClientId(3);
        m.kernel_started(SimTime::ZERO, 4);
        m.kernel_finished(SimTime::from_millis(10), c, 4, SimTime::from_millis(10));
        m.kernel_started(SimTime::from_millis(20), 4);
        m.kernel_finished(SimTime::from_millis(35), c, 4, SimTime::from_millis(15));
        assert_eq!(m.client_busy(c), SimTime::from_millis(25));
        assert_eq!(m.client_busy(ClientId(9)), SimTime::ZERO);
    }

    #[test]
    fn overlapping_kernels_sum_occupancy() {
        let mut m = GpuMetrics::new(80);
        m.kernel_started(SimTime::ZERO, 20);
        m.kernel_started(SimTime::ZERO, 20);
        assert_eq!(m.resident_kernels(), 2);
        let stats = m.window_stats(SimTime::from_secs(1));
        assert!((stats.sm_occupancy - 0.5).abs() < 1e-9);
        assert!((stats.utilization - 1.0).abs() < 1e-9);
    }
}
