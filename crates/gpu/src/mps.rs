//! Multi-Process Service (MPS) analogue: the spatial-sharing backend.
//!
//! The real MPS server multiplexes CUDA contexts from many processes onto
//! one GPU and caps each client's concurrently active SMs via the
//! `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE` environment variable. This module
//! reproduces that management surface: a client registry with per-client
//! active-thread percentages, translated into SM caps the execution engine
//! ([`crate::GpuDevice`]) enforces.

use crate::spec::GpuSpec;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// Identifies an MPS client (one function-instance container / pod).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// How the GPU is exposed to processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpsMode {
    /// MPS server running: many clients share the GPU concurrently, each
    /// limited by its active-thread percentage. This is FaST-GShare's
    /// normal operating mode.
    Shared,
    /// No MPS; the device-plugin baseline. Exactly one client may register
    /// and it always receives the whole GPU.
    Exclusive,
}

/// Errors from MPS client management.
#[derive(Debug, Clone, PartialEq)]
pub enum MpsError {
    /// Exclusive mode already has its single client.
    ExclusiveBusy,
    /// The percentage is outside `(0, 100]`.
    BadPercentage(f64),
    /// The client id is not registered.
    UnknownClient(ClientId),
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsError::ExclusiveBusy => {
                write!(f, "GPU is in exclusive mode and already has a client")
            }
            MpsError::BadPercentage(p) => {
                write!(f, "active-thread percentage {p} outside (0, 100]")
            }
            MpsError::UnknownClient(c) => write!(f, "unknown MPS client {c:?}"),
        }
    }
}

impl std::error::Error for MpsError {}

/// Granularity of the quota axis under segment-quantized demand
/// matching: temporal quotas are reserved in 5 % steps, mirroring how
/// operators hand out `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE` in coarse
/// increments rather than arbitrary reals.
pub const QUOTA_SEGMENT_PERCENT: u32 = 5;

/// Rounds a quota-percent demand *up* to the next
/// [`QUOTA_SEGMENT_PERCENT`] boundary, clamped to `1..=100` — the
/// quota-axis counterpart of MIG slice snapping for ParvaGPU-style
/// demand matching.
pub fn quantize_quota_percent(quota_percent: u32) -> u32 {
    let q = quota_percent.max(1);
    (q.div_ceil(QUOTA_SEGMENT_PERCENT) * QUOTA_SEGMENT_PERCENT).min(100)
}

#[derive(Debug, Clone)]
struct ClientEntry {
    /// Active-thread percentage in `(0, 100]`.
    percentage: f64,
    /// Cached SM cap derived from the percentage.
    sm_cap: u32,
}

/// The MPS server: client registry and spatial partition bookkeeping.
#[derive(Debug, Clone)]
pub struct MpsServer {
    mode: MpsMode,
    sm_count: u32,
    clients: BTreeMap<ClientId, ClientEntry>,
    next_id: u32,
}

impl MpsServer {
    /// Creates a server for a GPU with the given spec.
    pub fn new(spec: &GpuSpec, mode: MpsMode) -> Self {
        MpsServer {
            mode,
            sm_count: spec.sm_count,
            clients: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// The sharing mode.
    pub fn mode(&self) -> MpsMode {
        self.mode
    }

    /// Registers a new client with the given active-thread percentage
    /// (ignored — forced to 100 — in exclusive mode).
    pub fn register(&mut self, percentage: f64) -> Result<ClientId, MpsError> {
        if self.mode == MpsMode::Exclusive && !self.clients.is_empty() {
            return Err(MpsError::ExclusiveBusy);
        }
        let percentage = if self.mode == MpsMode::Exclusive {
            100.0
        } else {
            percentage
        };
        if !(percentage > 0.0 && percentage <= 100.0) {
            return Err(MpsError::BadPercentage(percentage));
        }
        let id = ClientId(self.next_id);
        self.next_id += 1;
        let sm_cap = self.sm_cap_for(percentage);
        self.clients.insert(
            id,
            ClientEntry {
                percentage,
                sm_cap,
            },
        );
        Ok(id)
    }

    /// Removes a client.
    pub fn unregister(&mut self, id: ClientId) -> Result<(), MpsError> {
        self.clients
            .remove(&id)
            .map(|_| ())
            .ok_or(MpsError::UnknownClient(id))
    }

    /// Changes a client's active-thread percentage.
    pub fn set_percentage(&mut self, id: ClientId, percentage: f64) -> Result<(), MpsError> {
        if !(percentage > 0.0 && percentage <= 100.0) {
            return Err(MpsError::BadPercentage(percentage));
        }
        let cap = self.sm_cap_for(percentage);
        let entry = self
            .clients
            .get_mut(&id)
            .ok_or(MpsError::UnknownClient(id))?;
        entry.percentage = percentage;
        entry.sm_cap = cap;
        Ok(())
    }

    /// The SM cap of a client.
    pub fn sm_cap(&self, id: ClientId) -> Result<u32, MpsError> {
        self.clients
            .get(&id)
            .map(|e| e.sm_cap)
            .ok_or(MpsError::UnknownClient(id))
    }

    /// The active-thread percentage of a client.
    pub fn percentage(&self, id: ClientId) -> Result<f64, MpsError> {
        self.clients
            .get(&id)
            .map(|e| e.percentage)
            .ok_or(MpsError::UnknownClient(id))
    }

    /// Whether the client is registered.
    pub fn is_registered(&self, id: ClientId) -> bool {
        self.clients.contains_key(&id)
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Ids of all registered clients, in ascending order.
    pub fn client_ids(&self) -> Vec<ClientId> {
        self.clients.keys().copied().collect()
    }

    /// Sum of all clients' active-thread percentages; > 100 means the GPU is
    /// spatially over-subscribed.
    pub fn total_percentage(&self) -> f64 {
        self.clients.values().map(|e| e.percentage).sum()
    }

    /// Sum of every client's SM cap, in SMs. When this is at most the
    /// device's SM count, the partitions cannot contend: every kernel start
    /// is guaranteed its full `min(cap, blocks)` grant regardless of what
    /// other clients are running (the fast-forward eligibility condition).
    pub fn total_sm_cap(&self) -> u64 {
        self.clients.values().map(|e| u64::from(e.sm_cap)).sum()
    }

    fn sm_cap_for(&self, percentage: f64) -> u32 {
        // The rounded value is clamped into [1, sm_count] below.
        // fastg-lint: allow(no-lossy-cast)
        ((self.sm_count as f64 * percentage / 100.0).round() as u32)
            .max(1)
            .min(self.sm_count)
    }
}

impl Snap for ClientId {
    fn snap(&self, w: &mut SnapWriter) {
        let ClientId(raw) = self;
        w.u32(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ClientId(r.u32()?))
    }
}

impl Snap for MpsMode {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            MpsMode::Shared => w.u8(0),
            MpsMode::Exclusive => w.u8(1),
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(MpsMode::Shared),
            1 => Ok(MpsMode::Exclusive),
            _ => Err(SnapError::new("mps mode tag")),
        }
    }
}

impl Snap for ClientEntry {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { percentage, sm_cap } = self;
        percentage.snap(w);
        w.u32(*sm_cap);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ClientEntry {
            percentage: f64::unsnap(r)?,
            sm_cap: r.u32()?,
        })
    }
}

impl Snap for MpsServer {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            mode,
            sm_count,
            clients,
            next_id,
        } = self;
        mode.snap(w);
        w.u32(*sm_count);
        clients.snap(w);
        w.u32(*next_id);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mode = MpsMode::unsnap(r)?;
        let sm_count = r.u32()?;
        let clients: BTreeMap<ClientId, ClientEntry> = BTreeMap::unsnap(r)?;
        let next_id = r.u32()?;
        if clients.keys().any(|c| c.0 >= next_id) {
            return Err(SnapError::new("mps client id space"));
        }
        Ok(MpsServer {
            mode,
            sm_count,
            clients,
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(mode: MpsMode) -> MpsServer {
        MpsServer::new(&GpuSpec::v100(), mode)
    }

    #[test]
    fn quota_segment_quantization_rounds_up_and_clamps() {
        assert_eq!(quantize_quota_percent(0), 5);
        assert_eq!(quantize_quota_percent(1), 5);
        assert_eq!(quantize_quota_percent(5), 5);
        assert_eq!(quantize_quota_percent(6), 10);
        assert_eq!(quantize_quota_percent(42), 45);
        assert_eq!(quantize_quota_percent(100), 100);
        assert_eq!(quantize_quota_percent(250), 100);
    }

    #[test]
    fn shared_mode_registers_many() {
        let mut s = server(MpsMode::Shared);
        let a = s.register(12.0).unwrap();
        let b = s.register(24.0).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.sm_cap(a).unwrap(), 10);
        assert_eq!(s.sm_cap(b).unwrap(), 19);
        assert_eq!(s.client_count(), 2);
        assert!((s.total_percentage() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn exclusive_mode_allows_single_full_client() {
        let mut s = server(MpsMode::Exclusive);
        let a = s.register(12.0).unwrap(); // percentage overridden to 100
        assert_eq!(s.sm_cap(a).unwrap(), 80);
        assert_eq!(s.register(50.0), Err(MpsError::ExclusiveBusy));
        s.unregister(a).unwrap();
        assert!(s.register(100.0).is_ok());
    }

    #[test]
    fn percentage_validation() {
        let mut s = server(MpsMode::Shared);
        assert_eq!(s.register(0.0), Err(MpsError::BadPercentage(0.0)));
        assert_eq!(s.register(101.0), Err(MpsError::BadPercentage(101.0)));
        let a = s.register(50.0).unwrap();
        assert_eq!(s.set_percentage(a, -5.0), Err(MpsError::BadPercentage(-5.0)));
    }

    #[test]
    fn repartition_updates_cap() {
        let mut s = server(MpsMode::Shared);
        let a = s.register(50.0).unwrap();
        assert_eq!(s.sm_cap(a).unwrap(), 40);
        s.set_percentage(a, 6.0).unwrap();
        assert_eq!(s.sm_cap(a).unwrap(), 5);
        assert!((s.percentage(a).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_client_errors() {
        let mut s = server(MpsMode::Shared);
        let ghost = ClientId(42);
        assert_eq!(s.sm_cap(ghost), Err(MpsError::UnknownClient(ghost)));
        assert_eq!(s.unregister(ghost), Err(MpsError::UnknownClient(ghost)));
        assert!(!s.is_registered(ghost));
    }

    #[test]
    fn tiny_partition_floors_at_one_sm() {
        let mut s = MpsServer::new(&GpuSpec::custom("mini", 4, 1 << 30), MpsMode::Shared);
        let a = s.register(1.0).unwrap();
        assert_eq!(s.sm_cap(a).unwrap(), 1);
    }
}
