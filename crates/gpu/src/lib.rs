//! # fastg-gpu — simulated GPU device model
//!
//! A discrete-event model of a data-center GPU (default: NVIDIA V100-like,
//! 80 SMs, 16 GiB) that reproduces the scheduling-relevant behaviour the
//! FaST-GShare paper depends on:
//!
//! * **SM pool execution** ([`GpuDevice`]): kernels are launched into
//!   per-client in-order streams (CUDA stream semantics under MPS). A kernel
//!   with `blocks` thread-blocks is granted
//!   `min(partition_sms, blocks, free_sms)` SMs when it starts and runs for
//!   `ceil(blocks / granted) × work_per_block` (wave execution). Execution is
//!   non-preemptive, matching real SMs which run a resident block to
//!   completion.
//! * **MPS spatial partitioning** ([`MpsServer`]): the
//!   `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE` analogue caps how many SMs one
//!   client's kernels may occupy concurrently; exclusive mode models the
//!   Kubernetes device plugin (whole-GPU assignment).
//! * **Device memory** ([`GpuMemory`]): a first-fit allocator with
//!   `cuMemAlloc`/`cuMemFree` and CUDA-IPC handle analogues, used by the
//!   model-sharing storage server.
//! * **DCGM-style metrics** ([`metrics::GpuMetrics`]): *utilization* is the
//!   fraction of time at least one kernel is resident (nvidia-smi
//!   semantics); *SM occupancy* is the time-weighted mean fraction of SMs
//!   occupied. The paper's Figure 1 contrast (>95 % utilization, <10 %
//!   occupancy under time sharing) falls directly out of these definitions.
//!
//! The device is a pure state machine: `launch`/`on_kernel_finish` return
//! [`KernelStart`] effects carrying absolute finish times, and the caller
//! (the platform event loop in the `fastgshare` crate) schedules them on its
//! own event queue. That keeps this crate free of any event-loop coupling
//! and independently testable.

#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod memory;
pub mod metrics;
pub mod mig;
pub mod mps;
pub mod spec;

pub use device::{
    ClientId, FfBreak, FfDone, GpuDevice, KernelDesc, KernelDone, KernelId, KernelStart,
};
pub use error::GpuError;
pub use memory::{DevicePtr, GpuMemory, IpcHandle, MemError};
pub use mig::{MigConfig, MigError, MigProfile};
pub use mps::{MpsError, MpsMode, MpsServer};
pub use spec::GpuSpec;
