//! Device-memory allocator with CUDA-IPC handle analogues.
//!
//! Models `cuMemAlloc` / `cuMemFree` plus the `cuIpcGetMemHandle` /
//! `cuIpcOpenMemHandle` pair the model-sharing storage server uses to export
//! one copy of the weights to many function instances. Allocation is
//! first-fit over a sorted free list with coalescing on free — enough to
//! study fragmentation and capacity questions (e.g. "how many ResNeXt pods
//! fit in 16 GB?").

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// A device pointer: base offset and length of a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevicePtr {
    /// Byte offset from the start of device memory.
    pub offset: u64,
    /// Allocation length in bytes.
    pub len: u64,
}

/// An inter-process memory handle exported for a live allocation
/// (`cuIpcGetMemHandle` analogue). Opening it yields the same
/// [`DevicePtr`] in another "process".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpcHandle(pub u64);

/// Memory-management errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Not enough contiguous free memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free (possibly fragmented).
        free: u64,
    },
    /// The pointer is not a live allocation.
    InvalidPointer(DevicePtr),
    /// The IPC handle does not name a live allocation.
    InvalidHandle(IpcHandle),
    /// Zero-byte allocations are rejected, as in CUDA.
    ZeroSize,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory { requested, free } => {
                write!(f, "out of device memory: requested {requested} B, {free} B free")
            }
            MemError::InvalidPointer(p) => write!(f, "invalid device pointer {p:?}"),
            MemError::InvalidHandle(h) => write!(f, "invalid IPC handle {h:?}"),
            MemError::ZeroSize => write!(f, "zero-byte allocation"),
        }
    }
}

impl std::error::Error for MemError {}

/// The device-memory allocator for one GPU.
#[derive(Debug, Clone)]
pub struct GpuMemory {
    capacity: u64,
    /// Free extents keyed by offset; values are lengths. Invariant: sorted,
    /// non-overlapping, non-adjacent (adjacent extents are coalesced).
    free: BTreeMap<u64, u64>,
    /// Live allocations keyed by offset; values are lengths.
    live: BTreeMap<u64, u64>,
    /// Exported IPC handles: handle -> pointer.
    handles: BTreeMap<u64, DevicePtr>,
    next_handle: u64,
}

impl GpuMemory {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        GpuMemory {
            capacity,
            free,
            live: BTreeMap::new(),
            handles: BTreeMap::new(),
            next_handle: 1,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.live.values().sum()
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Size of the largest contiguous free extent.
    pub fn largest_free_extent(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Allocates `len` bytes (`cuMemAlloc`). First-fit.
    pub fn alloc(&mut self, len: u64) -> Result<DevicePtr, MemError> {
        if len == 0 {
            return Err(MemError::ZeroSize);
        }
        let slot = self
            .free
            .iter()
            .find(|&(_, &flen)| flen >= len)
            .map(|(&off, &flen)| (off, flen));
        match slot {
            Some((off, flen)) => {
                self.free.remove(&off);
                if flen > len {
                    self.free.insert(off + len, flen - len);
                }
                self.live.insert(off, len);
                Ok(DevicePtr { offset: off, len })
            }
            None => Err(MemError::OutOfMemory {
                requested: len,
                free: self.free_bytes(),
            }),
        }
    }

    /// Frees an allocation (`cuMemFree`). Any IPC handles exported for it
    /// are invalidated.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<(), MemError> {
        match self.live.get(&ptr.offset) {
            Some(&len) if len == ptr.len => {}
            _ => return Err(MemError::InvalidPointer(ptr)),
        }
        self.live.remove(&ptr.offset);
        self.handles.retain(|_, p| *p != ptr);
        self.insert_free(ptr.offset, ptr.len);
        Ok(())
    }

    /// Exports an IPC handle for a live allocation (`cuIpcGetMemHandle`).
    pub fn ipc_get_handle(&mut self, ptr: DevicePtr) -> Result<IpcHandle, MemError> {
        match self.live.get(&ptr.offset) {
            Some(&len) if len == ptr.len => {}
            _ => return Err(MemError::InvalidPointer(ptr)),
        }
        let h = IpcHandle(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(h.0, ptr);
        Ok(h)
    }

    /// Opens an IPC handle, yielding the shared pointer
    /// (`cuIpcOpenMemHandle`).
    pub fn ipc_open_handle(&self, handle: IpcHandle) -> Result<DevicePtr, MemError> {
        self.handles
            .get(&handle.0)
            .copied()
            .ok_or(MemError::InvalidHandle(handle))
    }

    /// Inserts a free extent, coalescing with neighbours.
    fn insert_free(&mut self, mut offset: u64, mut len: u64) {
        // Coalesce with the predecessor if adjacent.
        if let Some((&poff, &plen)) = self.free.range(..offset).next_back() {
            debug_assert!(poff + plen <= offset, "overlapping free extents");
            if poff + plen == offset {
                self.free.remove(&poff);
                offset = poff;
                len += plen;
            }
        }
        // Coalesce with the successor if adjacent.
        if let Some((&noff, &nlen)) = self.free.range(offset + len..).next() {
            if offset + len == noff {
                self.free.remove(&noff);
                len += nlen;
            }
        }
        self.free.insert(offset, len);
    }
}

impl Snap for DevicePtr {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { offset, len } = self;
        w.u64(*offset);
        w.u64(*len);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DevicePtr {
            offset: r.u64()?,
            len: r.u64()?,
        })
    }
}

impl Snap for IpcHandle {
    fn snap(&self, w: &mut SnapWriter) {
        let Self(raw) = self;
        w.u64(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IpcHandle(r.u64()?))
    }
}

impl Snap for GpuMemory {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            capacity,
            free,
            live,
            handles,
            next_handle,
        } = self;
        w.u64(*capacity);
        free.snap(w);
        live.snap(w);
        handles.snap(w);
        w.u64(*next_handle);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let capacity = r.u64()?;
        let free: BTreeMap<u64, u64> = BTreeMap::unsnap(r)?;
        let live: BTreeMap<u64, u64> = BTreeMap::unsnap(r)?;
        let handles: BTreeMap<u64, DevicePtr> = BTreeMap::unsnap(r)?;
        let next_handle = r.u64()?;
        let used: u64 = live.values().sum();
        let unused: u64 = free.values().sum();
        if used.checked_add(unused) != Some(capacity) {
            return Err(SnapError::new("gpu memory accounting"));
        }
        Ok(GpuMemory {
            capacity,
            free,
            live,
            handles,
            next_handle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut m = GpuMemory::new(1024);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(200).unwrap();
        assert_eq!(m.used(), 300);
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 100);
        m.free(a).unwrap();
        assert_eq!(m.used(), 200);
        m.free(b).unwrap();
        assert_eq!(m.used(), 0);
        assert_eq!(m.largest_free_extent(), 1024); // fully coalesced
    }

    #[test]
    fn out_of_memory_reports_free() {
        let mut m = GpuMemory::new(100);
        m.alloc(60).unwrap();
        assert_eq!(
            m.alloc(50),
            Err(MemError::OutOfMemory {
                requested: 50,
                free: 40
            })
        );
    }

    #[test]
    fn fragmentation_blocks_large_alloc() {
        let mut m = GpuMemory::new(300);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        let _c = m.alloc(100).unwrap();
        m.free(a).unwrap();
        // free = 100 at offset 0 but b occupies 100..200.
        assert!(m.alloc(150).is_err());
        m.free(b).unwrap();
        // Now 0..200 coalesced.
        assert_eq!(m.largest_free_extent(), 200);
        assert!(m.alloc(150).is_ok());
    }

    #[test]
    fn double_free_rejected() {
        let mut m = GpuMemory::new(100);
        let a = m.alloc(10).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a), Err(MemError::InvalidPointer(a)));
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut m = GpuMemory::new(100);
        assert_eq!(m.alloc(0), Err(MemError::ZeroSize));
    }

    #[test]
    fn ipc_handles() {
        let mut m = GpuMemory::new(1024);
        let a = m.alloc(64).unwrap();
        let h = m.ipc_get_handle(a).unwrap();
        assert_eq!(m.ipc_open_handle(h).unwrap(), a);
        m.free(a).unwrap();
        assert_eq!(m.ipc_open_handle(h), Err(MemError::InvalidHandle(h)));
    }

    #[test]
    fn ipc_handle_for_dead_pointer_rejected() {
        let mut m = GpuMemory::new(1024);
        let a = m.alloc(64).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.ipc_get_handle(a), Err(MemError::InvalidPointer(a)));
    }

    #[test]
    fn coalescing_middle_extent() {
        let mut m = GpuMemory::new(300);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        let c = m.alloc(100).unwrap();
        m.free(a).unwrap();
        m.free(c).unwrap();
        m.free(b).unwrap(); // coalesces with both neighbours
        assert_eq!(m.largest_free_extent(), 300);
    }
}
