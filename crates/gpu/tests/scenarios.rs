//! Multi-client GPU scenarios: contention, fairness, metric series and
//! cross-process memory sharing, driven as miniature event loops.

use fastg_des::SimTime;
use fastg_gpu::{GpuDevice, GpuSpec, KernelDesc, KernelStart, MpsMode};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn kernel(blocks: u32, work_us: u64, tag: u64) -> KernelDesc {
    KernelDesc {
        blocks,
        work_per_block: SimTime::from_micros(work_us),
        tag,
    }
}

/// Drives the device until all submitted kernels complete; returns per-tag
/// total GPU time.
fn drain(gpu: &mut GpuDevice, mut pending: BinaryHeap<Reverse<(SimTime, fastg_gpu::KernelId)>>) -> Vec<(u64, SimTime)> {
    let mut per_tag: std::collections::BTreeMap<u64, SimTime> = Default::default();
    while let Some(Reverse((t, k))) = pending.pop() {
        let (done, started) = gpu.on_kernel_finish(t, k).unwrap();
        *per_tag.entry(done.tag).or_insert(SimTime::ZERO) += done.gpu_time;
        for s in started {
            pending.push(Reverse((s.finish_at, s.kernel)));
        }
    }
    per_tag.into_iter().collect()
}

fn heap_of(starts: Vec<Option<KernelStart>>) -> BinaryHeap<Reverse<(SimTime, fastg_gpu::KernelId)>> {
    starts
        .into_iter()
        .flatten()
        .map(|s| Reverse((s.finish_at, s.kernel)))
        .collect()
}

/// Four 24 %-partition clients with identical streams finish identical
/// work in identical time: partitions isolate throughput.
#[test]
fn equal_partitions_share_equally() {
    let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
    let clients: Vec<_> = (0..4).map(|_| gpu.register_client(24.0).unwrap()).collect();
    let mut starts = Vec::new();
    for (i, &c) in clients.iter().enumerate() {
        for _ in 0..10 {
            starts.push(gpu.launch(SimTime::ZERO, c, kernel(19, 100, i as u64)).unwrap());
        }
    }
    let per_tag = drain(&mut gpu, heap_of(starts));
    assert_eq!(per_tag.len(), 4);
    let first = per_tag[0].1;
    for &(_, t) in &per_tag {
        assert_eq!(t, first, "equal work must cost equal GPU time");
    }
    // Each kernel: 19 blocks on 19 SMs = one 100us wave; ten of them.
    assert_eq!(first, SimTime::from_micros(1_000));
    assert_eq!(gpu.free_sms(), 80);
}

/// A small-partition client cannot slow a big one: the 12 % client's
/// stream stretches, the 50 % client's does not.
#[test]
fn partition_asymmetry_is_respected() {
    let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
    let big = gpu.register_client(50.0).unwrap();
    let small = gpu.register_client(12.0).unwrap();
    let sb = gpu.launch(SimTime::ZERO, big, kernel(40, 100, 0)).unwrap().unwrap();
    let ss = gpu.launch(SimTime::ZERO, small, kernel(40, 100, 1)).unwrap().unwrap();
    // Big: 40 blocks / 40 SMs = 1 wave; small: 40 / 10 = 4 waves.
    assert_eq!(sb.finish_at, SimTime::from_micros(100));
    assert_eq!(ss.finish_at, SimTime::from_micros(400));
    assert_eq!(gpu.free_sms(), 80 - 40 - 10);
}

/// The DCGM sampling loop produces a sensible utilization sawtooth for a
/// bursty single client.
#[test]
fn metric_series_tracks_bursts() {
    let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
    let c = gpu.register_client(100.0).unwrap();
    let mut now = SimTime::ZERO;
    // Five cycles: 2ms busy (80-block kernel on 80 SMs at 25us/block
    // ... 80 blocks -> one wave of 25us? make work bigger) then 2ms idle.
    for _ in 0..5 {
        let s = gpu
            .launch(now, c, kernel(80, 2_000, 0))
            .unwrap()
            .expect("idle stream starts");
        gpu.on_kernel_finish(s.finish_at, s.kernel).unwrap();
        now = s.finish_at + SimTime::from_micros(2_000);
        gpu.metrics_mut().sample(now);
    }
    let util = gpu.metrics().utilization_series();
    assert_eq!(util.len(), 5);
    for &(_, v) in util.points() {
        assert!((v - 0.5).abs() < 0.01, "each window is half busy: {v}");
    }
    let occ = gpu.metrics().occupancy_series();
    for &(_, v) in occ.points() {
        assert!((v - 0.5).abs() < 0.01, "80/80 SMs for half the window: {v}");
    }
}

/// Over-subscription queueing: eight full-GPU clients take ~8× longer
/// end-to-end than one, and the device stays conservation-clean.
#[test]
fn oversubscription_serializes() {
    let run = |n: usize| {
        let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
        let mut starts = Vec::new();
        let mut last_finish = SimTime::ZERO;
        for i in 0..n {
            let c = gpu.register_client(100.0).unwrap();
            starts.push(gpu.launch(SimTime::ZERO, c, kernel(80, 500, i as u64)).unwrap());
        }
        let mut pending = heap_of(starts);
        while let Some(Reverse((t, k))) = pending.pop() {
            last_finish = last_finish.max(t);
            let (_, started) = gpu.on_kernel_finish(t, k).unwrap();
            for s in started {
                pending.push(Reverse((s.finish_at, s.kernel)));
            }
        }
        last_finish
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(one, SimTime::from_micros(500));
    assert_eq!(eight, SimTime::from_micros(4_000), "strict serialization");
}

/// IPC memory handles behave like a two-process model store: process A
/// allocates and exports, process B opens and reads the same extent,
/// and the allocation survives until explicitly freed.
#[test]
fn ipc_share_across_processes() {
    let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
    let mem = gpu.memory_mut();
    let weights = mem.alloc(2_634 * 1024 * 1024).unwrap();
    let handle = mem.ipc_get_handle(weights).unwrap();
    // "Process B".
    let opened = mem.ipc_open_handle(handle).unwrap();
    assert_eq!(opened, weights);
    // A second consumer opens the same handle.
    assert_eq!(mem.ipc_open_handle(handle).unwrap(), weights);
    let used_before = mem.used();
    mem.free(weights).unwrap();
    assert_eq!(mem.used(), used_before - weights.len);
    assert!(mem.ipc_open_handle(handle).is_err(), "handle dies with the memory");
}

/// Repartitioning a live client applies to subsequent launches only.
#[test]
fn repartition_applies_to_next_launch() {
    let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
    let c = gpu.register_client(50.0).unwrap();
    let s1 = gpu.launch(SimTime::ZERO, c, kernel(40, 100, 0)).unwrap().unwrap();
    assert_eq!(s1.granted_sms, 40);
    gpu.set_partition(c, 12.0).unwrap();
    // The running kernel keeps its grant.
    assert_eq!(gpu.free_sms(), 40);
    gpu.on_kernel_finish(s1.finish_at, s1.kernel).unwrap();
    let s2 = gpu
        .launch(s1.finish_at, c, kernel(40, 100, 0))
        .unwrap()
        .unwrap();
    assert_eq!(s2.granted_sms, 10, "new partition in force");
}

/// Interleaved launch/complete across clients preserves per-client FIFO
/// even when the wait queue churns.
#[test]
fn per_client_fifo_under_churn() {
    let mut gpu = GpuDevice::new(GpuSpec::custom("tiny", 4, 1 << 30), MpsMode::Shared);
    let a = gpu.register_client(100.0).unwrap();
    let b = gpu.register_client(100.0).unwrap();
    // Tag encodes (client, seq).
    let mut starts = Vec::new();
    for seq in 0..5u64 {
        starts.push(gpu.launch(SimTime::ZERO, a, kernel(4, 10, seq)).unwrap());
        starts.push(gpu.launch(SimTime::ZERO, b, kernel(4, 10, 100 + seq)).unwrap());
    }
    let mut pending = heap_of(starts);
    let mut a_order = Vec::new();
    let mut b_order = Vec::new();
    while let Some(Reverse((t, k))) = pending.pop() {
        let (done, started) = gpu.on_kernel_finish(t, k).unwrap();
        if done.tag < 100 {
            a_order.push(done.tag);
        } else {
            b_order.push(done.tag - 100);
        }
        for s in started {
            pending.push(Reverse((s.finish_at, s.kernel)));
        }
    }
    assert_eq!(a_order, vec![0, 1, 2, 3, 4], "client A stream order");
    assert_eq!(b_order, vec![0, 1, 2, 3, 4], "client B stream order");
}
