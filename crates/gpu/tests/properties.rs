//! Property tests for the GPU device model.

use fastg_des::SimTime;
use fastg_gpu::{GpuDevice, GpuMemory, GpuSpec, KernelDesc, MpsMode};
use proptest::prelude::*;

proptest! {
    /// Allocator invariants under arbitrary alloc/free interleavings:
    /// used+free == capacity, no failed frees of live pointers, full
    /// coalescing at the end.
    #[test]
    fn memory_alloc_free_invariants(ops in prop::collection::vec((0u8..2, 1u64..4_096), 1..200)) {
        let mut m = GpuMemory::new(64 * 1024);
        let mut live = Vec::new();
        for &(op, size) in &ops {
            if op == 0 || live.is_empty() {
                if let Ok(ptr) = m.alloc(size) {
                    live.push(ptr);
                }
            } else {
                let ptr = live.swap_remove(size as usize % live.len());
                prop_assert!(m.free(ptr).is_ok());
            }
            let used: u64 = live.iter().map(|p| p.len).sum();
            prop_assert_eq!(m.used(), used);
            prop_assert_eq!(m.free_bytes(), m.capacity() - used);
            prop_assert!(m.largest_free_extent() <= m.free_bytes());
        }
        for ptr in live {
            m.free(ptr).unwrap();
        }
        prop_assert_eq!(m.largest_free_extent(), m.capacity());
    }

    /// Live allocations never overlap.
    #[test]
    fn memory_allocations_disjoint(sizes in prop::collection::vec(1u64..2_000, 1..50)) {
        let mut m = GpuMemory::new(1 << 20);
        let mut live = Vec::new();
        for &s in &sizes {
            if let Ok(p) = m.alloc(s) {
                live.push(p);
            }
        }
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                let disjoint = a.offset + a.len <= b.offset || b.offset + b.len <= a.offset;
                prop_assert!(disjoint, "{a:?} overlaps {b:?}");
            }
        }
    }

    /// Device conservation: free SMs plus granted SMs always equals the
    /// pool; kernels never receive more SMs than their partition cap or
    /// their block count; completing everything restores the full pool.
    #[test]
    fn device_sm_conservation(
        launches in prop::collection::vec((0usize..4, 1u32..100, 1u64..50), 1..60)
    ) {
        let spec = GpuSpec::v100();
        let mut gpu = GpuDevice::new(spec, MpsMode::Shared);
        let caps = [12.0, 24.0, 50.0, 100.0];
        let clients: Vec<_> = caps.iter().map(|&c| gpu.register_client(c).unwrap()).collect();
        let mut pending = std::collections::BinaryHeap::new();
        let mut now = SimTime::ZERO;
        for &(ci, blocks, work) in &launches {
            let client = clients[ci];
            let cap = gpu.mps().sm_cap(client).unwrap();
            let desc = KernelDesc {
                blocks,
                work_per_block: SimTime::from_micros(work),
                tag: ci as u64,
            };
            if let Some(start) = gpu.launch(now, client, desc).unwrap() {
                prop_assert!(start.granted_sms <= cap);
                prop_assert!(start.granted_sms <= blocks.max(1));
                pending.push(std::cmp::Reverse((start.finish_at, start.kernel)));
            }
            let granted_total: u32 = 80 - gpu.free_sms();
            prop_assert!(granted_total <= 80);
            // Occasionally advance time by completing the next kernel.
            if pending.len() > 3 {
                let std::cmp::Reverse((t, k)) = pending.pop().unwrap();
                now = now.max(t);
                let (_, started) = gpu.on_kernel_finish(now, k).unwrap();
                for s in started {
                    pending.push(std::cmp::Reverse((s.finish_at, s.kernel)));
                }
            }
        }
        // Drain.
        while let Some(std::cmp::Reverse((t, k))) = pending.pop() {
            now = now.max(t);
            let (_, started) = gpu.on_kernel_finish(now, k).unwrap();
            for s in started {
                pending.push(std::cmp::Reverse((s.finish_at, s.kernel)));
            }
        }
        prop_assert_eq!(gpu.free_sms(), 80);
        prop_assert_eq!(gpu.resident_kernels(), 0);
    }

    /// Metrics consistency: SM occupancy never exceeds utilization, and
    /// both stay in [0, 1], for arbitrary single-client kernel streams.
    #[test]
    fn occupancy_bounded_by_utilization(
        kernels in prop::collection::vec((1u32..200, 1u64..100), 1..50),
        partition in 1u32..=100
    ) {
        let mut gpu = GpuDevice::new(GpuSpec::v100(), MpsMode::Shared);
        let c = gpu.register_client(partition as f64).unwrap();
        let mut now = SimTime::ZERO;
        for &(blocks, work) in &kernels {
            let desc = KernelDesc {
                blocks,
                work_per_block: SimTime::from_micros(work),
                tag: 0,
            };
            let start = gpu.launch(now, c, desc).unwrap().expect("idle stream starts");
            // Idle gap after each kernel.
            now = start.finish_at + SimTime::from_micros(work);
            gpu.on_kernel_finish(start.finish_at, start.kernel).unwrap();
        }
        let stats = gpu.metrics().window_stats(now);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.utilization));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.sm_occupancy));
        prop_assert!(stats.sm_occupancy <= stats.utilization + 1e-9);
    }

    /// Wave math: duration × granted SMs ≥ total work, and duration is
    /// minimal (removing one wave would not cover the blocks).
    #[test]
    fn wave_duration_tight(blocks in 1u32..500, cap_pct in 1u32..=100, work in 1u64..1_000) {
        let spec = GpuSpec::v100();
        let mut gpu = GpuDevice::new(spec.clone(), MpsMode::Shared);
        let c = gpu.register_client(cap_pct as f64).unwrap();
        let desc = KernelDesc {
            blocks,
            work_per_block: SimTime::from_micros(work),
            tag: 0,
        };
        let start = gpu.launch(SimTime::ZERO, c, desc).unwrap().unwrap();
        let waves = (start.finish_at.as_micros() / work) as u32;
        prop_assert!(waves * start.granted_sms >= blocks);
        if waves > 1 {
            prop_assert!((waves - 1) * start.granted_sms < blocks);
        }
    }
}
