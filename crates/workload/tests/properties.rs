//! Property tests for arrival processes and metrics.

use fastg_des::SimTime;
use fastg_workload::{ArrivalProcess, LatencyHistogram, RateMeter, SloTracker};
use proptest::prelude::*;

proptest! {
    /// Arrival streams are strictly increasing for every process type.
    #[test]
    fn arrivals_strictly_increase(rate in 1.0f64..2_000.0, seed in 0u64..1_000) {
        let mut p = ArrivalProcess::poisson(rate, seed);
        let ts = p.collect_until(SimTime::from_secs(2));
        for w in ts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let mut c = ArrivalProcess::constant(rate);
        let ts = c.collect_until(SimTime::from_secs(2));
        for w in ts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Poisson arrival counts land near rate × duration (law of large
    /// numbers at 3-sigma).
    #[test]
    fn poisson_count_near_mean(rate in 20.0f64..500.0, seed in 0u64..50) {
        let secs = 20.0;
        let mut p = ArrivalProcess::poisson(rate, seed);
        let n = p.collect_until(SimTime::from_secs_f64(secs)).len() as f64;
        let mean = rate * secs;
        let sigma = mean.sqrt();
        prop_assert!((n - mean).abs() < 4.0 * sigma, "n={n} mean={mean}");
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone_and_bounded(samples in prop::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimTime::from_micros(s));
        }
        let mut prev = SimTime::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prop_assert!(v <= h.max());
            prev = v;
        }
        prop_assert!(h.quantile(1.0) == h.max());
    }

    /// Histogram quantile error stays within the 5 % bucket growth (plus
    /// one bucket) against the exact empirical quantile.
    #[test]
    fn quantile_relative_error(samples in prop::collection::vec(100u64..1_000_000, 20..300)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimTime::from_micros(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let idx = (((sorted.len() as f64) * q).ceil() as usize).max(1) - 1;
            let exact = sorted[idx] as f64;
            let approx = h.quantile(q).as_micros() as f64;
            let rel = (approx - exact).abs() / exact;
            prop_assert!(rel < 0.12, "q={q}: approx {approx} vs exact {exact}");
        }
    }

    /// fraction_within is consistent with the recorded counts.
    #[test]
    fn fraction_within_counts(samples in prop::collection::vec(1u64..100_000, 1..200), thr in 1u64..100_000) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimTime::from_micros(s));
        }
        let f = h.fraction_within(SimTime::from_micros(thr));
        // Bucketing may misclassify only samples within one ~5 % bucket
        // of the threshold: bound by the exact fractions at thr ÷ 1.11
        // and thr × 1.11 (one bucket of slack either side).
        let frac_at = |t: f64| {
            samples.iter().filter(|&&s| (s as f64) <= t).count() as f64 / samples.len() as f64
        };
        let lo = frac_at(thr as f64 / 1.11);
        let hi = frac_at(thr as f64 * 1.11);
        prop_assert!(
            f >= lo - 1e-9 && f <= hi + 1e-9,
            "f={f} outside [{lo}, {hi}] for thr={thr}"
        );
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// SLO tracker: violations + within == total, ratio in [0, 1].
    #[test]
    fn slo_accounting(samples in prop::collection::vec(1u64..200_000, 1..200), slo_us in 1_000u64..150_000) {
        let mut t = SloTracker::new(SimTime::from_micros(slo_us));
        for &s in &samples {
            t.record(SimTime::from_micros(s));
        }
        let exact = samples.iter().filter(|&&s| s > slo_us).count() as u64;
        prop_assert_eq!(t.violations(), exact);
        prop_assert_eq!(t.total(), samples.len() as u64);
        prop_assert!((0.0..=1.0).contains(&t.violation_ratio()));
    }

    /// RateMeter window counts partition the total.
    #[test]
    fn rate_meter_partitions(times in prop::collection::vec(0u64..1_000_000, 1..200), split in 1u64..1_000_000) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut m = RateMeter::new();
        for &t in &sorted {
            m.record(SimTime::from_micros(t));
        }
        let a = m.count_between(SimTime::ZERO, SimTime::from_micros(split));
        let b = m.count_between(SimTime::from_micros(split), SimTime::from_micros(1_000_001));
        prop_assert_eq!(a + b, m.count());
    }
}
