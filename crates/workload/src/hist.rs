//! Log-bucket latency histogram (HdrHistogram-style, simplified).

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;

/// Per-bucket growth factor: ~5 % relative quantile error.
const GROWTH: f64 = 1.05;
/// Smallest resolvable latency (1 µs).
const MIN_US: f64 = 1.0;
/// Number of buckets: covers up to ~“hours” at 5 % growth.
const BUCKETS: usize = 512;

/// A latency histogram with logarithmic buckets.
///
/// Records `SimTime` latencies and answers percentile queries with ≈5 %
/// relative error — the precision at which the paper reports tail
/// latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u128,
    min: Option<SimTime>,
    max: SimTime,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            min: None,
            max: SimTime::ZERO,
        }
    }

    fn bucket_of(latency: SimTime) -> usize {
        let us = latency.as_micros() as f64;
        if us <= MIN_US {
            return 0;
        }
        let b = (us / MIN_US).ln() / GROWTH.ln();
        // f64→usize `as` saturates, and `b` is non-negative (us > MIN_US
        // was checked above, so the log ratio is positive).
        // fastg-lint: allow(no-lossy-cast)
        (b.floor() as usize).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i` in microseconds.
    fn bucket_upper_us(i: usize) -> f64 {
        MIN_US * GROWTH.powi(i32::try_from(i + 1).unwrap_or(i32::MAX))
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.record_n(latency, 1);
    }

    /// Records `n` identical latency samples in one step — bit-identical
    /// to `n` calls of [`Self::record`] (all fields are integer adds), so
    /// cluster fast-forward can credit coalesced steady cycles in O(1).
    pub fn record_n(&mut self, latency: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(latency)] += n;
        self.count += n;
        self.sum_us += u128::from(latency.as_micros()) * u128::from(n);
        self.max = self.max.max(latency);
        self.min = Some(match self.min {
            Some(m) => m.min(latency),
            None => latency,
        });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean latency, or zero when empty.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            let mean = self.sum_us / u128::from(self.count);
            SimTime::from_micros(u64::try_from(mean).unwrap_or(u64::MAX))
        }
    }

    /// Minimum recorded latency, or zero when empty.
    pub fn min(&self) -> SimTime {
        self.min.unwrap_or(SimTime::ZERO)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), e.g. `quantile(0.99)` for p99.
    /// Returns the bucket's upper bound (clamped to the observed max), or
    /// zero when empty.
    pub fn quantile(&self, q: f64) -> SimTime {
        debug_assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if self.count == 0 {
            return SimTime::ZERO;
        }
        // f64→u64 `as` saturates, and the target is at least 1.0.
        // fastg-lint: allow(no-lossy-cast)
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                if i == BUCKETS - 1 {
                    // Overflow bucket: its upper bound is meaningless.
                    return self.max;
                }
                let upper = SimTime::from_micros_f64(Self::bucket_upper_us(i));
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Fraction of samples at or below `threshold` (e.g. for SLO
    /// attainment), or 1.0 when empty.
    pub fn fraction_within(&self, threshold: SimTime) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        let cutoff = Self::bucket_of(threshold);
        let within: u64 = self.counts[..=cutoff].iter().sum();
        within as f64 / self.count as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max = self.max.max(other.max);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Snap for LatencyHistogram {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            counts,
            count,
            sum_us,
            min,
            max,
        } = self;
        counts.snap(w);
        w.u64(*count);
        w.u128(*sum_us);
        min.snap(w);
        max.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let counts: Vec<u64> = Vec::unsnap(r)?;
        if counts.len() != BUCKETS {
            return Err(SnapError::new("histogram bucket count"));
        }
        let count = r.u64()?;
        if counts.iter().sum::<u64>() != count {
            return Err(SnapError::new("histogram total"));
        }
        Ok(LatencyHistogram {
            counts,
            count,
            sum_us: r.u128()?,
            min: Option::unsnap(r)?,
            max: SimTime::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.quantile(0.99), SimTime::ZERO);
        assert_eq!(h.fraction_within(SimTime::from_millis(1)), 1.0);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 100)); // 0.1ms .. 100ms
        }
        let p50 = h.quantile(0.5).as_micros() as f64;
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((p50 / 50_000.0 - 1.0).abs() < 0.08, "p50 = {p50}");
        assert!((p99 / 99_000.0 - 1.0).abs() < 0.08, "p99 = {p99}");
        assert_eq!(h.max(), SimTime::from_micros(100_000));
        assert_eq!(h.min(), SimTime::from_micros(100));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_micros(100));
        h.record(SimTime::from_micros(300));
        assert_eq!(h.mean(), SimTime::from_micros(200));
    }

    #[test]
    fn fraction_within_threshold() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(SimTime::from_millis(10));
        }
        for _ in 0..10 {
            h.record(SimTime::from_millis(1000));
        }
        let f = h.fraction_within(SimTime::from_millis(50));
        assert!((f - 0.9).abs() < 0.01, "f = {f}");
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimTime::from_micros(10));
        b.record(SimTime::from_micros(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimTime::from_micros(1_000_000));
        assert_eq!(a.min(), SimTime::from_micros(10));
    }

    #[test]
    fn max_clamps_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_micros(777));
        assert_eq!(h.quantile(1.0), SimTime::from_micros(777));
        assert_eq!(h.quantile(0.5), SimTime::from_micros(777));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn giant_latency_lands_in_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_secs(100_000));
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), SimTime::from_secs(100_000));
    }
}
