//! Throughput measurement and arrival-rate prediction.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;
use std::collections::VecDeque;

/// One run-length-encoded stretch of evenly spaced timestamps:
/// `start, start+gap, …, start+(count−1)×gap` (all in microseconds).
#[derive(Debug, Clone, Copy)]
struct Run {
    start_us: u64,
    gap_us: u64,
    count: u64,
}

impl Run {
    fn last_us(&self) -> u64 {
        self.start_us + self.gap_us * (self.count - 1)
    }

    /// How many of this run's timestamps are strictly before `x` µs.
    fn count_before(&self, x_us: u64) -> u64 {
        if x_us <= self.start_us {
            0
        } else if self.gap_us == 0 {
            self.count
        } else {
            self.count.min((x_us - self.start_us).div_ceil(self.gap_us))
        }
    }
}

/// Measures achieved throughput by recording event timestamps and counting
/// them over windows.
///
/// Timestamps are stored run-length encoded: evenly spaced stretches (the
/// shape every steady-state load produces, and exactly what cluster
/// fast-forward credits in bulk via [`Self::record_run`]) collapse to one
/// `(start, gap, count)` triple, so memory stays O(rate changes) instead of
/// O(events) — the difference between 10⁸ arrivals fitting in RAM or not.
/// Counting queries stay exact.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    runs: Vec<Run>,
    total: u64,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event (e.g. a completed request) at `now`. Events must
    /// be recorded in non-decreasing time order.
    pub fn record(&mut self, now: SimTime) {
        let now_us = now.as_micros();
        debug_assert!(self.runs.last().map_or(true, |r| r.last_us() <= now_us));
        self.total += 1;
        if let Some(r) = self.runs.last_mut() {
            if r.count == 1 && now_us >= r.start_us {
                r.gap_us = now_us - r.start_us;
                r.count = 2;
                return;
            }
            if now_us.checked_sub(r.last_us()) == Some(r.gap_us) {
                r.count += 1;
                return;
            }
        }
        self.runs.push(Run {
            start_us: now_us,
            gap_us: 0,
            count: 1,
        });
    }

    /// Records `count` events at `start, start+gap, …` in one step —
    /// equivalent to `count` ordered [`Self::record`] calls. Cluster
    /// fast-forward uses this to credit coalesced steady cycles in O(1).
    pub fn record_run(&mut self, start: SimTime, gap: SimTime, count: u64) {
        if count == 0 {
            return;
        }
        let (start_us, gap_us) = (start.as_micros(), gap.as_micros());
        debug_assert!(self.runs.last().map_or(true, |r| r.last_us() <= start_us));
        self.total += count;
        if let Some(r) = self.runs.last_mut() {
            if r.gap_us == gap_us && start_us.checked_sub(r.last_us()) == Some(gap_us) {
                r.count += count;
                return;
            }
            if r.count == 1 && start_us.checked_sub(r.start_us) == Some(gap_us) {
                r.gap_us = gap_us;
                r.count += count;
                return;
            }
        }
        self.runs.push(Run {
            start_us,
            gap_us,
            count,
        });
    }

    /// Total events recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Events strictly before `to`.
    fn count_before(&self, to: SimTime) -> u64 {
        let x_us = to.as_micros();
        let mut n = 0;
        for r in &self.runs {
            if x_us <= r.start_us {
                break;
            }
            n += r.count_before(x_us);
        }
        n
    }

    /// Events in `[from, to)`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> u64 {
        if to <= from {
            return 0;
        }
        self.count_before(to) - self.count_before(from)
    }

    /// Mean rate (events/second) over `[from, to)`; zero for an empty
    /// window.
    pub fn rate_between(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_sub(from).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.count_between(from, to) as f64 / span
        }
    }
}

impl Snap for Run {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            start_us,
            gap_us,
            count,
        } = self;
        w.u64(*start_us);
        w.u64(*gap_us);
        w.u64(*count);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Run {
            start_us: r.u64()?,
            gap_us: r.u64()?,
            count: r.u64()?,
        })
    }
}

impl Snap for RateMeter {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { runs, total } = self;
        runs.snap(w);
        w.u64(*total);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let runs: Vec<Run> = Vec::unsnap(r)?;
        let total = r.u64()?;
        let sum: u64 = runs.iter().map(|run| run.count).sum();
        if sum != total {
            return Err(SnapError::new("rate meter total"));
        }
        Ok(RateMeter { runs, total })
    }
}

impl Snap for RateEstimator {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            window,
            alpha,
            recent,
            smoothed,
            last_update,
        } = self;
        window.snap(w);
        alpha.snap(w);
        recent.snap(w);
        smoothed.snap(w);
        last_update.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RateEstimator {
            window: SimTime::unsnap(r)?,
            alpha: f64::unsnap(r)?,
            recent: VecDeque::unsnap(r)?,
            smoothed: Option::unsnap(r)?,
            last_update: SimTime::unsnap(r)?,
        })
    }
}

/// Predicts the near-future request rate from recent arrivals — the
/// gateway-side signal `R_j` the Heuristic Scaling Algorithm consumes.
///
/// Maintains a sliding window of arrival timestamps and exponentially
/// smooths per-interval counts: robust to Poisson noise while still
/// tracking ramps within a few control intervals.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window: SimTime,
    alpha: f64,
    recent: VecDeque<SimTime>,
    smoothed: Option<f64>,
    last_update: SimTime,
}

impl RateEstimator {
    /// Creates an estimator with a sliding `window` and EWMA factor
    /// `alpha` (0 < alpha ≤ 1; higher reacts faster).
    pub fn new(window: SimTime, alpha: f64) -> Self {
        debug_assert!(window > SimTime::ZERO, "zero estimator window");
        debug_assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0, "bad alpha {alpha}");
        let window = window.max(SimTime::from_micros(1));
        let alpha = if alpha.is_finite() && alpha > 0.0 { alpha.min(1.0) } else { 1.0 };
        RateEstimator {
            window,
            alpha,
            recent: VecDeque::new(),
            smoothed: None,
            last_update: SimTime::ZERO,
        }
    }

    /// Records one request arrival.
    pub fn on_arrival(&mut self, now: SimTime) {
        self.recent.push_back(now);
        self.evict(now);
    }

    /// Updates the smoothed estimate; call once per control interval.
    /// Returns the current prediction (requests/second).
    pub fn tick(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        let instantaneous = self.recent.len() as f64 / self.window.as_secs_f64();
        let s = match self.smoothed {
            Some(prev) => prev + self.alpha * (instantaneous - prev),
            None => instantaneous,
        };
        self.smoothed = Some(s);
        self.last_update = now;
        s
    }

    /// The most recent prediction without updating (zero before any tick).
    pub fn predicted(&self) -> f64 {
        self.smoothed.unwrap_or(0.0)
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        while self.recent.front().is_some_and(|&t| t < cutoff) {
            self.recent.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_windows() {
        let mut m = RateMeter::new();
        for i in 0..100 {
            m.record(SimTime::from_millis(i * 10)); // 100 events over 1s
        }
        assert_eq!(m.count(), 100);
        assert_eq!(
            m.count_between(SimTime::ZERO, SimTime::from_millis(500)),
            50
        );
        let r = m.rate_between(SimTime::ZERO, SimTime::from_secs(1));
        assert!((r - 100.0).abs() < 1e-9);
        assert_eq!(m.rate_between(SimTime::from_secs(5), SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn rle_meter_matches_pointwise_recording() {
        // Irregular spacings, repeats, and regime changes all count
        // exactly as a flat Vec<SimTime> would.
        let ts: Vec<u64> = vec![0, 0, 3, 6, 9, 9, 9, 14, 15, 16, 17, 40, 41];
        let mut m = RateMeter::new();
        for &t in &ts {
            m.record(SimTime::from_micros(t));
        }
        assert_eq!(m.count(), ts.len() as u64);
        for from in 0..45u64 {
            for to in from..46u64 {
                let expect = ts.iter().filter(|&&t| t >= from && t < to).count() as u64;
                let got = m.count_between(SimTime::from_micros(from), SimTime::from_micros(to));
                assert_eq!(got, expect, "window [{from},{to})");
            }
        }
    }

    #[test]
    fn record_run_equals_individual_records() {
        let mut a = RateMeter::new();
        let mut b = RateMeter::new();
        a.record(SimTime::from_micros(5));
        b.record(SimTime::from_micros(5));
        a.record_run(SimTime::from_micros(15), SimTime::from_micros(10), 1000);
        for i in 0..1000u64 {
            b.record(SimTime::from_micros(15 + i * 10));
        }
        assert_eq!(a.count(), b.count());
        for (from, to) in [(0u64, 20_000u64), (14, 16), (15, 25), (9_990, 10_050)] {
            assert_eq!(
                a.count_between(SimTime::from_micros(from), SimTime::from_micros(to)),
                b.count_between(SimTime::from_micros(from), SimTime::from_micros(to)),
                "window [{from},{to})"
            );
        }
        // A matching-spacing run extends the tail instead of growing memory.
        assert_eq!(a.runs.len(), b.runs.len());
        assert!(b.runs.len() <= 2, "steady load must stay RLE-compact");
    }

    #[test]
    fn estimator_converges_to_steady_rate() {
        let mut e = RateEstimator::new(SimTime::from_secs(2), 0.5);
        // 50 rps for 10 seconds, tick each second.
        let mut predicted = 0.0;
        for s in 0..10u64 {
            for i in 0..50u64 {
                e.on_arrival(SimTime::from_secs(s) + SimTime::from_millis(i * 20));
            }
            predicted = e.tick(SimTime::from_secs(s + 1));
        }
        assert!((predicted - 50.0).abs() < 5.0, "predicted {predicted}");
    }

    #[test]
    fn estimator_tracks_rate_drop() {
        let mut e = RateEstimator::new(SimTime::from_secs(1), 0.7);
        for i in 0..100u64 {
            e.on_arrival(SimTime::from_millis(i * 10));
        }
        e.tick(SimTime::from_secs(1));
        assert!(e.predicted() > 50.0);
        // Silence for several intervals.
        for s in 2..8u64 {
            e.tick(SimTime::from_secs(s));
        }
        assert!(e.predicted() < 2.0, "predicted {}", e.predicted());
    }

    #[test]
    fn estimator_starts_at_observed_rate() {
        let mut e = RateEstimator::new(SimTime::from_secs(1), 0.1);
        for i in 0..30u64 {
            e.on_arrival(SimTime::from_millis(500 + i));
        }
        // First tick snaps straight to the instantaneous value.
        let p = e.tick(SimTime::from_secs(1));
        assert!((p - 30.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "zero estimator window")]
    fn zero_window_rejected() {
        RateEstimator::new(SimTime::ZERO, 0.5);
    }
}
