//! Throughput measurement and arrival-rate prediction.

use fastg_des::SimTime;
use std::collections::VecDeque;

/// Measures achieved throughput by recording event timestamps and counting
/// them over windows.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    times: Vec<SimTime>,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event (e.g. a completed request) at `now`. Events must
    /// be recorded in non-decreasing time order.
    pub fn record(&mut self, now: SimTime) {
        debug_assert!(self.times.last().map_or(true, |&t| t <= now));
        self.times.push(now);
    }

    /// Total events recorded.
    pub fn count(&self) -> u64 {
        u64::try_from(self.times.len()).unwrap_or(u64::MAX)
    }

    /// Events in `[from, to)`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> u64 {
        let lo = self.times.partition_point(|&t| t < from);
        let hi = self.times.partition_point(|&t| t < to);
        u64::try_from(hi - lo).unwrap_or(u64::MAX)
    }

    /// Mean rate (events/second) over `[from, to)`; zero for an empty
    /// window.
    pub fn rate_between(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_sub(from).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.count_between(from, to) as f64 / span
        }
    }
}

/// Predicts the near-future request rate from recent arrivals — the
/// gateway-side signal `R_j` the Heuristic Scaling Algorithm consumes.
///
/// Maintains a sliding window of arrival timestamps and exponentially
/// smooths per-interval counts: robust to Poisson noise while still
/// tracking ramps within a few control intervals.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window: SimTime,
    alpha: f64,
    recent: VecDeque<SimTime>,
    smoothed: Option<f64>,
    last_update: SimTime,
}

impl RateEstimator {
    /// Creates an estimator with a sliding `window` and EWMA factor
    /// `alpha` (0 < alpha ≤ 1; higher reacts faster).
    pub fn new(window: SimTime, alpha: f64) -> Self {
        debug_assert!(window > SimTime::ZERO, "zero estimator window");
        debug_assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0, "bad alpha {alpha}");
        let window = window.max(SimTime::from_micros(1));
        let alpha = if alpha.is_finite() && alpha > 0.0 { alpha.min(1.0) } else { 1.0 };
        RateEstimator {
            window,
            alpha,
            recent: VecDeque::new(),
            smoothed: None,
            last_update: SimTime::ZERO,
        }
    }

    /// Records one request arrival.
    pub fn on_arrival(&mut self, now: SimTime) {
        self.recent.push_back(now);
        self.evict(now);
    }

    /// Updates the smoothed estimate; call once per control interval.
    /// Returns the current prediction (requests/second).
    pub fn tick(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        let instantaneous = self.recent.len() as f64 / self.window.as_secs_f64();
        let s = match self.smoothed {
            Some(prev) => prev + self.alpha * (instantaneous - prev),
            None => instantaneous,
        };
        self.smoothed = Some(s);
        self.last_update = now;
        s
    }

    /// The most recent prediction without updating (zero before any tick).
    pub fn predicted(&self) -> f64 {
        self.smoothed.unwrap_or(0.0)
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        while self.recent.front().is_some_and(|&t| t < cutoff) {
            self.recent.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_windows() {
        let mut m = RateMeter::new();
        for i in 0..100 {
            m.record(SimTime::from_millis(i * 10)); // 100 events over 1s
        }
        assert_eq!(m.count(), 100);
        assert_eq!(
            m.count_between(SimTime::ZERO, SimTime::from_millis(500)),
            50
        );
        let r = m.rate_between(SimTime::ZERO, SimTime::from_secs(1));
        assert!((r - 100.0).abs() < 1e-9);
        assert_eq!(m.rate_between(SimTime::from_secs(5), SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn estimator_converges_to_steady_rate() {
        let mut e = RateEstimator::new(SimTime::from_secs(2), 0.5);
        // 50 rps for 10 seconds, tick each second.
        let mut predicted = 0.0;
        for s in 0..10u64 {
            for i in 0..50u64 {
                e.on_arrival(SimTime::from_secs(s) + SimTime::from_millis(i * 20));
            }
            predicted = e.tick(SimTime::from_secs(s + 1));
        }
        assert!((predicted - 50.0).abs() < 5.0, "predicted {predicted}");
    }

    #[test]
    fn estimator_tracks_rate_drop() {
        let mut e = RateEstimator::new(SimTime::from_secs(1), 0.7);
        for i in 0..100u64 {
            e.on_arrival(SimTime::from_millis(i * 10));
        }
        e.tick(SimTime::from_secs(1));
        assert!(e.predicted() > 50.0);
        // Silence for several intervals.
        for s in 2..8u64 {
            e.tick(SimTime::from_secs(s));
        }
        assert!(e.predicted() < 2.0, "predicted {}", e.predicted());
    }

    #[test]
    fn estimator_starts_at_observed_rate() {
        let mut e = RateEstimator::new(SimTime::from_secs(1), 0.1);
        for i in 0..30u64 {
            e.on_arrival(SimTime::from_millis(500 + i));
        }
        // First tick snaps straight to the instantaneous value.
        let p = e.tick(SimTime::from_secs(1));
        assert!((p - 30.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "zero estimator window")]
    fn zero_window_rejected() {
        RateEstimator::new(SimTime::ZERO, 0.5);
    }
}
