//! Fleet-scale workload synthesis.
//!
//! Production FaaS fleets are wide and skewed: hundreds of functions whose
//! popularity follows a Zipf law, with three dominant temporal layers on
//! top — slow diurnal swings, sharp flash crowds on the head functions,
//! and regional-failover steps where a zone's traffic lands on the
//! survivors. These builders synthesize that shape deterministically per
//! seed, per function rank, so a 1k-node scenario is described by a few
//! scalars instead of a recorded trace.

use crate::arrival::ArrivalProcess;
use crate::patterns::{diurnal, flash_crowd};
use fastg_des::SimTime;

/// Zipf-distributed per-function request rates: rank `i` (0-based) gets a
/// share proportional to `1 / (i+1)^exponent` of `total_rps`, so the head
/// function carries the classic heavy tail while the sum stays `total_rps`.
pub fn zipf_rates(funcs: usize, total_rps: f64, exponent: f64) -> Vec<f64> {
    debug_assert!(funcs > 0, "empty fleet");
    debug_assert!(total_rps >= 0.0 && exponent >= 0.0);
    let funcs = funcs.max(1);
    let total_rps = total_rps.max(0.0);
    let exponent = exponent.max(0.0);
    let weights: Vec<f64> = (0..funcs)
        .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
        .collect();
    let norm: f64 = weights.iter().sum();
    weights.iter().map(|w| total_rps * w / norm).collect()
}

/// A regional-failover step: `base_rps` until `fail_at`, then the traffic
/// of a failed zone lands here — a vertical step to `base_rps × boost`
/// held until `recover_at`, then a step back down until `duration`.
pub fn regional_failover(
    base_rps: f64,
    boost: f64,
    fail_at: SimTime,
    recover_at: SimTime,
    duration: SimTime,
    seed: u64,
) -> ArrivalProcess {
    debug_assert!(boost >= 1.0, "failover must not shrink load");
    debug_assert!(fail_at < recover_at && recover_at <= duration);
    let base_rps = base_rps.max(0.0);
    let boost = boost.max(1.0);
    let fail_at = fail_at.min(duration);
    let recover_at = recover_at.clamp(fail_at, duration);
    let peak = base_rps * boost;
    // Duplicate-time knots encode the vertical steps.
    let knots = vec![
        (SimTime::ZERO, base_rps),
        (fail_at, base_rps),
        (fail_at, peak),
        (recover_at, peak),
        (recover_at, base_rps),
        (duration, base_rps),
    ];
    ArrivalProcess::profile(knots, seed)
}

/// The layered fleet arrival process for one function of `funcs`, ranked
/// by popularity (`rank` 0 = most popular). Every function's base rate is
/// its [`zipf_rates`] share of `total_rps`; on top of that, the head
/// function (rank 0) takes the flash crowd, the next ~10 % of ranks take
/// the regional-failover step mid-run, and the long tail breathes
/// diurnally. Deterministic per `(rank, seed)`.
pub fn fleet_function(
    rank: usize,
    funcs: usize,
    total_rps: f64,
    exponent: f64,
    duration: SimTime,
    seed: u64,
) -> ArrivalProcess {
    debug_assert!(rank < funcs, "rank out of range");
    let rates = zipf_rates(funcs, total_rps, exponent);
    let base = rates[rank.min(rates.len() - 1)];
    let func_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::try_from(rank).unwrap_or(u64::MAX));
    let failover_band = (funcs / 10).max(1);
    if rank == 0 {
        // Head function: flash crowd at one third of the run, 4× peak,
        // with aftershocks in the tail.
        flash_crowd(
            base,
            base * 4.0,
            duration.scale(1.0 / 3.0),
            duration.scale(0.02).max(SimTime::from_micros(1)),
            duration.scale(0.05),
            duration,
            2,
            func_seed,
        )
    } else if rank <= failover_band {
        // Near-head band: a failed region's traffic lands here for the
        // middle fifth of the run.
        regional_failover(
            base,
            1.8,
            duration.scale(0.4),
            duration.scale(0.6),
            duration,
            func_seed,
        )
    } else {
        // Long tail: diurnal breathing around the Zipf base.
        diurnal(base * 0.6, base * 1.4, duration.scale(0.5), 2, func_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rates_sum_and_skew() {
        let r = zipf_rates(100, 1000.0, 1.1);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1000.0).abs() < 1e-6, "sum {sum}");
        assert!(r[0] > r[1] && r[1] > r[50], "must be rank-decreasing");
        assert!(r[0] / r[99] > 50.0, "head/tail skew too flat: {}", r[0] / r[99]);
    }

    #[test]
    fn failover_steps_up_and_recovers() {
        let p = regional_failover(
            10.0,
            2.0,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            SimTime::from_secs(30),
            1,
        );
        assert!((p.rate_at(SimTime::from_secs(5)) - 10.0).abs() < 1e-9);
        assert!((p.rate_at(SimTime::from_secs(15)) - 20.0).abs() < 1e-9);
        assert!((p.rate_at(SimTime::from_secs(25)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_layers_cover_head_band_and_tail() {
        let d = SimTime::from_secs(300);
        // Head rank flash-crowds above its base at one third in.
        let head = fleet_function(0, 100, 1000.0, 1.1, d, 7);
        let head_base = head.rate_at(SimTime::ZERO);
        let head_peak = head.rate_at(d.scale(1.0 / 3.0) + d.scale(0.03));
        assert!(head_peak > head_base * 2.0, "{head_base} → {head_peak}");
        // Band rank steps up mid-run.
        let band = fleet_function(3, 100, 1000.0, 1.1, d, 7);
        let mid = band.rate_at(d.scale(0.5));
        let early = band.rate_at(d.scale(0.1));
        assert!((mid / early - 1.8).abs() < 1e-6, "{early} → {mid}");
        // Tail rank swings diurnally around its (small) base.
        let tail = fleet_function(90, 100, 1000.0, 1.1, d, 7);
        let trough = tail.rate_at(SimTime::ZERO);
        let crest = tail.rate_at(d.scale(0.25));
        assert!(crest > trough * 1.5, "{trough} → {crest}");
    }

    #[test]
    fn fleet_function_is_deterministic() {
        let d = SimTime::from_secs(60);
        let a = fleet_function(0, 10, 100.0, 1.0, d, 3).collect_until(d);
        let b = fleet_function(0, 10, 100.0, 1.0, d, 3).collect_until(d);
        assert_eq!(a, b);
    }
}
