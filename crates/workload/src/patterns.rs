//! Synthetic production-trace generators.
//!
//! Public FaaS traces (e.g. the Azure Functions dataset) show two dominant
//! structures the auto-scaler must survive: slow *diurnal* swings and
//! sharp *bursts* stacked on a base rate. These builders synthesize both
//! as piecewise-linear rate profiles feeding the Poisson arrival process,
//! deterministic per seed — the closest reproducible equivalent of
//! replaying a proprietary trace.

use crate::arrival::ArrivalProcess;
use fastg_des::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A day-like sinusoidal load swing compressed into `period`.
///
/// The rate follows `base + (peak − base) × (1 − cos(2πt/period)) / 2`,
/// sampled at 32 knots per period — smooth enough that the scaler sees a
/// realistic ramp, coarse enough to stay cheap.
pub fn diurnal(
    base_rps: f64,
    peak_rps: f64,
    period: SimTime,
    cycles: u32,
    seed: u64,
) -> ArrivalProcess {
    debug_assert!(base_rps >= 0.0 && peak_rps >= base_rps, "peak below base");
    debug_assert!(period > SimTime::ZERO && cycles > 0);
    let base_rps = base_rps.max(0.0);
    let peak_rps = peak_rps.max(base_rps);
    let period = period.max(SimTime::from_micros(1));
    let cycles = cycles.max(1);
    const KNOTS_PER_CYCLE: u32 = 32;
    let total_knots = cycles * KNOTS_PER_CYCLE;
    let mut knots = Vec::with_capacity(usize::try_from(total_knots + 1).unwrap_or(0));
    for k in 0..=total_knots {
        let t = period.scale(k as f64 / KNOTS_PER_CYCLE as f64);
        let phase = 2.0 * std::f64::consts::PI * (k % KNOTS_PER_CYCLE) as f64
            / KNOTS_PER_CYCLE as f64;
        let rate = base_rps + (peak_rps - base_rps) * (1.0 - phase.cos()) / 2.0;
        knots.push((t, rate));
    }
    ArrivalProcess::profile(knots, seed)
}

/// A bursty trace: a flat `base_rps` with `bursts` randomly placed spikes
/// of `burst_rps` lasting `burst_len` each, over `duration`. Burst
/// placement is seeded and non-overlapping spikes may merge (rates add
/// where they do not — we take the max, which is what stacked tenants
/// look like after per-function splitting).
pub fn bursty(
    base_rps: f64,
    burst_rps: f64,
    bursts: u32,
    burst_len: SimTime,
    duration: SimTime,
    seed: u64,
) -> ArrivalProcess {
    debug_assert!(burst_rps >= base_rps, "burst below base");
    debug_assert!(duration > burst_len, "duration must exceed one burst");
    let burst_rps = burst_rps.max(base_rps);
    let duration = if duration > burst_len {
        duration
    } else {
        burst_len + SimTime::from_micros(1)
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut starts: Vec<u64> = (0..bursts)
        .map(|_| rng.gen_range(0..duration.saturating_sub(burst_len).as_micros()))
        .collect();
    starts.sort_unstable();
    // Build step knots: duplicate-time knots encode vertical steps.
    let mut knots: Vec<(SimTime, f64)> = vec![(SimTime::ZERO, base_rps)];
    let mut burst_end = SimTime::ZERO;
    for s in starts {
        let start = SimTime::from_micros(s).max(burst_end);
        let end = (start + burst_len).min(duration);
        if start >= end {
            continue;
        }
        knots.push((start, base_rps));
        knots.push((start, burst_rps));
        knots.push((end, burst_rps));
        knots.push((end, base_rps));
        burst_end = end;
    }
    knots.push((duration, base_rps));
    ArrivalProcess::profile(knots, seed.wrapping_add(1))
}

/// A flash crowd: a flat `base_rps` until `at`, a steep linear ramp to
/// `peak_rps` over `ramp`, a `hold` at the peak, an equally steep decay
/// back, then base rate until `duration`. Optional seeded aftershocks —
/// `aftershocks` half-height, half-length echo spikes in the tail — model
/// the retry storms that follow real incidents. The profile is the
/// canonical overload-control stressor: the ramp outruns any scaler, so
/// survival depends on admission control and shedding, not capacity.
#[allow(clippy::too_many_arguments)]
pub fn flash_crowd(
    base_rps: f64,
    peak_rps: f64,
    at: SimTime,
    ramp: SimTime,
    hold: SimTime,
    duration: SimTime,
    aftershocks: u32,
    seed: u64,
) -> ArrivalProcess {
    debug_assert!(peak_rps >= base_rps, "peak below base");
    debug_assert!(duration > at, "crowd must arrive before the end");
    let base_rps = base_rps.max(0.0);
    let peak_rps = peak_rps.max(base_rps);
    let ramp = ramp.max(SimTime::from_micros(1));
    let at = at.min(duration);
    let crest = (at + ramp).min(duration);
    let fall = (crest + hold).min(duration);
    let settled = (fall + ramp).min(duration);
    let mut knots: Vec<(SimTime, f64)> = vec![
        (SimTime::ZERO, base_rps),
        (at, base_rps),
        (crest, peak_rps),
        (fall, peak_rps),
        (settled, base_rps),
    ];
    // Echo spikes in the tail after the main crowd settles.
    if aftershocks > 0 && settled < duration {
        let echo_rps = base_rps + (peak_rps - base_rps) / 2.0;
        let echo_len = SimTime::from_micros((hold.as_micros() / 2).max(1));
        let mut rng = SmallRng::seed_from_u64(seed);
        let tail = duration.saturating_sub(settled).saturating_sub(echo_len);
        let mut starts: Vec<u64> = (0..aftershocks)
            .map(|_| rng.gen_range(0..tail.as_micros().max(1)))
            .collect();
        starts.sort_unstable();
        let mut echo_end = settled;
        for s in starts {
            let start = (settled + SimTime::from_micros(s)).max(echo_end);
            let end = (start + echo_len).min(duration);
            if start >= end {
                continue;
            }
            knots.push((start, base_rps));
            knots.push((start, echo_rps));
            knots.push((end, echo_rps));
            knots.push((end, base_rps));
            echo_end = end;
        }
    }
    knots.push((duration, base_rps));
    ArrivalProcess::profile(knots, seed.wrapping_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_rate_swings_between_base_and_peak() {
        let p = diurnal(10.0, 110.0, SimTime::from_secs(60), 2, 1);
        // Trough at t=0, crest at half period.
        assert!((p.rate_at(SimTime::ZERO) - 10.0).abs() < 1e-6);
        let crest = p.rate_at(SimTime::from_secs(30));
        assert!((crest - 110.0).abs() < 2.0, "crest {crest}");
        // Second cycle repeats.
        let crest2 = p.rate_at(SimTime::from_secs(90));
        assert!((crest2 - crest).abs() < 2.0);
    }

    #[test]
    fn diurnal_arrival_counts_track_the_swing() {
        let mut p = diurnal(20.0, 200.0, SimTime::from_secs(40), 1, 5);
        let ts = p.collect_until(SimTime::from_secs(40));
        let trough: usize = ts.iter().filter(|&&t| t < SimTime::from_secs(10)).count();
        let crest = ts
            .iter()
            .filter(|&&t| (SimTime::from_secs(15)..SimTime::from_secs(25)).contains(&t))
            .count();
        assert!(crest > trough * 2, "crest {crest} vs trough {trough}");
    }

    #[test]
    fn bursty_trace_has_spikes() {
        let p = bursty(
            10.0,
            300.0,
            3,
            SimTime::from_secs(2),
            SimTime::from_secs(60),
            9,
        );
        // Somewhere the instantaneous rate reaches the burst level.
        let peak = (0..600)
            .map(|i| p.rate_at(SimTime::from_millis(i * 100)))
            .fold(0.0f64, f64::max);
        assert!((peak - 300.0).abs() < 1e-6, "peak {peak}");
        // And the base level is the floor.
        let floor = (0..600)
            .map(|i| p.rate_at(SimTime::from_millis(i * 100)))
            .fold(f64::INFINITY, f64::min);
        assert!((floor - 10.0).abs() < 1e-6, "floor {floor}");
    }

    #[test]
    fn bursty_is_deterministic_per_seed() {
        let a = bursty(5.0, 100.0, 4, SimTime::from_secs(1), SimTime::from_secs(30), 3)
            .collect_until(SimTime::from_secs(30));
        let b = bursty(5.0, 100.0, 4, SimTime::from_secs(1), SimTime::from_secs(30), 3)
            .collect_until(SimTime::from_secs(30));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "peak below base")]
    fn diurnal_validates_range() {
        diurnal(100.0, 10.0, SimTime::from_secs(1), 1, 0);
    }

    #[test]
    fn flash_crowd_ramps_holds_and_settles() {
        let p = flash_crowd(
            20.0,
            400.0,
            SimTime::from_secs(10),
            SimTime::from_secs(2),
            SimTime::from_secs(5),
            SimTime::from_secs(60),
            0,
            7,
        );
        assert!((p.rate_at(SimTime::from_secs(5)) - 20.0).abs() < 1e-6);
        // Mid-ramp is between base and peak.
        let mid = p.rate_at(SimTime::from_secs(11));
        assert!(mid > 100.0 && mid < 350.0, "mid-ramp {mid}");
        // The hold sits at the peak.
        assert!((p.rate_at(SimTime::from_secs(14)) - 400.0).abs() < 1e-6);
        // Long after the crowd, base again.
        assert!((p.rate_at(SimTime::from_secs(50)) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn flash_crowd_aftershocks_echo_in_the_tail() {
        let p = flash_crowd(
            10.0,
            210.0,
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            SimTime::from_secs(4),
            SimTime::from_secs(120),
            3,
            11,
        );
        // Somewhere after the crowd settles (t > 11s) the rate reaches the
        // half-height echo level.
        let echo = (12..120)
            .map(|s| p.rate_at(SimTime::from_secs(s)))
            .fold(0.0f64, f64::max);
        assert!((echo - 110.0).abs() < 1e-6, "echo {echo}");
    }

    #[test]
    fn flash_crowd_is_deterministic_per_seed() {
        let mk = || {
            flash_crowd(
                5.0,
                150.0,
                SimTime::from_secs(3),
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(30),
                2,
                13,
            )
            .collect_until(SimTime::from_secs(30))
        };
        assert_eq!(mk(), mk());
    }
}
