//! # fastg-workload — load generation and service metrics
//!
//! The Locust / Grafana-k6 analogue: open-loop arrival processes that drive
//! the simulated FaaS gateway, plus the measurement plumbing the paper's
//! evaluation reports — latency percentiles (log-bucket histogram),
//! SLO-violation accounting, and throughput/arrival-rate estimation.
//!
//! All randomness is seeded (`rand::rngs::SmallRng`), so a workload replays
//! identically for a given seed.

#![warn(missing_docs)]

pub mod arrival;
pub mod fleet;
pub mod hist;
pub mod patterns;
pub mod rate;
pub mod slo;

pub use arrival::ArrivalProcess;
pub use hist::LatencyHistogram;
pub use rate::{RateEstimator, RateMeter};
pub use slo::SloTracker;
