//! Open-loop request arrival processes.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An open-loop arrival process: a deterministic (seeded) generator of
/// request arrival timestamps.
///
/// All constructors take rates in requests/second. `next_after(now)`
/// returns the next arrival strictly after `now`, or `None` once the
/// process is exhausted (trace end, or rate fell to zero).
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    kind: Kind,
    rng: SmallRng,
    cursor: SimTime,
}

#[derive(Debug, Clone)]
enum Kind {
    /// Evenly spaced arrivals at a fixed rate.
    Constant { rate: f64 },
    /// Poisson arrivals at a fixed rate.
    Poisson { rate: f64 },
    /// Poisson arrivals whose rate is linearly interpolated between
    /// `(time, rate)` knots; constant after the last knot.
    Profile { knots: Vec<(SimTime, f64)> },
    /// Exact timestamps (a recorded trace). `next` indexes the remainder.
    Trace { times: Vec<SimTime>, next: usize },
}

impl ArrivalProcess {
    /// Evenly spaced arrivals at `rate` requests/second.
    pub fn constant(rate: f64) -> Self {
        debug_assert!(rate >= 0.0, "negative rate");
        let rate = rate.max(0.0);
        Self::with_kind(Kind::Constant { rate }, 0)
    }

    /// Poisson arrivals at `rate` requests/second.
    pub fn poisson(rate: f64, seed: u64) -> Self {
        debug_assert!(rate >= 0.0, "negative rate");
        let rate = rate.max(0.0);
        Self::with_kind(Kind::Poisson { rate }, seed)
    }

    /// Poisson arrivals with a piecewise-linear rate profile. `knots` must
    /// be time-sorted; the rate before the first knot equals the first
    /// knot's rate and stays at the last knot's rate afterwards.
    pub fn profile(knots: Vec<(SimTime, f64)>, seed: u64) -> Self {
        debug_assert!(!knots.is_empty(), "empty rate profile");
        debug_assert!(
            knots.windows(2).all(|w| w[0].0 <= w[1].0),
            "rate profile knots must be time-sorted"
        );
        debug_assert!(knots.iter().all(|&(_, r)| r >= 0.0), "negative rate");
        // Sanitize rather than panic: sort out-of-order knots, clamp
        // negative rates, and treat an empty profile as always-off.
        let mut knots = knots;
        if knots.is_empty() {
            knots.push((SimTime::ZERO, 0.0));
        }
        knots.sort_by_key(|&(t, _)| t);
        for k in &mut knots {
            k.1 = k.1.max(0.0);
        }
        Self::with_kind(Kind::Profile { knots }, seed)
    }

    /// A linear ramp from `from_rate` to `to_rate` over `duration`, then
    /// constant.
    pub fn ramp(from_rate: f64, to_rate: f64, duration: SimTime, seed: u64) -> Self {
        Self::profile(
            vec![(SimTime::ZERO, from_rate), (duration, to_rate)],
            seed,
        )
    }

    /// Exact recorded timestamps (must be sorted).
    pub fn trace(mut times: Vec<SimTime>) -> Self {
        times.sort_unstable();
        Self::with_kind(Kind::Trace { times, next: 0 }, 0)
    }

    fn with_kind(kind: Kind, seed: u64) -> Self {
        ArrivalProcess {
            kind,
            rng: SmallRng::seed_from_u64(seed),
            cursor: SimTime::ZERO,
        }
    }

    /// For a constant-rate process with positive rate, the fixed
    /// inter-arrival gap (exactly the increment `next_after` applies);
    /// `None` for every other kind. Cluster fast-forward uses this to
    /// compute steady arrival sequences analytically — `anchor + k × gap`
    /// reproduces the event-driven timestamps bit for bit.
    pub fn constant_gap(&self) -> Option<SimTime> {
        match &self.kind {
            Kind::Constant { rate } if *rate > 0.0 => {
                Some(SimTime::from_secs_f64(1.0 / *rate).max(SimTime::from_micros(1)))
            }
            _ => None,
        }
    }

    /// The instantaneous target rate at `t` (requests/second).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match &self.kind {
            Kind::Constant { rate } | Kind::Poisson { rate } => *rate,
            Kind::Profile { knots } => {
                if t < knots[0].0 {
                    return knots[0].1;
                }
                // Strict upper bound so that at a step boundary (duplicate
                // knot times) the *later* segment wins — otherwise the
                // generator reads the pre-step rate exactly at the step.
                for w in knots.windows(2) {
                    let (t0, r0) = w[0];
                    let (t1, r1) = w[1];
                    if t < t1 {
                        let span = (t1 - t0).as_secs_f64();
                        if span <= 0.0 {
                            return r1;
                        }
                        let frac = (t - t0).as_secs_f64() / span;
                        return r0 + (r1 - r0) * frac;
                    }
                }
                knots.last().map_or(0.0, |k| k.1)
            }
            Kind::Trace { .. } => 0.0,
        }
    }

    /// The next arrival strictly after `now`, advancing the generator.
    pub fn next_after(&mut self, now: SimTime) -> Option<SimTime> {
        self.cursor = self.cursor.max(now);
        match &mut self.kind {
            Kind::Constant { rate } => {
                if *rate <= 0.0 {
                    return None;
                }
                let gap = SimTime::from_secs_f64(1.0 / *rate).max(SimTime::from_micros(1));
                self.cursor += gap;
                Some(self.cursor)
            }
            Kind::Poisson { rate } => {
                if *rate <= 0.0 {
                    return None;
                }
                let gap = exp_sample(&mut self.rng, *rate);
                self.cursor += gap;
                Some(self.cursor)
            }
            Kind::Profile { .. } => {
                // Sample with the instantaneous rate at the cursor; for the
                // slowly varying profiles used in evaluation this is an
                // adequate non-homogeneous Poisson approximation.
                let rate = self.rate_at(self.cursor);
                if rate <= 0.0 {
                    // Skip forward until the profile becomes non-zero.
                    let next_on = match &self.kind {
                        Kind::Profile { knots } => knots
                            .iter()
                            .find(|&&(t, r)| t > self.cursor && r > 0.0)
                            .map(|&(t, _)| t),
                        _ => {
                            debug_assert!(false, "off-rate gaps only occur in profiles");
                            None
                        }
                    };
                    let t = next_on?;
                    self.cursor = t;
                    return Some(t);
                }
                let gap = exp_sample(&mut self.rng, rate);
                self.cursor += gap;
                Some(self.cursor)
            }
            Kind::Trace { times, next } => {
                while *next < times.len() && times[*next] <= now {
                    *next += 1;
                }
                let t = times.get(*next).copied()?;
                *next += 1;
                self.cursor = t;
                Some(t)
            }
        }
    }

    /// Collects every arrival in `[0, until)` into a vector (convenience
    /// for tests and trial setup).
    pub fn collect_until(&mut self, until: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(t) = self.next_after(now) {
            if t >= until {
                break;
            }
            out.push(t);
            now = t;
        }
        out
    }
}

impl Snap for Kind {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Kind::Constant { rate } => {
                w.u8(0);
                rate.snap(w);
            }
            Kind::Poisson { rate } => {
                w.u8(1);
                rate.snap(w);
            }
            Kind::Profile { knots } => {
                w.u8(2);
                knots.snap(w);
            }
            Kind::Trace { times, next } => {
                w.u8(3);
                times.snap(w);
                next.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Kind::Constant {
                rate: f64::unsnap(r)?,
            }),
            1 => Ok(Kind::Poisson {
                rate: f64::unsnap(r)?,
            }),
            2 => Ok(Kind::Profile {
                knots: Vec::unsnap(r)?,
            }),
            3 => Ok(Kind::Trace {
                times: Vec::unsnap(r)?,
                next: usize::unsnap(r)?,
            }),
            _ => Err(SnapError::new("arrival Kind tag")),
        }
    }
}

impl Snap for ArrivalProcess {
    /// The RNG is captured as its raw xoshiro256++ state, so a restored
    /// process continues the exact same arrival stream mid-sequence.
    fn snap(&self, w: &mut SnapWriter) {
        let Self { kind, rng, cursor } = self;
        kind.snap(w);
        for word in rng.state() {
            w.u64(word);
        }
        cursor.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let kind = Kind::unsnap(r)?;
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let cursor = SimTime::unsnap(r)?;
        Ok(ArrivalProcess {
            kind,
            rng: SmallRng::from_state(state),
            cursor,
        })
    }
}

/// Exponential inter-arrival sample at `rate` per second, floored to 1 µs
/// so simulated time always advances.
fn exp_sample(rng: &mut SmallRng, rate: f64) -> SimTime {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let secs = -u.ln() / rate;
    SimTime::from_secs_f64(secs).max(SimTime::from_micros(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_evenly_spaced() {
        let mut p = ArrivalProcess::constant(100.0);
        let ts = p.collect_until(SimTime::from_secs(1));
        assert_eq!(ts.len(), 99); // 10ms, 20ms, ..., 990ms
        assert_eq!(ts[0], SimTime::from_millis(10));
        assert_eq!(ts[1] - ts[0], SimTime::from_millis(10));
    }

    #[test]
    fn poisson_hits_mean_rate() {
        let mut p = ArrivalProcess::poisson(200.0, 42);
        let ts = p.collect_until(SimTime::from_secs(50));
        let rate = ts.len() as f64 / 50.0;
        assert!((rate - 200.0).abs() < 10.0, "rate = {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = ArrivalProcess::poisson(50.0, 7).collect_until(SimTime::from_secs(2));
        let b = ArrivalProcess::poisson(50.0, 7).collect_until(SimTime::from_secs(2));
        let c = ArrivalProcess::poisson(50.0, 8).collect_until(SimTime::from_secs(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ramp_rate_interpolates() {
        let p = ArrivalProcess::ramp(0.0, 100.0, SimTime::from_secs(10), 1);
        assert_eq!(p.rate_at(SimTime::ZERO), 0.0);
        assert!((p.rate_at(SimTime::from_secs(5)) - 50.0).abs() < 1e-9);
        assert!((p.rate_at(SimTime::from_secs(10)) - 100.0).abs() < 1e-9);
        assert!((p.rate_at(SimTime::from_secs(20)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_generates_increasing_density() {
        let mut p = ArrivalProcess::ramp(10.0, 200.0, SimTime::from_secs(20), 3);
        let ts = p.collect_until(SimTime::from_secs(20));
        let first_half = ts.iter().filter(|&&t| t < SimTime::from_secs(10)).count();
        let second_half = ts.len() - first_half;
        assert!(second_half > first_half * 2, "{first_half} vs {second_half}");
    }

    #[test]
    fn zero_rate_profile_skips_to_next_knot() {
        let mut p = ArrivalProcess::profile(
            vec![
                (SimTime::ZERO, 0.0),
                (SimTime::from_secs(5), 0.0),
                (SimTime::from_secs(5), 100.0),
            ],
            9,
        );
        let first = p.next_after(SimTime::ZERO).unwrap();
        assert_eq!(first, SimTime::from_secs(5));
    }

    #[test]
    fn trace_replays_and_exhausts() {
        let mut p = ArrivalProcess::trace(vec![
            SimTime::from_millis(5),
            SimTime::from_millis(1),
            SimTime::from_millis(9),
        ]);
        assert_eq!(p.next_after(SimTime::ZERO), Some(SimTime::from_millis(1)));
        assert_eq!(
            p.next_after(SimTime::from_millis(1)),
            Some(SimTime::from_millis(5))
        );
        assert_eq!(
            p.next_after(SimTime::from_millis(5)),
            Some(SimTime::from_millis(9))
        );
        assert_eq!(p.next_after(SimTime::from_millis(9)), None);
    }

    #[test]
    fn zero_constant_rate_yields_nothing() {
        let mut p = ArrivalProcess::constant(0.0);
        assert_eq!(p.next_after(SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_profile_rejected() {
        ArrivalProcess::profile(
            vec![(SimTime::from_secs(5), 1.0), (SimTime::ZERO, 2.0)],
            0,
        );
    }
}
