//! Service-level-objective accounting.

use crate::hist::LatencyHistogram;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;

/// Tracks request latencies against a latency SLO (e.g. the paper's 69 ms
/// ResNet objective) and reports the violation ratio.
#[derive(Debug, Clone)]
pub struct SloTracker {
    slo: SimTime,
    histogram: LatencyHistogram,
    violations: u64,
}

impl SloTracker {
    /// Creates a tracker for the given latency objective.
    pub fn new(slo: SimTime) -> Self {
        debug_assert!(slo > SimTime::ZERO, "zero SLO");
        let slo = slo.max(SimTime::from_micros(1));
        SloTracker {
            slo,
            histogram: LatencyHistogram::new(),
            violations: 0,
        }
    }

    /// The objective.
    pub fn slo(&self) -> SimTime {
        self.slo
    }

    /// Records a completed request's latency.
    pub fn record(&mut self, latency: SimTime) {
        self.record_n(latency, 1);
    }

    /// Records `n` identical latencies in one step — bit-identical to `n`
    /// calls of [`Self::record`]; used by cluster fast-forward to credit
    /// coalesced steady cycles.
    pub fn record_n(&mut self, latency: SimTime, n: u64) {
        if latency > self.slo {
            self.violations += n;
        }
        self.histogram.record_n(latency, n);
    }

    /// Requests observed.
    pub fn total(&self) -> u64 {
        self.histogram.count()
    }

    /// Requests that exceeded the SLO.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Violation ratio in `[0, 1]`; zero when no requests were observed.
    pub fn violation_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.violations as f64 / total as f64
        }
    }

    /// Whether the violation ratio is at or below `budget`
    /// (the paper requires < 1 %: `meets(0.01)`).
    pub fn meets(&self, budget: f64) -> bool {
        self.violation_ratio() <= budget
    }

    /// The underlying latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }
}

impl Snap for SloTracker {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            slo,
            histogram,
            violations,
        } = self;
        slo.snap(w);
        histogram.snap(w);
        w.u64(*violations);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let slo = SimTime::unsnap(r)?;
        let histogram = LatencyHistogram::unsnap(r)?;
        let violations = r.u64()?;
        if violations > histogram.count() {
            return Err(SnapError::new("slo violations"));
        }
        Ok(SloTracker {
            slo,
            histogram,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_violations_exactly() {
        let mut t = SloTracker::new(SimTime::from_millis(69));
        for _ in 0..99 {
            t.record(SimTime::from_millis(50));
        }
        t.record(SimTime::from_millis(100));
        assert_eq!(t.total(), 100);
        assert_eq!(t.violations(), 1);
        assert!((t.violation_ratio() - 0.01).abs() < 1e-12);
        assert!(t.meets(0.01));
        assert!(!t.meets(0.005));
    }

    #[test]
    fn exactly_at_slo_is_not_a_violation() {
        let mut t = SloTracker::new(SimTime::from_millis(10));
        t.record(SimTime::from_millis(10));
        assert_eq!(t.violations(), 0);
        t.record(SimTime::from_micros(10_001));
        assert_eq!(t.violations(), 1);
    }

    #[test]
    fn empty_tracker_meets_everything() {
        let t = SloTracker::new(SimTime::from_millis(1));
        assert_eq!(t.violation_ratio(), 0.0);
        assert!(t.meets(0.0));
    }

    #[test]
    #[should_panic(expected = "zero SLO")]
    fn zero_slo_rejected() {
        SloTracker::new(SimTime::ZERO);
    }
}
