//! # fastg-cluster — Kubernetes/OpenFaaS-style cluster substrate
//!
//! The control surface FaST-GShare's prototype extends (faas-netes on
//! Kubernetes), reproduced as a simulation substrate:
//!
//! * [`spec`] — the CRD analogues: [`spec::FaSTFuncSpec`] (the user-facing
//!   function definition wrapping a model image) and
//!   [`spec::ResourceSpec`] (the FaSTPod annotations
//!   `sm_partition` / `quota_limit` / `quota_request` / `gpu_mem`).
//! * [`cluster`] — nodes (each with one simulated V100, as in the paper's
//!   testbed), pod lifecycle (create = MPS client registration + device
//!   memory allocation; delete = teardown), and the
//!   [`cluster::FaSTPodController`]-style reconciliation helper.
//! * [`gateway`] — the OpenFaaS gateway analogue: per-function request
//!   queues, idle-pod dispatch (least-outstanding routing falls out of
//!   pods pulling work when idle), and per-function arrival-rate
//!   prediction for the auto-scaler.
//!
//! Scheduling *policy* (which node, how many replicas, what partition) is
//! deliberately absent here — that is the `fastgshare` core crate. This
//! crate is mechanism only.

#![warn(missing_docs)]

pub mod cluster;
pub mod gateway;
pub mod spec;

pub use cluster::{Cluster, ClusterError, Node, NodeId, NodeState, Pod, PodId, PodState};
pub use gateway::{Admission, Gateway, Request, RequestId};
pub use spec::{FaSTFuncSpec, FuncId, ResourceSpec};
