//! Nodes, pods and their lifecycle.

use crate::spec::{FuncId, ResourceSpec};
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{ArenaKey, IdArena, SimTime};
use fastg_gpu::{ClientId, DevicePtr, GpuDevice, GpuSpec, MpsMode};

/// Identifies a worker node (one GPU per node, as in the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl ArenaKey for NodeId {
    fn index(self) -> usize {
        // u32 → usize is lossless on every supported target.
        // fastg-lint: allow(no-lossy-cast)
        self.0 as usize
    }
    fn from_index(i: usize) -> Self {
        // Arena keys are dense indices; 2^32 nodes is unreachable,
        // truncating silently is not. fastg-lint: allow(no-panic-in-lib)
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

/// Identifies a pod (one function instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PodId(pub u64);

impl ArenaKey for PodId {
    fn index(self) -> usize {
        // Pod ids are dense arena indices; exceeding the address
        // space is unreachable. fastg-lint: allow(no-panic-in-lib)
        usize::try_from(self.0).expect("pod index exceeds usize")
    }
    fn from_index(i: usize) -> Self {
        // usize → u64 is lossless on every supported target.
        // fastg-lint: allow(no-lossy-cast)
        PodId(i as u64)
    }
}

/// Pod lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodState {
    /// Serving (or ready to serve) requests.
    Running,
    /// Draining: finishes its in-flight request, accepts no new ones, then
    /// is deleted. This is how scale-down avoids dropping requests.
    Terminating,
}

/// Node health state (the failure-injection surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Healthy and schedulable.
    Up,
    /// Serving, but its GPU clock is scaled down (thermal throttling /
    /// ECC-retirement analogue): kernels run slower by the degradation
    /// factor. Still schedulable.
    Degraded,
    /// Crashed. Every pod on it is gone, its GPU was hard-reset, and no
    /// new pods may be placed on it. Crashes are permanent for a run.
    Down,
}

/// A worker node: one simulated GPU plus the MPS DaemonSet container.
#[derive(Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// Node name, e.g. `gpu-worker-0`.
    pub name: String,
    /// The node's GPU (device + MPS server + memory + metrics).
    pub gpu: GpuDevice,
    /// Health state.
    pub state: NodeState,
}

/// A running function instance bound to a node.
#[derive(Debug, Clone)]
pub struct Pod {
    /// Pod id.
    pub id: PodId,
    /// The function this pod serves.
    pub func: FuncId,
    /// The node it is bound to.
    pub node: NodeId,
    /// Its MPS client on the node's GPU.
    pub client: ClientId,
    /// Its spatio-temporal resource annotations.
    pub resources: ResourceSpec,
    /// Device memory reserved at creation.
    pub memory: Option<DevicePtr>,
    /// Lifecycle state.
    pub state: PodState,
    /// Creation timestamp.
    pub created_at: SimTime,
}

/// Errors from cluster operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// No node with that id.
    UnknownNode(NodeId),
    /// No pod with that id.
    UnknownPod(PodId),
    /// The node is crashed and cannot take pods.
    NodeDown(NodeId),
    /// The node's GPU could not admit the pod.
    Gpu(String),
    /// Not enough device memory on the node.
    OutOfMemory {
        /// Requested reservation in bytes.
        requested: u64,
        /// Free device memory in bytes.
        free: u64,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            ClusterError::UnknownPod(p) => write!(f, "unknown pod {p:?}"),
            ClusterError::NodeDown(n) => write!(f, "node {n:?} is down"),
            ClusterError::Gpu(e) => write!(f, "GPU error: {e}"),
            ClusterError::OutOfMemory { requested, free } => {
                write!(f, "node out of GPU memory: requested {requested} B, {free} B free")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// The cluster: worker nodes and the pods scheduled onto them.
///
/// Both tables are arena-indexed by their dense monotone ids (node ids and
/// pod ids are handed out sequentially and never reused), so per-request
/// node/pod lookups are O(1) array accesses and iteration order stays the
/// ascending-id order the former `BTreeMap`s provided.
#[derive(Debug, Default)]
pub struct Cluster {
    nodes: IdArena<NodeId, Node>,
    pods: IdArena<PodId, Pod>,
    next_node: u32,
    next_pod: u64,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a worker node with one GPU of the given spec, running the MPS
    /// DaemonSet (shared mode) or the plain device plugin (exclusive mode).
    pub fn add_node(&mut self, spec: GpuSpec, mode: MpsMode) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let name = format!("gpu-worker-{}", id.0);
        self.nodes.insert(
            id,
            Node {
                id,
                name,
                gpu: GpuDevice::new(spec, mode),
                state: NodeState::Up,
            },
        );
        id
    }

    /// Adds `n` identical nodes; returns their ids.
    pub fn add_nodes(&mut self, n: usize, spec: GpuSpec, mode: MpsMode) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node(spec.clone(), mode)).collect()
    }

    /// Node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().collect()
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> Result<&Node, ClusterError> {
        self.nodes.get(id).ok_or(ClusterError::UnknownNode(id))
    }

    /// Mutable node access (the platform drives the GPU through this).
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, ClusterError> {
        self.nodes.get_mut(id).ok_or(ClusterError::UnknownNode(id))
    }

    /// Creates a pod for `func` on `node`: registers an MPS client with the
    /// spec's SM partition and reserves `reserve_bytes` of device memory
    /// (which the caller computes — it differs under model sharing).
    pub fn create_pod(
        &mut self,
        now: SimTime,
        node: NodeId,
        func: FuncId,
        resources: ResourceSpec,
        reserve_bytes: u64,
    ) -> Result<PodId, ClusterError> {
        resources.validate();
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(ClusterError::UnknownNode(node))?;
        if n.state == NodeState::Down {
            return Err(ClusterError::NodeDown(node));
        }
        if n.gpu.memory().free_bytes() < reserve_bytes {
            return Err(ClusterError::OutOfMemory {
                requested: reserve_bytes,
                free: n.gpu.memory().free_bytes(),
            });
        }
        let client = n
            .gpu
            .register_client(resources.sm_partition)
            .map_err(|e| ClusterError::Gpu(e.to_string()))?;
        let memory = if reserve_bytes > 0 {
            match n.gpu.memory_mut().alloc(reserve_bytes) {
                Ok(ptr) => Some(ptr),
                Err(e) => {
                    // A freshly registered client has no work in flight, so
                    // this unregister cannot fail; if it somehow does the
                    // client leaks but pod creation still reports the OOM.
                    let unregistered = n.gpu.unregister_client(client);
                    debug_assert!(unregistered.is_ok(), "fresh client unregisters");
                    return Err(ClusterError::Gpu(e.to_string()));
                }
            }
        } else {
            None
        };
        let id = PodId(self.next_pod);
        self.next_pod += 1;
        self.pods.insert(
            id,
            Pod {
                id,
                func,
                node,
                client,
                resources,
                memory,
                state: PodState::Running,
                created_at: now,
            },
        );
        Ok(id)
    }

    /// Marks a pod as draining (no new requests). Idempotent.
    pub fn begin_terminate(&mut self, pod: PodId) -> Result<(), ClusterError> {
        let p = self.pods.get_mut(pod).ok_or(ClusterError::UnknownPod(pod))?;
        p.state = PodState::Terminating;
        Ok(())
    }

    /// Removes a drained pod: frees its device memory and MPS client. The
    /// caller must ensure no kernels are in flight.
    pub fn delete_pod(&mut self, pod: PodId) -> Result<Pod, ClusterError> {
        let p = self.pods.remove(pod).ok_or(ClusterError::UnknownPod(pod))?;
        let n = self
            .nodes
            .get_mut(p.node)
            .ok_or(ClusterError::UnknownNode(p.node))?;
        if let Some(ptr) = p.memory {
            n.gpu
                .memory_mut()
                .free(ptr)
                .map_err(|e| ClusterError::Gpu(e.to_string()))?;
        }
        n.gpu
            .unregister_client(p.client)
            .map_err(|e| ClusterError::Gpu(e.to_string()))?;
        Ok(p)
    }

    /// A node fails outright: it is marked [`NodeState::Down`], every pod
    /// on it is removed (and returned, so the platform can unwind gateway
    /// routing, backend rows and rectangle bindings), and its GPU is
    /// hard-reset — resident and queued kernels are aborted, MPS clients
    /// deleted, and all device memory returned. Idempotent on a node that
    /// is already down (returns an empty list).
    pub fn crash_node(&mut self, now: SimTime, node: NodeId) -> Result<Vec<Pod>, ClusterError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(ClusterError::UnknownNode(node))?;
        if n.state == NodeState::Down {
            return Ok(Vec::new());
        }
        n.state = NodeState::Down;
        n.gpu.hard_reset(now);
        let victims: Vec<PodId> = self
            .pods
            .values()
            .filter(|p| p.node == node)
            .map(|p| p.id)
            .collect();
        Ok(victims
            .into_iter()
            .filter_map(|id| self.pods.remove(id))
            .collect())
    }

    /// Degrades a node: its GPU clock slows by `factor` (≥ 1; 2.0 means
    /// kernels take twice as long). Applies to kernels started from now
    /// on; resident kernels keep their finish times.
    pub fn degrade_node(&mut self, node: NodeId, factor: f64) -> Result<(), ClusterError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(ClusterError::UnknownNode(node))?;
        if n.state == NodeState::Down {
            return Err(ClusterError::NodeDown(node));
        }
        n.state = NodeState::Degraded;
        n.gpu.set_clock_scale(factor);
        Ok(())
    }

    /// Clears a node's degradation (clock back to full speed). A crashed
    /// node stays down.
    pub fn recover_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(ClusterError::UnknownNode(node))?;
        if n.state == NodeState::Down {
            return Err(ClusterError::NodeDown(node));
        }
        n.state = NodeState::Up;
        n.gpu.set_clock_scale(1.0);
        Ok(())
    }

    /// A node's health state.
    pub fn node_state(&self, node: NodeId) -> Result<NodeState, ClusterError> {
        self.node(node).map(|n| n.state)
    }

    /// Ids of nodes that are not down, in order.
    pub fn live_node_ids(&self) -> Vec<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.state != NodeState::Down)
            .map(|n| n.id)
            .collect()
    }

    /// Immutable pod access.
    pub fn pod(&self, id: PodId) -> Result<&Pod, ClusterError> {
        self.pods.get(id).ok_or(ClusterError::UnknownPod(id))
    }

    /// Mutable pod access.
    pub fn pod_mut(&mut self, id: PodId) -> Result<&mut Pod, ClusterError> {
        self.pods.get_mut(id).ok_or(ClusterError::UnknownPod(id))
    }

    /// All pods of a function, in id order.
    pub fn pods_of(&self, func: FuncId) -> Vec<PodId> {
        self.pods
            .values()
            .filter(|p| p.func == func)
            .map(|p| p.id)
            .collect()
    }

    /// Running (non-terminating) pods of a function.
    pub fn running_pods_of(&self, func: FuncId) -> Vec<PodId> {
        self.pods
            .values()
            .filter(|p| p.func == func && p.state == PodState::Running)
            .map(|p| p.id)
            .collect()
    }

    /// All pods on a node.
    pub fn pods_on(&self, node: NodeId) -> Vec<PodId> {
        self.pods
            .values()
            .filter(|p| p.node == node)
            .map(|p| p.id)
            .collect()
    }

    /// Total pods.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Reconciliation helper (the FaSTPod controller loop): given a desired
    /// replica count for `func`, returns how many pods to create (positive)
    /// or which running pods to drain (chosen newest-first so the
    /// longest-lived, warmed instances survive).
    pub fn reconcile(&self, func: FuncId, desired: usize) -> ReconcileAction {
        let mut running: Vec<&Pod> = self
            .pods
            .values()
            .filter(|p| p.func == func && p.state == PodState::Running)
            .collect();
        if running.len() < desired {
            ReconcileAction::Create(desired - running.len())
        } else if running.len() > desired {
            running.sort_by_key(|p| std::cmp::Reverse((p.created_at, p.id))); // newest first
            ReconcileAction::Drain(
                running[..running.len() - desired]
                    .iter()
                    .map(|p| p.id)
                    .collect(),
            )
        } else {
            ReconcileAction::Steady
        }
    }
}

impl Snap for NodeId {
    fn snap(&self, w: &mut SnapWriter) {
        let NodeId(raw) = self;
        w.u32(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeId(r.u32()?))
    }
}

impl Snap for PodId {
    fn snap(&self, w: &mut SnapWriter) {
        let PodId(raw) = self;
        w.u64(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PodId(r.u64()?))
    }
}

impl Snap for PodState {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            PodState::Running => w.u8(0),
            PodState::Terminating => w.u8(1),
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(PodState::Running),
            1 => Ok(PodState::Terminating),
            _ => Err(SnapError::new("pod state tag")),
        }
    }
}

impl Snap for NodeState {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            NodeState::Up => w.u8(0),
            NodeState::Degraded => w.u8(1),
            NodeState::Down => w.u8(2),
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(NodeState::Up),
            1 => Ok(NodeState::Degraded),
            2 => Ok(NodeState::Down),
            _ => Err(SnapError::new("node state tag")),
        }
    }
}

impl Snap for Node {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            id,
            name,
            gpu,
            state,
        } = self;
        id.snap(w);
        name.snap(w);
        gpu.snap(w);
        state.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Node {
            id: NodeId::unsnap(r)?,
            name: String::unsnap(r)?,
            gpu: GpuDevice::unsnap(r)?,
            state: NodeState::unsnap(r)?,
        })
    }
}

impl Snap for Pod {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            id,
            func,
            node,
            client,
            resources,
            memory,
            state,
            created_at,
        } = self;
        id.snap(w);
        func.snap(w);
        node.snap(w);
        client.snap(w);
        resources.snap(w);
        memory.snap(w);
        state.snap(w);
        created_at.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Pod {
            id: PodId::unsnap(r)?,
            func: FuncId::unsnap(r)?,
            node: NodeId::unsnap(r)?,
            client: ClientId::unsnap(r)?,
            resources: ResourceSpec::unsnap(r)?,
            memory: Option::unsnap(r)?,
            state: PodState::unsnap(r)?,
            created_at: SimTime::unsnap(r)?,
        })
    }
}

impl Snap for Cluster {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            nodes,
            pods,
            next_node,
            next_pod,
        } = self;
        nodes.snap(w);
        pods.snap(w);
        w.u32(*next_node);
        w.u64(*next_pod);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let nodes: IdArena<NodeId, Node> = IdArena::unsnap(r)?;
        let pods: IdArena<PodId, Pod> = IdArena::unsnap(r)?;
        let next_node = r.u32()?;
        let next_pod = r.u64()?;
        if nodes.keys().any(|n| n.0 >= next_node) || pods.keys().any(|p| p.0 >= next_pod) {
            return Err(SnapError::new("cluster id space"));
        }
        Ok(Cluster {
            nodes,
            pods,
            next_node,
            next_pod,
        })
    }
}

/// Outcome of a reconciliation pass for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconcileAction {
    /// Create this many new pods.
    Create(usize),
    /// Drain these pods (newest first).
    Drain(Vec<PodId>),
    /// Replicas already match.
    Steady,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ResourceSpec {
        ResourceSpec::new(12.0, 0.3, 0.8, 0)
    }

    fn cluster_with_node() -> (Cluster, NodeId) {
        let mut c = Cluster::new();
        let n = c.add_node(GpuSpec::v100(), MpsMode::Shared);
        (c, n)
    }

    #[test]
    fn create_and_delete_pod_round_trip() {
        let (mut c, n) = cluster_with_node();
        let pod = c
            .create_pod(SimTime::ZERO, n, FuncId(0), spec(), 1024)
            .unwrap();
        assert_eq!(c.pod_count(), 1);
        assert_eq!(c.node(n).unwrap().gpu.memory().used(), 1024);
        assert_eq!(c.node(n).unwrap().gpu.mps().client_count(), 1);
        c.delete_pod(pod).unwrap();
        assert_eq!(c.pod_count(), 0);
        assert_eq!(c.node(n).unwrap().gpu.memory().used(), 0);
        assert_eq!(c.node(n).unwrap().gpu.mps().client_count(), 0);
    }

    #[test]
    fn memory_capacity_enforced() {
        let mut c = Cluster::new();
        let n = c.add_node(GpuSpec::custom("small", 8, 1000), MpsMode::Shared);
        let err = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 2000);
        assert!(matches!(err, Err(ClusterError::OutOfMemory { .. })));
        // Failure leaves no stray MPS client.
        assert_eq!(c.node(n).unwrap().gpu.mps().client_count(), 0);
    }

    #[test]
    fn pods_of_filters_by_function_and_state() {
        let (mut c, n) = cluster_with_node();
        let a = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 0).unwrap();
        let b = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 0).unwrap();
        let _x = c.create_pod(SimTime::ZERO, n, FuncId(1), spec(), 0).unwrap();
        assert_eq!(c.pods_of(FuncId(0)), vec![a, b]);
        c.begin_terminate(b).unwrap();
        assert_eq!(c.running_pods_of(FuncId(0)), vec![a]);
        assert_eq!(c.pods_on(n).len(), 3);
    }

    #[test]
    fn reconcile_scales_up_and_down() {
        let (mut c, n) = cluster_with_node();
        assert_eq!(c.reconcile(FuncId(0), 2), ReconcileAction::Create(2));
        let a = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 0).unwrap();
        let b = c
            .create_pod(SimTime::from_secs(1), n, FuncId(0), spec(), 0)
            .unwrap();
        assert_eq!(c.reconcile(FuncId(0), 2), ReconcileAction::Steady);
        // Scale to one: the newest pod (b) drains.
        assert_eq!(c.reconcile(FuncId(0), 1), ReconcileAction::Drain(vec![b]));
        let _ = a;
    }

    #[test]
    fn unknown_ids_error() {
        let mut c = Cluster::new();
        assert!(matches!(
            c.create_pod(SimTime::ZERO, NodeId(5), FuncId(0), spec(), 0),
            Err(ClusterError::UnknownNode(_))
        ));
        assert!(matches!(c.delete_pod(PodId(9)), Err(ClusterError::UnknownPod(_))));
        assert!(c.pod(PodId(9)).is_err());
    }

    #[test]
    fn multiple_nodes_get_distinct_names() {
        let mut c = Cluster::new();
        let ids = c.add_nodes(4, GpuSpec::v100(), MpsMode::Shared);
        assert_eq!(ids.len(), 4);
        let names: Vec<_> = ids
            .iter()
            .map(|&i| c.node(i).unwrap().name.clone())
            .collect();
        assert_eq!(names[0], "gpu-worker-0");
        assert_eq!(names[3], "gpu-worker-3");
    }

    #[test]
    fn crash_node_removes_pods_and_resets_gpu() {
        let (mut c, n) = cluster_with_node();
        let a = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 1024).unwrap();
        let _b = c.create_pod(SimTime::ZERO, n, FuncId(1), spec(), 2048).unwrap();
        assert_eq!(c.node_state(n).unwrap(), NodeState::Up);
        let lost = c.crash_node(SimTime::from_secs(1), n).unwrap();
        assert_eq!(lost.len(), 2);
        assert_eq!(c.pod_count(), 0);
        assert_eq!(c.node_state(n).unwrap(), NodeState::Down);
        // GPU fully reclaimed: no clients, no memory, all SMs free.
        let node = c.node(n).unwrap();
        assert_eq!(node.gpu.mps().client_count(), 0);
        assert_eq!(node.gpu.memory().used(), 0);
        assert_eq!(node.gpu.free_sms(), node.gpu.spec().sm_count);
        // Down nodes refuse new pods; a second crash is a no-op.
        assert!(matches!(
            c.create_pod(SimTime::from_secs(1), n, FuncId(0), spec(), 0),
            Err(ClusterError::NodeDown(_))
        ));
        assert!(c.crash_node(SimTime::from_secs(2), n).unwrap().is_empty());
        assert_eq!(c.live_node_ids(), Vec::<NodeId>::new());
        let _ = a;
    }

    #[test]
    fn degrade_and_recover_node() {
        let (mut c, n) = cluster_with_node();
        c.degrade_node(n, 2.0).unwrap();
        assert_eq!(c.node_state(n).unwrap(), NodeState::Degraded);
        assert_eq!(c.node(n).unwrap().gpu.clock_scale(), 2.0);
        // Degraded nodes still take pods.
        assert!(c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 0).is_ok());
        c.recover_node(n).unwrap();
        assert_eq!(c.node_state(n).unwrap(), NodeState::Up);
        assert_eq!(c.node(n).unwrap().gpu.clock_scale(), 1.0);
        // A crashed node can be neither degraded nor recovered.
        c.crash_node(SimTime::ZERO, n).unwrap();
        assert!(matches!(c.degrade_node(n, 2.0), Err(ClusterError::NodeDown(_))));
        assert!(matches!(c.recover_node(n), Err(ClusterError::NodeDown(_))));
    }

    #[test]
    fn exclusive_node_admits_single_pod() {
        let mut c = Cluster::new();
        let n = c.add_node(GpuSpec::v100(), MpsMode::Exclusive);
        let _a = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 0).unwrap();
        let err = c.create_pod(SimTime::ZERO, n, FuncId(0), spec(), 0);
        assert!(matches!(err, Err(ClusterError::Gpu(_))));
    }
}
