//! CRD-style specifications: functions and their spatio-temporal resource
//! annotations.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{ArenaKey, SimTime};

/// Identifies a deployed FaaS function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl ArenaKey for FuncId {
    fn index(self) -> usize {
        // u32 → usize is lossless on every supported target.
        // fastg-lint: allow(no-lossy-cast)
        self.0 as usize
    }
    fn from_index(i: usize) -> Self {
        // Arena keys are dense indices; 2^32 functions is unreachable,
        // truncating silently is not. fastg-lint: allow(no-panic-in-lib)
        FuncId(u32::try_from(i).expect("func index exceeds u32"))
    }
}

/// The spatio-temporal GPU resource annotations of a FaSTPod — the
/// `faasshare/sm_partition`, `faasshare/quota_limit`,
/// `faasshare/quota_request` and `faasshare/gpu_mem` fields of the paper's
/// Figure 4, with the same semantics:
///
/// * `sm_partition`: percentage of the GPU's SMs this pod's kernels may
///   occupy concurrently (the MPS active-thread percentage).
/// * `quota_limit` / `quota_request`: maximum and guaranteed fractions of
///   each scheduling window the pod may spend on the GPU. `request ≤ limit`;
///   the gap is the elastic region used when the GPU is otherwise idle.
/// * `gpu_mem`: device memory to reserve for the pod, in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSpec {
    /// SM partition percentage in `(0, 100]`.
    pub sm_partition: f64,
    /// Maximum window fraction in `(0, 1]`.
    pub quota_limit: f64,
    /// Guaranteed window fraction in `[0, quota_limit]`.
    pub quota_request: f64,
    /// Device memory reservation in bytes.
    pub gpu_mem: u64,
}

impl ResourceSpec {
    /// Builds and validates a spec.
    ///
    /// Out-of-range values come from the profiler/scheduler, so they are
    /// bugs, not user errors: debug builds assert, release builds clamp
    /// every field into its invariant range and carry on.
    pub fn new(sm_partition: f64, quota_request: f64, quota_limit: f64, gpu_mem: u64) -> Self {
        let s = ResourceSpec {
            sm_partition,
            quota_limit,
            quota_request,
            gpu_mem,
        };
        s.validate();
        s.clamped()
    }

    /// Checks all invariants (debug builds only).
    pub fn validate(&self) {
        debug_assert!(
            self.sm_partition > 0.0 && self.sm_partition <= 100.0,
            "sm_partition {} outside (0, 100]",
            self.sm_partition
        );
        debug_assert!(
            self.quota_limit > 0.0 && self.quota_limit <= 1.0,
            "quota_limit {} outside (0, 1]",
            self.quota_limit
        );
        debug_assert!(
            self.quota_request >= 0.0 && self.quota_request <= self.quota_limit,
            "quota_request {} outside [0, quota_limit={}]",
            self.quota_request,
            self.quota_limit
        );
    }

    /// A copy with every field forced into its invariant range.
    fn clamped(mut self) -> Self {
        let sane = |v: f64, hi: f64| if v.is_finite() && v > 0.0 { v.min(hi) } else { hi };
        self.sm_partition = sane(self.sm_partition, 100.0);
        self.quota_limit = sane(self.quota_limit, 1.0);
        self.quota_request = if self.quota_request.is_finite() {
            self.quota_request.clamp(0.0, self.quota_limit)
        } else {
            self.quota_limit
        };
        self
    }

    /// The paper's "secondCores" area measure: `quota × SM share`, the
    /// uniform size of a spatio-temporal resource rectangle.
    pub fn area(&self) -> f64 {
        self.quota_limit * self.sm_partition / 100.0
    }

    /// A spec used for profiling: `quota_request == quota_limit` (§3.3.2).
    pub fn profiling(sm_partition: f64, quota: f64, gpu_mem: u64) -> Self {
        Self::new(sm_partition, quota, quota, gpu_mem)
    }
}

impl Snap for FuncId {
    fn snap(&self, w: &mut SnapWriter) {
        let FuncId(raw) = self;
        w.u32(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FuncId(r.u32()?))
    }
}

impl Snap for ResourceSpec {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            sm_partition,
            quota_limit,
            quota_request,
            gpu_mem,
        } = self;
        sm_partition.snap(w);
        quota_limit.snap(w);
        quota_request.snap(w);
        w.u64(*gpu_mem);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ResourceSpec {
            sm_partition: f64::unsnap(r)?,
            quota_limit: f64::unsnap(r)?,
            quota_request: f64::unsnap(r)?,
            gpu_mem: r.u64()?,
        })
    }
}

impl Snap for FaSTFuncSpec {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { name, model, slo } = self;
        name.snap(w);
        model.snap(w);
        slo.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaSTFuncSpec {
            name: String::unsnap(r)?,
            model: String::unsnap(r)?,
            slo: SimTime::unsnap(r)?,
        })
    }
}

/// The FaSTFunc CRD analogue: a user-deployed inference function.
#[derive(Debug, Clone, PartialEq)]
pub struct FaSTFuncSpec {
    /// Function name, e.g. `fastsvc-rnnt`.
    pub name: String,
    /// The model this function serves (a `fastg-models` zoo name).
    pub model: String,
    /// Latency SLO for requests to this function.
    pub slo: SimTime,
}

impl FaSTFuncSpec {
    /// Creates a function spec.
    pub fn new(name: &str, model: &str, slo: SimTime) -> Self {
        FaSTFuncSpec {
            name: name.to_string(),
            model: model.to_string(),
            slo,
        }
    }

    /// Serializes to a JSON object (`name`, `model`, `slo_us`).
    pub fn to_json(&self) -> String {
        fastg_json::ObjectBuilder::new()
            .field("name", self.name.as_str())
            .field("model", self.model.as_str())
            .field("slo_us", self.slo.as_micros())
            .build()
            .to_string_compact()
    }

    /// Parses the JSON object produced by [`FaSTFuncSpec::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = fastg_json::Value::parse(json).map_err(|e| format!("invalid JSON: {e}"))?;
        let name = v["name"].as_str().ok_or("name missing")?;
        let model = v["model"].as_str().ok_or("model missing")?;
        let slo_us = v["slo_us"].as_u64().ok_or("slo_us missing")?;
        Ok(FaSTFuncSpec::new(name, model, SimTime::from_micros(slo_us)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_spec_passes() {
        let s = ResourceSpec::new(12.0, 0.3, 0.8, 1 << 30);
        assert!((s.area() - 0.096).abs() < 1e-12);
    }

    #[test]
    fn profiling_spec_pins_request_to_limit() {
        let s = ResourceSpec::profiling(24.0, 0.4, 0);
        assert_eq!(s.quota_request, s.quota_limit);
    }

    #[test]
    #[should_panic(expected = "sm_partition")]
    fn zero_partition_rejected() {
        ResourceSpec::new(0.0, 0.1, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "quota_request")]
    fn request_above_limit_rejected() {
        ResourceSpec::new(10.0, 0.9, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "quota_limit")]
    fn limit_above_one_rejected() {
        ResourceSpec::new(10.0, 0.5, 1.5, 0);
    }

    #[test]
    fn func_spec_round_trips_json() {
        let f = FaSTFuncSpec::new("fastsvc-resnet", "resnet50", SimTime::from_millis(69));
        let json = f.to_json();
        let back = FaSTFuncSpec::from_json(&json).unwrap();
        assert_eq!(f, back);
    }
}
