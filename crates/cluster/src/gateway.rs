//! The OpenFaaS gateway analogue: request queues, idle-pod dispatch and
//! arrival-rate prediction.

use crate::cluster::PodId;
use crate::spec::FuncId;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{IdArena, SimTime};
use fastg_workload::RateMeter;
use std::collections::VecDeque;

/// Identifies one end-user request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// An inference request waiting at (or dispatched by) the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Request id.
    pub id: RequestId,
    /// Target function.
    pub func: FuncId,
    /// Gateway arrival time (latency is measured from here, as the load
    /// generator observes it).
    pub arrived: SimTime,
    /// Absolute completion deadline; [`SimTime::MAX`] means no deadline.
    /// The overload control plane sheds the request once queue wait plus
    /// estimated service time proves the deadline unmeetable.
    pub deadline: SimTime,
}

/// Outcome of offering a request to the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// An idle pod existed; the request was dispatched to it.
    Dispatch(Request, PodId),
    /// All pods busy; the request joined the function's queue.
    Queue(Request),
    /// The function's bounded admission queue is full: the request is
    /// refused immediately instead of queueing without limit.
    Overloaded(Request),
}

/// Hot-path per-function state. Pod sets are small sorted vectors (a
/// function has a handful of replicas; ascending order keeps "pick the
/// lowest idle pod" deterministic and identical to the `BTreeSet` min it
/// replaced), the arrival log is run-length encoded so steady load costs
/// O(1) memory per rate change instead of O(arrivals), and retry counts
/// live in a tiny sorted vec that is cleared on every terminal state.
#[derive(Debug, Default)]
struct FuncState {
    queue: VecDeque<Request>,
    /// Idle replicas, sorted ascending; dispatch always takes the first.
    idle_pods: Vec<PodId>,
    /// Registered replicas, sorted ascending.
    members: Vec<PodId>,
    arrivals: RateMeter,
    /// Requests shed at the gateway (queue timeout or retry budget).
    dropped: u64,
    /// Bound on `queue` depth; `None` = unbounded (legacy behaviour).
    capacity: Option<usize>,
    /// Requests refused at admission (queue full or breaker fast-fail).
    rejected: u64,
    /// Requests shed because their deadline became provably unmeetable.
    shed_deadline: u64,
    /// Crash-retry counts for requests re-admitted at least once, sorted
    /// by id. Entries are removed on every terminal state (completion,
    /// drop, deadline shed), so the vec only ever holds in-flight or
    /// queued retried requests.
    retries: Vec<(RequestId, u32)>,
}

/// Inserts `pod` into a sorted vec if absent.
fn sorted_insert(v: &mut Vec<PodId>, pod: PodId) {
    if let Err(at) = v.binary_search(&pod) {
        v.insert(at, pod);
    }
}

/// Removes `pod` from a sorted vec; returns whether it was present.
fn sorted_remove(v: &mut Vec<PodId>, pod: PodId) -> bool {
    match v.binary_search(&pod) {
        Ok(at) => {
            v.remove(at);
            true
        }
        Err(_) => false,
    }
}

impl FuncState {
    fn clear_retries(&mut self, id: RequestId) {
        if let Ok(at) = self.retries.binary_search_by_key(&id, |&(rid, _)| rid) {
            self.retries.remove(at);
        }
    }
}

/// The gateway: per-function FIFO queues and pull-based dispatch.
///
/// Pods *pull*: an idle pod is handed the head of its function's queue; if
/// the queue is empty it parks in the idle set and the next arrival is
/// dispatched to it directly. Because every pod serves one request at a
/// time, this implements least-outstanding routing.
///
/// Function state is arena-indexed by the dense `FuncId` (ascending-id
/// iteration, same order the former `BTreeMap` gave) so the per-request
/// lookup is one bounds-checked array access.
#[derive(Debug, Default)]
pub struct Gateway {
    funcs: IdArena<FuncId, FuncState>,
    next_request: u64,
}

impl Gateway {
    /// Creates an empty gateway.
    pub fn new() -> Self {
        Self::default()
    }

    /// The function's state, created on first touch.
    fn func_mut(&mut self, func: FuncId) -> &mut FuncState {
        if !self.funcs.contains(func) {
            self.funcs.insert(func, FuncState::default());
        }
        // The entry was inserted just above; the arena cannot have
        // evicted it. fastg-lint: allow(no-panic-in-lib)
        self.funcs.get_mut(func).expect("just ensured")
    }

    /// Ensures the function is known to the gateway.
    pub fn register_func(&mut self, func: FuncId) {
        self.func_mut(func);
    }

    /// Adds a pod to a function's routing set, initially idle.
    pub fn register_pod(&mut self, func: FuncId, pod: PodId) {
        let st = self.func_mut(func);
        sorted_insert(&mut st.members, pod);
        sorted_insert(&mut st.idle_pods, pod);
    }

    /// Removes a pod from routing (scale-down / drain). Returns whether the
    /// pod was idle — if it was busy, the platform lets its in-flight
    /// request finish before deletion.
    pub fn deregister_pod(&mut self, func: FuncId, pod: PodId) -> bool {
        let Some(st) = self.funcs.get_mut(func) else {
            return false;
        };
        sorted_remove(&mut st.members, pod);
        sorted_remove(&mut st.idle_pods, pod)
    }

    /// Offers a new request at `now` carrying an absolute `deadline`
    /// ([`SimTime::MAX`] = none). If an idle pod exists it is dispatched
    /// immediately; otherwise it queues — unless the function's bounded
    /// admission queue is at capacity, in which case the request is
    /// refused with [`Admission::Overloaded`] instead of queueing
    /// silently without limit.
    pub fn on_arrival(&mut self, now: SimTime, func: FuncId, deadline: SimTime) -> Admission {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        let req = Request {
            id,
            func,
            arrived: now,
            deadline,
        };
        let st = self.func_mut(func);
        st.arrivals.record(now);
        if !st.idle_pods.is_empty() {
            let pod = st.idle_pods.remove(0);
            Admission::Dispatch(req, pod)
        } else if st.capacity.is_some_and(|cap| st.queue.len() >= cap) {
            st.rejected += 1;
            Admission::Overloaded(req)
        } else {
            st.queue.push_back(req);
            Admission::Queue(req)
        }
    }

    /// The id the next arrival will be assigned (peek only). Admission
    /// controllers use this to register probe outcomes before calling
    /// [`Self::on_arrival`].
    pub fn next_request_id(&self) -> u64 {
        self.next_request
    }

    /// Counts an arrival that the overload control plane refused before it
    /// ever reached the queue (circuit breaker fast-fail). The request is
    /// materialised so accounting stays uniform but never queues.
    pub fn reject_arrival(&mut self, now: SimTime, func: FuncId) -> Request {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        let st = self.func_mut(func);
        st.arrivals.record(now);
        st.rejected += 1;
        Request {
            id,
            func,
            arrived: now,
            deadline: now,
        }
    }

    /// Credits `count` arrivals at `start, start+gap, …` to the function's
    /// arrival log and consumes the matching block of request ids,
    /// returning the first id of the block. Cluster fast-forward uses this
    /// to replay coalesced steady cycles: the log and the id counter end
    /// up exactly where `count` individual [`Self::on_arrival`] calls
    /// would have left them.
    pub fn credit_arrival_run(
        &mut self,
        func: FuncId,
        start: SimTime,
        gap: SimTime,
        count: u64,
    ) -> RequestId {
        let first = RequestId(self.next_request);
        self.next_request += count;
        self.func_mut(func).arrivals.record_run(start, gap, count);
        first
    }

    /// Bounds (or unbounds, with `None`) a function's admission queue.
    pub fn set_queue_capacity(&mut self, func: FuncId, capacity: Option<usize>) {
        self.func_mut(func).capacity = capacity;
    }

    /// Sheds the queue prefix whose deadlines are provably unmeetable:
    /// every queued request with `now + est_service > deadline`. The queue
    /// is ordered by `(arrived, id)` and deadlines are monotone in arrival
    /// time per function, so the unmeetable requests form a prefix and
    /// capacity is never burned on already-dead work. Returns the shed
    /// requests in queue order.
    pub fn shed_unmeetable(
        &mut self,
        now: SimTime,
        func: FuncId,
        est_service: SimTime,
    ) -> Vec<Request> {
        let Some(st) = self.funcs.get_mut(func) else {
            return Vec::new();
        };
        let eta = now.checked_add(est_service).unwrap_or(SimTime::MAX);
        let mut shed = Vec::new();
        while let Some(head) = st.queue.front().copied() {
            if eta <= head.deadline {
                break;
            }
            st.queue.pop_front();
            st.shed_deadline += 1;
            st.clear_retries(head.id);
            shed.push(head);
        }
        shed
    }

    /// Re-admits a request that was dispatched but never completed (its
    /// pod crashed). It keeps its original id and arrival time — the
    /// retry latency counts against the SLO — and re-enters the queue at
    /// its arrival-order position (usually the head: an in-flight request
    /// is older than anything still queued), or goes straight to an idle
    /// pod. The retry is counted against the request's budget (see
    /// [`Gateway::retries_of`]).
    pub fn requeue(&mut self, req: Request) -> Option<PodId> {
        let st = self.func_mut(req.func);
        match st.retries.binary_search_by_key(&req.id, |&(rid, _)| rid) {
            Ok(at) => st.retries[at].1 += 1,
            Err(at) => st.retries.insert(at, (req.id, 1)),
        }
        if !st.idle_pods.is_empty() {
            let pod = st.idle_pods.remove(0);
            Some(pod)
        } else {
            // Ordered insert by (arrived, id): two crash retries in a row
            // must not invert each other, and a retried request must not
            // jump ahead of an even older one.
            let key = (req.arrived, req.id.0);
            let at = st
                .queue
                .iter()
                .position(|r| (r.arrived, r.id.0) > key)
                .unwrap_or(st.queue.len());
            st.queue.insert(at, req);
            None
        }
    }

    /// How many times a request has been crash-retried so far.
    pub fn retries_of(&self, req: &Request) -> u32 {
        self.funcs
            .get(req.func)
            .and_then(|st| {
                st.retries
                    .binary_search_by_key(&req.id, |&(rid, _)| rid)
                    .ok()
                    .map(|at| st.retries[at].1)
            })
            .unwrap_or(0)
    }

    /// Marks a dispatched request completed: its terminal state. Clears
    /// any crash-retry entry so the retry table only ever holds requests
    /// that are still queued or in flight (the fleet-scale leak fix).
    pub fn complete_request(&mut self, req: &Request) {
        if let Some(st) = self.funcs.get_mut(req.func) {
            st.clear_retries(req.id);
        }
    }

    /// Total crash-retry entries currently held across all functions.
    /// Bounded by in-flight + queued requests (every terminal state clears
    /// its entry); report assembly asserts that invariant in debug builds.
    pub fn retries_total(&self) -> u64 {
        self.funcs
            .values()
            .map(|st| u64::try_from(st.retries.len()).unwrap_or(u64::MAX))
            .sum()
    }

    /// Removes a still-queued request (gateway timeout). Returns the
    /// removed request — a dispatched or completed request is left alone
    /// and `None` is returned.
    pub fn cancel_queued(&mut self, func: FuncId, id: RequestId) -> Option<Request> {
        let st = self.funcs.get_mut(func)?;
        let at = st.queue.iter().position(|r| r.id == id)?;
        st.queue.remove(at)
    }

    /// Counts a request as shed (timed out in queue or over its retry
    /// budget) for the function's report.
    pub fn drop_request(&mut self, req: &Request) {
        let st = self.func_mut(req.func);
        st.dropped += 1;
        st.clear_retries(req.id);
    }

    /// Requests shed at the gateway for a function.
    pub fn dropped(&self, func: FuncId) -> u64 {
        self.funcs.get(func).map_or(0, |st| st.dropped)
    }

    /// Requests refused at admission (bounded queue full or breaker
    /// fast-fail) for a function.
    pub fn rejected(&self, func: FuncId) -> u64 {
        self.funcs.get(func).map_or(0, |st| st.rejected)
    }

    /// Requests shed because their deadline became unmeetable.
    pub fn shed_deadline(&self, func: FuncId) -> u64 {
        self.funcs.get(func).map_or(0, |st| st.shed_deadline)
    }

    /// A pod finished its request and asks for more work. Returns the next
    /// queued request, or parks the pod idle and returns `None`. Pods that
    /// were deregistered while busy are not parked (the caller deletes
    /// them).
    pub fn on_pod_idle(&mut self, func: FuncId, pod: PodId) -> Option<Request> {
        let st = self.funcs.get_mut(func)?;
        if st.members.binary_search(&pod).is_err() {
            return None;
        }
        // The pod may already be parked (e.g. a freshly registered pod
        // polling for backlog); it must leave the idle set while serving.
        sorted_remove(&mut st.idle_pods, pod);
        match st.queue.pop_front() {
            Some(req) => Some(req),
            None => {
                sorted_insert(&mut st.idle_pods, pod);
                None
            }
        }
    }

    /// Queue depth for a function.
    pub fn queue_len(&self, func: FuncId) -> usize {
        self.funcs.get(func).map_or(0, |st| st.queue.len())
    }

    /// Number of idle pods for a function.
    pub fn idle_count(&self, func: FuncId) -> usize {
        self.funcs.get(func).map_or(0, |st| st.idle_pods.len())
    }

    /// Registered pods for a function.
    pub fn member_count(&self, func: FuncId) -> usize {
        self.funcs.get(func).map_or(0, |st| st.members.len())
    }

    /// Observed arrival rate (requests/second) over the trailing `window`
    /// ending at `now` — the predicted load `R_j` fed to the auto-scaler.
    pub fn arrival_rate(&self, func: FuncId, now: SimTime, window: SimTime) -> f64 {
        let Some(st) = self.funcs.get(func) else {
            return 0.0;
        };
        let from = now.saturating_sub(window);
        let n = st.arrivals.count() - st.arrivals.count_between(SimTime::ZERO, from);
        let span = window.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            n as f64 / span
        }
    }

    /// Predicted near-future arrival rate: the trailing rate plus a linear
    /// trend extrapolated one half-window ahead. During ramps a plain
    /// trailing mean lags the true rate by ~half the window, which is
    /// exactly the under-provisioning that blows SLOs during scale-up;
    /// the trend term cancels that lag. Never negative.
    pub fn predicted_rate(&self, func: FuncId, now: SimTime, window: SimTime) -> f64 {
        let half = window / 2;
        let mid = now.saturating_sub(half);
        let r_old = self.rate_in(func, now.saturating_sub(window), mid);
        let r_new = self.rate_in(func, mid, now);
        (r_new + (r_new - r_old)).max(0.0)
    }

    fn rate_in(&self, func: FuncId, from: SimTime, to: SimTime) -> f64 {
        let Some(st) = self.funcs.get(func) else {
            return 0.0;
        };
        let span = to.saturating_sub(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        st.arrivals.count_between(from, to) as f64 / span
    }

    /// Total requests ever accepted for a function.
    pub fn total_arrivals(&self, func: FuncId) -> u64 {
        self.funcs.get(func).map_or(0, |st| st.arrivals.count())
    }

    /// Functions with registered state.
    pub fn funcs(&self) -> Vec<FuncId> {
        self.funcs.keys().collect()
    }
}

impl Snap for RequestId {
    fn snap(&self, w: &mut SnapWriter) {
        let RequestId(raw) = self;
        w.u64(*raw);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RequestId(r.u64()?))
    }
}

impl Snap for Request {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            id,
            func,
            arrived,
            deadline,
        } = self;
        id.snap(w);
        func.snap(w);
        arrived.snap(w);
        deadline.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Request {
            id: RequestId::unsnap(r)?,
            func: FuncId::unsnap(r)?,
            arrived: SimTime::unsnap(r)?,
            deadline: SimTime::unsnap(r)?,
        })
    }
}

impl Snap for FuncState {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            queue,
            idle_pods,
            members,
            arrivals,
            dropped,
            capacity,
            rejected,
            shed_deadline,
            retries,
        } = self;
        queue.snap(w);
        idle_pods.snap(w);
        members.snap(w);
        arrivals.snap(w);
        w.u64(*dropped);
        capacity.snap(w);
        w.u64(*rejected);
        w.u64(*shed_deadline);
        retries.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let queue: VecDeque<Request> = VecDeque::unsnap(r)?;
        let idle_pods: Vec<PodId> = Vec::unsnap(r)?;
        let members: Vec<PodId> = Vec::unsnap(r)?;
        if idle_pods.windows(2).any(|w| w[0] >= w[1])
            || members.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(SnapError::new("gateway pod set order"));
        }
        Ok(FuncState {
            queue,
            idle_pods,
            members,
            arrivals: RateMeter::unsnap(r)?,
            dropped: r.u64()?,
            capacity: Option::unsnap(r)?,
            rejected: r.u64()?,
            shed_deadline: r.u64()?,
            retries: Vec::unsnap(r)?,
        })
    }
}

impl Snap for Gateway {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            funcs,
            next_request,
        } = self;
        funcs.snap(w);
        w.u64(*next_request);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Gateway {
            funcs: IdArena::unsnap(r)?,
            next_request: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FuncId = FuncId(0);

    /// Legacy-shaped arrival helper: no deadline, `(request, maybe pod)`.
    fn arrive(g: &mut Gateway, now: SimTime, func: FuncId) -> (Request, Option<PodId>) {
        match g.on_arrival(now, func, SimTime::MAX) {
            Admission::Dispatch(req, pod) => (req, Some(pod)),
            Admission::Queue(req) | Admission::Overloaded(req) => (req, None),
        }
    }

    #[test]
    fn dispatches_to_idle_pod_immediately() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        let (req, pod) = arrive(&mut g, SimTime::ZERO, F);
        assert_eq!(pod, Some(PodId(1)));
        assert_eq!(req.id, RequestId(0));
        assert_eq!(g.idle_count(F), 0);
    }

    #[test]
    fn bounded_queue_rejects_at_capacity() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        g.set_queue_capacity(F, Some(2));
        // One dispatches, two queue, the rest are refused.
        for i in 0..5u64 {
            g.on_arrival(SimTime::from_millis(i), F, SimTime::MAX);
        }
        assert_eq!(g.queue_len(F), 2);
        assert_eq!(g.rejected(F), 2);
        assert_eq!(g.total_arrivals(F), 5);
        // Refusals are explicit.
        let adm = g.on_arrival(SimTime::from_millis(9), F, SimTime::MAX);
        assert!(matches!(adm, Admission::Overloaded(_)));
        assert_eq!(g.rejected(F), 3);
        // Draining one slot re-opens admission.
        assert!(g.on_pod_idle(F, PodId(1)).is_some());
        let adm = g.on_arrival(SimTime::from_millis(10), F, SimTime::MAX);
        assert!(matches!(adm, Admission::Queue(_)));
    }

    #[test]
    fn unbounded_queue_never_rejects() {
        let mut g = Gateway::new();
        g.register_func(F);
        for i in 0..1_000u64 {
            let adm = g.on_arrival(SimTime::from_millis(i), F, SimTime::MAX);
            assert!(matches!(adm, Admission::Queue(_)));
        }
        assert_eq!(g.rejected(F), 0);
        assert_eq!(g.queue_len(F), 1_000);
    }

    #[test]
    fn shed_unmeetable_pops_exactly_the_dead_prefix() {
        let mut g = Gateway::new();
        g.register_func(F);
        // Deadlines 10 ms, 20 ms, 30 ms after a common arrival ordering.
        for (i, dl) in [10u64, 20, 30].iter().enumerate() {
            g.on_arrival(SimTime::from_millis(i as u64), F, SimTime::from_millis(*dl));
        }
        // At t = 12 ms with 5 ms estimated service: eta 17 ms kills only
        // the 10 ms deadline.
        let shed = g.shed_unmeetable(SimTime::from_millis(12), F, SimTime::from_millis(5));
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].deadline, SimTime::from_millis(10));
        assert_eq!(g.shed_deadline(F), 1);
        assert_eq!(g.queue_len(F), 2);
        // A huge estimate kills the rest; MAX deadlines never shed.
        g.on_arrival(SimTime::from_millis(13), F, SimTime::MAX);
        let shed = g.shed_unmeetable(SimTime::from_millis(14), F, SimTime::from_secs(10));
        assert_eq!(shed.len(), 2);
        assert_eq!(g.shed_deadline(F), 3);
        assert_eq!(g.queue_len(F), 1, "MAX-deadline request survives");
    }

    #[test]
    fn reject_arrival_counts_without_queueing() {
        let mut g = Gateway::new();
        g.register_func(F);
        let req = g.reject_arrival(SimTime::from_millis(5), F);
        assert_eq!(req.arrived, SimTime::from_millis(5));
        assert_eq!(g.total_arrivals(F), 1);
        assert_eq!(g.rejected(F), 1);
        assert_eq!(g.queue_len(F), 0);
    }

    #[test]
    fn queues_when_all_busy_and_drains_fifo() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        let (_r0, _) = arrive(&mut g, SimTime::ZERO, F);
        let (r1, p1) = arrive(&mut g, SimTime::from_millis(1), F);
        let (r2, p2) = arrive(&mut g, SimTime::from_millis(2), F);
        assert_eq!(p1, None);
        assert_eq!(p2, None);
        assert_eq!(g.queue_len(F), 2);
        // Pod comes back: gets r1 then r2 in order.
        assert_eq!(g.on_pod_idle(F, PodId(1)).unwrap().id, r1.id);
        assert_eq!(g.on_pod_idle(F, PodId(1)).unwrap().id, r2.id);
        // Nothing left: pod parks idle.
        assert_eq!(g.on_pod_idle(F, PodId(1)), None);
        assert_eq!(g.idle_count(F), 1);
    }

    #[test]
    fn multiple_idle_pods_fan_out() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        g.register_pod(F, PodId(2));
        let (_, pa) = arrive(&mut g, SimTime::ZERO, F);
        let (_, pb) = arrive(&mut g, SimTime::ZERO, F);
        let mut got = vec![pa.unwrap(), pb.unwrap()];
        got.sort();
        assert_eq!(got, vec![PodId(1), PodId(2)]);
    }

    #[test]
    fn parked_pod_can_poll_for_backlog() {
        let mut g = Gateway::new();
        // Requests queue while no pod exists.
        let (r0, p0) = arrive(&mut g, SimTime::ZERO, F);
        assert_eq!(p0, None);
        g.register_pod(F, PodId(1)); // registers idle
        // The new pod polls and gets the backlog — and leaves the idle
        // set so arrivals cannot double-dispatch to it.
        assert_eq!(g.on_pod_idle(F, PodId(1)).unwrap().id, r0.id);
        assert_eq!(g.idle_count(F), 0);
        let (_, p1) = arrive(&mut g, SimTime::from_millis(1), F);
        assert_eq!(p1, None, "busy pod must not be double-dispatched");
    }

    #[test]
    fn deregistered_pod_is_not_parked() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        let (_, p) = arrive(&mut g, SimTime::ZERO, F);
        assert_eq!(p, Some(PodId(1)));
        // Drained while busy.
        let was_idle = g.deregister_pod(F, PodId(1));
        assert!(!was_idle);
        assert_eq!(g.on_pod_idle(F, PodId(1)), None);
        assert_eq!(g.idle_count(F), 0);
    }

    #[test]
    fn deregistering_idle_pod_reports_idle() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        assert!(g.deregister_pod(F, PodId(1)));
        assert_eq!(g.member_count(F), 0);
    }

    #[test]
    fn arrival_rate_windows() {
        let mut g = Gateway::new();
        g.register_func(F);
        for i in 0..100 {
            g.on_arrival(SimTime::from_millis(i * 10), F, SimTime::MAX); // 100 rps
        }
        let r = g.arrival_rate(F, SimTime::from_secs(1), SimTime::from_secs(1));
        assert!((r - 100.0).abs() < 2.0, "r = {r}");
        // Older-than-window arrivals excluded.
        let r2 = g.arrival_rate(F, SimTime::from_secs(10), SimTime::from_secs(1));
        assert_eq!(r2, 0.0);
        assert_eq!(g.total_arrivals(F), 100);
    }

    #[test]
    fn predicted_rate_anticipates_ramps() {
        let mut g = Gateway::new();
        g.register_func(F);
        // First 2 s at 50 rps, next 2 s at 150 rps.
        for i in 0..100u64 {
            g.on_arrival(SimTime::from_millis(i * 20), F, SimTime::MAX);
        }
        for i in 0..300u64 {
            g.on_arrival(SimTime::from_secs(2) + SimTime::from_micros(i * 6_667), F, SimTime::MAX);
        }
        let now = SimTime::from_secs(4);
        let window = SimTime::from_secs(4);
        let trailing = g.arrival_rate(F, now, window);
        let predicted = g.predicted_rate(F, now, window);
        // Trailing mean ~100, prediction extrapolates towards ~250.
        assert!((trailing - 100.0).abs() < 10.0, "trailing {trailing}");
        assert!(predicted > 200.0, "predicted {predicted}");
    }

    #[test]
    fn predicted_rate_never_negative() {
        let mut g = Gateway::new();
        g.register_func(F);
        // A burst followed by silence: the raw trend would be negative.
        for i in 0..200u64 {
            g.on_arrival(SimTime::from_millis(i), F, SimTime::MAX);
        }
        let p = g.predicted_rate(F, SimTime::from_secs(10), SimTime::from_secs(4));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn unknown_function_is_harmless() {
        let mut g = Gateway::new();
        assert_eq!(g.queue_len(FuncId(7)), 0);
        assert_eq!(g.on_pod_idle(FuncId(7), PodId(1)), None);
        assert_eq!(g.arrival_rate(FuncId(7), SimTime::ZERO, SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn requeued_request_dispatches_before_younger_queued_requests() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        // r0 dispatches to the only pod; r1 and r2 queue behind it.
        let (r0, p0) = arrive(&mut g, SimTime::ZERO, F);
        assert_eq!(p0, Some(PodId(1)));
        let (r1, _) = arrive(&mut g, SimTime::from_millis(1), F);
        let (r2, _) = arrive(&mut g, SimTime::from_millis(2), F);
        // The pod crashes: r0 (the oldest request) is re-admitted and
        // must dispatch before the younger r1 and r2.
        assert_eq!(g.requeue(r0), None);
        g.register_pod(F, PodId(2));
        assert_eq!(g.on_pod_idle(F, PodId(2)).unwrap().id, r0.id);
        assert_eq!(g.on_pod_idle(F, PodId(2)).unwrap().id, r1.id);
        assert_eq!(g.on_pod_idle(F, PodId(2)).unwrap().id, r2.id);
    }

    #[test]
    fn successive_requeues_keep_arrival_order() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        g.register_pod(F, PodId(2));
        let (ra, _) = arrive(&mut g, SimTime::ZERO, F); // → pod 1
        let (rb, _) = arrive(&mut g, SimTime::from_millis(1), F); // → pod 2
        let (rc, _) = arrive(&mut g, SimTime::from_millis(2), F); // queued
        // Both pods crash; their requests requeue youngest-first — the
        // order a node-level crash tears pods down in is arbitrary.
        assert_eq!(g.requeue(rb), None);
        assert_eq!(g.requeue(ra), None);
        // Arrival order must be restored: ra, rb, rc.
        g.register_pod(F, PodId(3));
        assert_eq!(g.on_pod_idle(F, PodId(3)).unwrap().id, ra.id);
        assert_eq!(g.on_pod_idle(F, PodId(3)).unwrap().id, rb.id);
        assert_eq!(g.on_pod_idle(F, PodId(3)).unwrap().id, rc.id);
    }

    #[test]
    fn retries_are_counted_per_request() {
        let mut g = Gateway::new();
        g.register_func(F);
        let (r, _) = arrive(&mut g, SimTime::ZERO, F);
        assert_eq!(g.retries_of(&r), 0);
        g.requeue(r);
        assert_eq!(g.retries_of(&r), 1);
        // Drain it, crash again, requeue again.
        g.register_pod(F, PodId(1));
        assert_eq!(g.on_pod_idle(F, PodId(1)).unwrap().id, r.id);
        g.requeue(r);
        assert_eq!(g.retries_of(&r), 2);
    }

    #[test]
    fn cancel_queued_sheds_only_waiting_requests() {
        let mut g = Gateway::new();
        g.register_pod(F, PodId(1));
        let (r0, _) = arrive(&mut g, SimTime::ZERO, F); // dispatched
        let (r1, _) = arrive(&mut g, SimTime::from_millis(1), F); // queued
        assert_eq!(g.cancel_queued(F, r0.id), None, "in-flight is untouchable");
        let got = g.cancel_queued(F, r1.id).unwrap();
        assert_eq!(got.id, r1.id);
        assert_eq!(g.queue_len(F), 0);
        assert_eq!(g.cancel_queued(F, r1.id), None, "already cancelled");
        g.drop_request(&r1);
        assert_eq!(g.dropped(F), 1);
        assert_eq!(g.dropped(FuncId(9)), 0);
    }

    #[test]
    fn request_ids_are_globally_unique() {
        let mut g = Gateway::new();
        g.register_func(F);
        g.register_func(FuncId(1));
        let (a, _) = arrive(&mut g, SimTime::ZERO, F);
        let (b, _) = arrive(&mut g, SimTime::ZERO, FuncId(1));
        assert_ne!(a.id, b.id);
    }
}
