//! Property tests for the cluster substrate.

use fastg_cluster::{Cluster, FuncId, Gateway, PodId, ResourceSpec};
use fastg_des::SimTime;
use fastg_gpu::{GpuSpec, MpsMode};
use proptest::prelude::*;

proptest! {
    /// Pod create/delete interleavings conserve GPU memory and MPS client
    /// counts exactly.
    #[test]
    fn pod_lifecycle_conserves_resources(
        ops in prop::collection::vec((0u8..2, 1u64..512), 1..120)
    ) {
        let mut c = Cluster::new();
        let node = c.add_node(GpuSpec::v100(), MpsMode::Shared);
        let spec = ResourceSpec::new(10.0, 0.2, 0.5, 0);
        let mut live: Vec<(PodId, u64)> = Vec::new();
        for &(op, mib) in &ops {
            let bytes = mib * 1024 * 1024;
            if op == 0 || live.is_empty() {
                if let Ok(p) = c.create_pod(SimTime::ZERO, node, FuncId(0), spec, bytes) {
                    live.push((p, bytes));
                }
            } else {
                let (p, _) = live.swap_remove((mib as usize) % live.len());
                c.delete_pod(p).unwrap();
            }
            let n = c.node(node).unwrap();
            let expected: u64 = live.iter().map(|&(_, b)| b).sum();
            prop_assert_eq!(n.gpu.memory().used(), expected);
            prop_assert_eq!(n.gpu.mps().client_count(), live.len());
            prop_assert_eq!(c.pod_count(), live.len());
        }
    }

    /// The gateway conserves requests: arrivals == dispatched + queued,
    /// and never dispatches to a busy or deregistered pod.
    #[test]
    fn gateway_conserves_requests(ops in prop::collection::vec(0u8..4, 1..300)) {
        let mut g = Gateway::new();
        let f = FuncId(0);
        g.register_func(f);
        let mut pods_registered = 0u64;
        let mut busy: Vec<PodId> = Vec::new();
        let mut dispatched = 0u64;
        let mut arrivals = 0u64;
        let mut completed = 0u64;
        let mut now = SimTime::ZERO;
        for &op in &ops {
            now += SimTime::from_micros(1);
            match op {
                // New pod joins.
                0 => {
                    g.register_pod(f, PodId(pods_registered));
                    pods_registered += 1;
                }
                // Request arrives.
                1 => {
                    arrivals += 1;
                    if let fastg_cluster::Admission::Dispatch(_req, p) =
                        g.on_arrival(now, f, SimTime::MAX)
                    {
                        prop_assert!(!busy.contains(&p), "dispatched to busy pod");
                        busy.push(p);
                        dispatched += 1;
                    }
                }
                // A busy pod finishes and pulls more work.
                2 if !busy.is_empty() => {
                    let p = busy.remove(0);
                    completed += 1;
                    if g.on_pod_idle(f, p).is_some() {
                        busy.push(p);
                        dispatched += 1;
                    }
                }
                // Deregister an idle pod if any.
                3 => {
                    let idle_exists = g.idle_count(f) > 0;
                    if idle_exists {
                        // Idle pods are those registered but not busy.
                        for i in 0..pods_registered {
                            let p = PodId(i);
                            if !busy.contains(&p) && g.deregister_pod(f, p) {
                                break;
                            }
                        }
                    }
                }
                _ => {}
            }
            prop_assert_eq!(
                dispatched + g.queue_len(f) as u64,
                arrivals,
                "requests lost or duplicated"
            );
            let _ = completed;
        }
    }

    /// Reconcile always converges: applying its action yields the desired
    /// replica count (when capacity allows).
    #[test]
    fn reconcile_converges(initial in 0usize..10, desired in 0usize..10) {
        use fastg_cluster::cluster::ReconcileAction;
        let mut c = Cluster::new();
        let node = c.add_node(GpuSpec::v100(), MpsMode::Shared);
        let spec = ResourceSpec::new(5.0, 0.1, 0.1, 0);
        for i in 0..initial {
            c.create_pod(SimTime::from_micros(i as u64), node, FuncId(0), spec, 0)
                .unwrap();
        }
        match c.reconcile(FuncId(0), desired) {
            ReconcileAction::Create(n) => {
                prop_assert_eq!(initial + n, desired);
            }
            ReconcileAction::Drain(pods) => {
                prop_assert_eq!(initial - pods.len(), desired);
                for p in pods {
                    c.begin_terminate(p).unwrap();
                }
                prop_assert_eq!(c.running_pods_of(FuncId(0)).len(), desired);
            }
            ReconcileAction::Steady => prop_assert_eq!(initial, desired),
        }
    }

    /// ResourceSpec areas multiply correctly and stay in [0, 1].
    #[test]
    fn resource_area_bounds(sm in 1u32..=100, q_lim_pct in 1u32..=100) {
        let q = q_lim_pct as f64 / 100.0;
        let spec = ResourceSpec::new(sm as f64, 0.0, q, 0);
        let area = spec.area();
        prop_assert!((0.0..=1.0).contains(&area));
        prop_assert!((area - sm as f64 / 100.0 * q).abs() < 1e-12);
    }
}
