//! Property tests for the event engine.

use fastg_des::{BusyTracker, EventQueue, SimTime, TimeWeighted};
use proptest::prelude::*;

proptest! {
    /// Events pop globally sorted by time, with FIFO order inside equal
    /// timestamps.
    #[test]
    fn queue_pops_sorted_with_fifo_ties(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = q.pop() {
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at {:?}", w[0].0);
            }
        }
    }

    /// peek_time always matches the next pop.
    #[test]
    fn peek_matches_pop(times in prop::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_micros(t), ());
        }
        while let Some(peeked) = q.peek_time() {
            let (t, ()) = q.pop().unwrap();
            prop_assert_eq!(peeked, t);
        }
        prop_assert!(q.is_empty());
    }

    /// The time-weighted integral over a piecewise-constant signal equals
    /// the sum of value × segment-length, for any change sequence.
    #[test]
    fn time_weighted_integral_exact(
        segs in prop::collection::vec((1u64..1_000, -50i32..50), 1..50)
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut now = SimTime::ZERO;
        let mut expected = 0.0;
        let mut value = 0.0f64;
        for &(len, v) in &segs {
            // Current value persists for `len` microseconds.
            expected += value * len as f64 / 1e6;
            now += SimTime::from_micros(len);
            value = v as f64;
            tw.set(now, value);
        }
        let got = tw.integral_at(now);
        prop_assert!((got - expected).abs() < 1e-9, "got {got}, expected {expected}");
    }

    /// Busy fraction is always within [0, 1] and equals total marked busy
    /// time for non-overlapping intervals.
    #[test]
    fn busy_tracker_fraction_bounds(
        gaps in prop::collection::vec((1u64..500, 1u64..500), 1..40)
    ) {
        let mut b = BusyTracker::new(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut busy_total = 0u64;
        for &(idle, busy) in &gaps {
            now += SimTime::from_micros(idle);
            b.begin(now);
            now += SimTime::from_micros(busy);
            b.end(now);
            busy_total += busy;
        }
        let u = b.utilization_at(now);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&u));
        let expected = busy_total as f64 / now.as_micros() as f64;
        prop_assert!((u - expected).abs() < 1e-9);
    }

    /// SimTime::scale never overflows for sane factors and rounds to the
    /// nearest microsecond.
    #[test]
    fn scale_rounding(us in 0u64..1_000_000_000, pct in 0u32..=100) {
        let t = SimTime::from_micros(us);
        let f = pct as f64 / 100.0;
        let scaled = t.scale(f);
        let exact = us as f64 * f;
        prop_assert!((scaled.as_micros() as f64 - exact).abs() <= 0.5 + 1e-9);
    }
}
