//! # fastg-des — deterministic discrete-event simulation engine
//!
//! The substrate every other FaST-GShare crate builds on. It provides:
//!
//! * [`SimTime`] — integer-microsecond simulation timestamps,
//! * [`EventQueue`] — a priority queue of timed events with FIFO
//!   tie-breaking, so that two events scheduled for the same instant are
//!   always delivered in the order they were scheduled,
//! * [`Simulation`] / [`World`] — the event loop driver,
//! * [`TimeWeighted`], [`BusyTracker`] and [`TimeSeries`] — integrators and
//!   recorders used to compute GPU utilization, SM occupancy and other
//!   interval statistics.
//!
//! Everything is deterministic: given the same initial state and the same
//! sequence of `schedule` calls, a simulation replays event-for-event.
//!
//! ```
//! use fastg_des::{EventQueue, SimTime, Simulation, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), queue: &mut EventQueue<()>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             queue.schedule(now + SimTime::from_millis(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.queue_mut().schedule(SimTime::ZERO, ());
//! sim.run_until_idle();
//! assert_eq!(sim.world().fired, 10);
//! assert_eq!(sim.now(), SimTime::from_millis(9));
//! ```

#![warn(missing_docs)]

mod arena;
mod queue;
pub mod sanitizer;
mod series;
mod sim;
pub mod snap;
mod time;

pub use arena::{ArenaKey, Handle, IdArena, IdSet};
pub use queue::{CancelToken, EventQueue, TieBreak};
pub use series::{BusyTracker, TimeSeries, TimeWeighted};
pub use sim::{Simulation, StepOutcome, World};
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
pub use time::SimTime;
