//! Runtime invariant shadow-checks (`FASTG_SANITIZE=1`).
//!
//! A ThreadSanitizer-style layer for the DES: hot paths call [`check`]
//! with an invariant and a lazy detail closure; when the sanitizer is
//! inactive the call is a branch on a cached boolean (debug builds) or
//! compiled out entirely (release builds), so steady-state performance is
//! unaffected. When `FASTG_SANITIZE=1` is set in a debug build, every
//! violation aborts with the rule name, the offending detail, the index
//! and timestamp of the event being dispatched, and a replay recipe
//! (seed, tie-break policy, fast-forward mode) so the exact failing
//! trace can be reproduced from the command line.
//!
//! Checked invariants (hooked from `sim.rs`, `queue.rs`, the GPU device
//! and the platform engine):
//!
//! * `monotone-dispatch` — event dispatch time never decreases,
//! * `cancel-token-generation` — a [`crate::CancelToken`] always names a
//!   live entry from its own queue's sequence space,
//! * `ff-sync-order` — lazy fast-forward boundary replay lands strictly
//!   before the synchronizing instant (inclusive only at report flush),
//! * `sm-conservation` — per-kernel SM grants stay within client caps and
//!   the device-wide SM budget,
//! * `overload-conservation` — every admitted request is accounted for
//!   exactly once in the report identity
//!   `arrivals == completed + rejected + shed + dropped + queued + in-flight`.

use crate::queue::TieBreak;
use crate::time::SimTime;

/// The replay recipe attached to every violation: enough to re-run the
/// exact trace that tripped the invariant.
#[derive(Debug, Clone, Copy)]
pub struct RunContext {
    /// The scenario seed (`PlatformConfig::seed`).
    pub seed: u64,
    /// The active same-instant tie-break policy.
    pub tiebreak: TieBreak,
    /// Whether analytic fast-forward (event coalescing) was enabled.
    pub fastforward: bool,
}

impl RunContext {
    /// Renders the recipe as the environment incantation that replays it.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn render(self) -> String {
        let tb = match self.tiebreak {
            TieBreak::Fifo => "fifo".to_string(),
            TieBreak::Lifo => "lifo".to_string(),
            TieBreak::SeededShuffle(s) => format!("shuffle:{s}"),
        };
        format!(
            "FASTG_SANITIZE=1 FASTG_TIEBREAK={tb} FASTG_FASTFORWARD={} <run> with seed {}",
            if self.fastforward { 1 } else { 0 },
            self.seed
        )
    }
}

#[cfg(debug_assertions)]
mod imp {
    use super::RunContext;
    use crate::time::SimTime;
    use std::cell::Cell;

    thread_local! {
        static ACTIVE: bool = std::env::var("FASTG_SANITIZE").is_ok_and(|v| v == "1");
        static EVENT: Cell<(u64, SimTime)> = const { Cell::new((0, SimTime::ZERO)) };
        static CONTEXT: Cell<Option<RunContext>> = const { Cell::new(None) };
    }

    pub fn active() -> bool {
        ACTIVE.with(|a| *a)
    }

    pub fn set_run_context(ctx: RunContext) {
        CONTEXT.with(|c| c.set(Some(ctx)));
    }

    pub fn on_event(index: u64, at: SimTime) {
        EVENT.with(|e| e.set((index, at)));
    }

    pub fn check(cond: bool, rule: &'static str, detail: impl FnOnce() -> String) {
        if active() && !cond {
            let (index, at) = EVENT.with(Cell::get);
            let recipe = CONTEXT.with(Cell::get).map_or_else(
                || "FASTG_SANITIZE=1 <run> (no run context registered)".to_string(),
                RunContext::render,
            );
            panic!(
                "determinism-sanitizer violation [{rule}]\n  {}\n  while dispatching event #{index} at t={at:?}\n  replay: {recipe}",
                detail()
            );
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::RunContext;
    use crate::time::SimTime;

    // Release builds: every hook is an inlined no-op, so the sanitizer
    // costs nothing on hot paths.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_run_context(_ctx: RunContext) {}

    #[inline(always)]
    pub fn on_event(_index: u64, _at: SimTime) {}

    #[inline(always)]
    pub fn check(_cond: bool, _rule: &'static str, _detail: impl FnOnce() -> String) {}
}

/// Whether the sanitizer is armed (debug build with `FASTG_SANITIZE=1`).
/// Callers use this to skip building check inputs that are themselves
/// expensive (O(n) scans, conservation sums).
#[inline]
pub fn active() -> bool {
    imp::active()
}

/// Registers the replay recipe for subsequent violations on this thread.
/// Drivers call this once per run; it is a cheap `Cell` store.
#[inline]
pub fn set_run_context(ctx: RunContext) {
    imp::set_run_context(ctx)
}

/// Records the index and timestamp of the event about to be dispatched,
/// so violations can point at the exact position in the trace.
#[inline]
pub fn on_event(index: u64, at: SimTime) {
    imp::on_event(index, at)
}

/// Asserts `cond`; on violation aborts with `rule`, the rendered
/// `detail`, the current event position and the replay recipe. The
/// closure only runs on failure.
#[inline]
pub fn check(cond: bool, rule: &'static str, detail: impl FnOnce() -> String) {
    imp::check(cond, rule, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_check_never_evaluates_detail() {
        // FASTG_SANITIZE is not set to 1 in the test environment by
        // default; even if it is, a true condition must never panic or
        // render its detail.
        check(true, "monotone-dispatch", || {
            unreachable!("detail must be lazy")
        });
    }

    #[test]
    fn run_context_renders_replay_recipe() {
        let ctx = RunContext {
            seed: 7,
            tiebreak: TieBreak::SeededShuffle(42),
            fastforward: false,
        };
        let r = ctx.render();
        assert!(r.contains("FASTG_TIEBREAK=shuffle:42"));
        assert!(r.contains("FASTG_FASTFORWARD=0"));
        assert!(r.contains("seed 7"));
    }
}
