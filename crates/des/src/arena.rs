//! Dense, generation-stamped arenas for hot-path entity state.
//!
//! The platform's entities (nodes, pods, functions) carry small dense
//! integer ids handed out by monotone counters. Storing their runtime
//! state in `BTreeMap<Id, _>` puts a pointer-chasing tree walk on every
//! request hot path; at fleet scale (1k+ nodes, 10⁸ requests) that walk
//! dominates. [`IdArena`] replaces the tree with a flat `Vec` indexed by
//! the id itself: O(1) access, cache-linear iteration, and an explicit
//! deterministic iteration order (ascending id — exactly the order the
//! `BTreeMap`s iterated in, so report digests are unchanged).
//!
//! Slots are generation-stamped: each insert bumps the slot's generation,
//! so a [`Handle`] taken before a remove/reinsert cycle can be detected as
//! stale instead of silently aliasing the new occupant (the guillotiere
//! `AllocIndex` idiom).

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::fmt;
use std::marker::PhantomData;

/// Types usable as arena keys: cheap conversion to/from a dense `usize`.
pub trait ArenaKey: Copy {
    /// The dense index for this key.
    fn index(self) -> usize;
    /// Rebuilds the key from a dense index.
    fn from_index(i: usize) -> Self;
}

impl ArenaKey for usize {
    fn index(self) -> usize {
        self
    }
    fn from_index(i: usize) -> Self {
        i
    }
}

impl ArenaKey for u32 {
    fn index(self) -> usize {
        // u32 → usize is lossless on every supported target.
        // fastg-lint: allow(no-lossy-cast)
        self as usize
    }
    fn from_index(i: usize) -> Self {
        // Arena keys are dense indices; 2^32 entities is unreachable,
        // truncating silently is not. fastg-lint: allow(no-panic-in-lib)
        u32::try_from(i).expect("arena index exceeds u32 key space")
    }
}

impl ArenaKey for u64 {
    fn index(self) -> usize {
        // Arena keys are dense indices; exceeding the address space
        // is unreachable. fastg-lint: allow(no-panic-in-lib)
        usize::try_from(self).expect("arena index exceeds usize")
    }
    fn from_index(i: usize) -> Self {
        // usize → u64 is lossless on every supported target.
        // fastg-lint: allow(no-lossy-cast)
        i as u64
    }
}

/// A generation-stamped handle to an arena slot, for callers that must
/// detect remove/reinsert races on the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle<K> {
    key_index: usize,
    generation: u32,
    _marker: PhantomData<K>,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    generation: u32,
    value: Option<V>,
}

/// A dense arena keyed by small integer ids.
///
/// Iteration order is ascending key index — explicit and deterministic,
/// matching the `BTreeMap` ordering it replaces.
#[derive(Clone)]
pub struct IdArena<K, V> {
    slots: Vec<Slot<V>>,
    len: usize,
    _marker: PhantomData<K>,
}

impl<K, V: fmt::Debug> fmt::Debug for IdArena<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(
                self.slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.value.as_ref().map(|v| (i, v))),
            )
            .finish()
    }
}

impl<K: ArenaKey, V> Default for IdArena<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: ArenaKey, V> IdArena<K, V> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        IdArena {
            slots: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Creates an arena with room for keys `0..capacity` pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        IdArena {
            slots: Vec::with_capacity(capacity),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn ensure(&mut self, index: usize) {
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || Slot {
                generation: 0,
                value: None,
            });
        }
    }

    /// Inserts `value` at `key`, returning the previous occupant if any.
    /// Bumps the slot generation, invalidating outstanding [`Handle`]s.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.index();
        self.ensure(i);
        let slot = &mut self.slots[i];
        slot.generation = slot.generation.wrapping_add(1);
        let prev = slot.value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the entry at `key`.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let slot = self.slots.get_mut(key.index())?;
        let prev = slot.value.take();
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Immutable access.
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.index()).and_then(|s| s.value.as_ref())
    }

    /// Mutable access.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots
            .get_mut(key.index())
            .and_then(|s| s.value.as_mut())
    }

    /// Whether `key` is occupied.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// A generation-stamped handle to the current occupant of `key`.
    pub fn handle(&self, key: K) -> Option<Handle<K>> {
        let i = key.index();
        let slot = self.slots.get(i)?;
        slot.value.as_ref()?;
        Some(Handle {
            key_index: i,
            generation: slot.generation,
            _marker: PhantomData,
        })
    }

    /// Access through a handle: `None` if the slot was vacated or
    /// re-occupied since the handle was taken (stale generation).
    pub fn get_by_handle(&self, h: Handle<K>) -> Option<&V> {
        let slot = self.slots.get(h.key_index)?;
        if slot.generation != h.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Live `(key, &value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.value.as_ref().map(|v| (K::from_index(i), v)))
    }

    /// Live `(key, &mut value)` pairs in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.value.as_mut().map(|v| (K::from_index(i), v)))
    }

    /// Live keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.value.as_ref().map(|_| K::from_index(i)))
    }

    /// Live values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }

    /// Live values, mutably, in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(|s| s.value.as_mut())
    }
}

impl<K: ArenaKey, V> IdArena<K, V> {
    /// Encodes the full slab with a caller-supplied value encoder, in the
    /// exact wire format of the blanket [`Snap`] impl. For value types
    /// whose encoding needs out-of-band context (e.g. a shared profile
    /// looked up elsewhere) and therefore cannot implement [`Snap`]
    /// directly.
    pub fn snap_with(&self, w: &mut SnapWriter, mut encode: impl FnMut(&V, &mut SnapWriter)) {
        let Self {
            slots,
            len,
            _marker,
        } = self;
        w.len_prefix(*len);
        w.len_prefix(slots.len());
        for slot in slots {
            let Slot { generation, value } = slot;
            w.u32(*generation);
            match value {
                Some(v) => {
                    w.u8(1);
                    encode(v, w);
                }
                None => w.u8(0),
            }
        }
    }

    /// Decodes a slab written by [`Self::snap_with`] (or the blanket
    /// [`Snap`] impl), handing each live slot's key to the caller-supplied
    /// decoder so it can resolve out-of-band context.
    pub fn unsnap_with(
        r: &mut SnapReader<'_>,
        mut decode: impl FnMut(K, &mut SnapReader<'_>) -> Result<V, SnapError>,
    ) -> Result<Self, SnapError> {
        let len = r.len_prefix()?;
        let n = r.len_prefix()?;
        let mut slots = Vec::with_capacity(n.min(r.remaining()));
        let mut live = 0usize;
        for i in 0..n {
            let generation = r.u32()?;
            let value = match r.u8()? {
                0 => None,
                1 => {
                    live += 1;
                    Some(decode(K::from_index(i), r)?)
                }
                _ => return Err(SnapError::new("IdArena slot tag")),
            };
            slots.push(Slot { generation, value });
        }
        if live != len {
            return Err(SnapError::new("IdArena len"));
        }
        Ok(IdArena {
            slots,
            len,
            _marker: PhantomData,
        })
    }
}

impl<K: ArenaKey, V: Snap> Snap for IdArena<K, V> {
    /// Encodes the *full* slab — vacant slots included — because slot
    /// generations are behavioural state: a stale [`Handle`] must still
    /// read as stale after a checkpoint/restore round trip.
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            slots,
            len,
            _marker,
        } = self;
        w.len_prefix(*len);
        w.len_prefix(slots.len());
        for slot in slots {
            let Slot { generation, value } = slot;
            w.u32(*generation);
            value.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix()?;
        let n = r.len_prefix()?;
        let mut slots = Vec::with_capacity(n.min(r.remaining()));
        let mut live = 0usize;
        for _ in 0..n {
            let generation = r.u32()?;
            let value = Option::<V>::unsnap(r)?;
            if value.is_some() {
                live += 1;
            }
            slots.push(Slot { generation, value });
        }
        if live != len {
            return Err(SnapError::new("IdArena len"));
        }
        Ok(IdArena {
            slots,
            len,
            _marker: PhantomData,
        })
    }
}

impl<K: ArenaKey> Snap for IdSet<K> {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            bits,
            len,
            _marker,
        } = self;
        w.len_prefix(*len);
        bits.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix()?;
        let bits = Vec::<u64>::unsnap(r)?;
        let live: u32 = bits.iter().map(|w| w.count_ones()).sum();
        if usize::try_from(live).map_err(|_| SnapError::new("IdSet len"))? != len {
            return Err(SnapError::new("IdSet len"));
        }
        Ok(IdSet {
            bits,
            len,
            _marker: PhantomData,
        })
    }
}

impl<K: ArenaKey, V> std::ops::Index<K> for IdArena<K, V> {
    type Output = V;

    /// Indexed access to a live entry; a vacant slot is a caller logic
    /// error (the same contract as `BTreeMap`'s `Index`).
    fn index(&self, key: K) -> &V {
        // `Index` mirrors the std contract: a vacant key is a caller
        // logic error. fastg-lint: allow(no-panic-in-lib)
        self.get(key).expect("IdArena[]: vacant slot")
    }
}

impl<K: ArenaKey, V> std::ops::IndexMut<K> for IdArena<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        // `IndexMut` mirrors the std contract: a vacant key is a
        // caller logic error. fastg-lint: allow(no-panic-in-lib)
        self.get_mut(key).expect("IdArena[]: vacant slot")
    }
}

/// A dense set of small integer ids with ascending-order iteration and
/// O(1) insert/remove — the arena analogue of `BTreeSet<Id>` for dedup
/// sets on the event hot path.
#[derive(Debug, Clone, Default)]
pub struct IdSet<K> {
    bits: Vec<u64>,
    len: usize,
    _marker: PhantomData<K>,
}

impl<K: ArenaKey> IdSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        IdSet {
            bits: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key`; returns whether it was newly added.
    pub fn insert(&mut self, key: K) -> bool {
        let i = key.index();
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let fresh = self.bits[word] & bit == 0;
        self.bits[word] |= bit;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&mut self, key: K) -> bool {
        let i = key.index();
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        match self.bits.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, key: K) -> bool {
        let i = key.index();
        self.bits
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                // trailing_zeros is at most 64, losslessly usize.
                // fastg-lint: allow(no-lossy-cast)
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(K::from_index(wi * 64 + bit))
            })
        })
    }

    /// Drains the members in ascending order into a fresh `Vec`.
    pub fn drain_sorted(&mut self) -> Vec<K> {
        let out: Vec<K> = self.iter().collect();
        self.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a: IdArena<u32, &str> = IdArena::new();
        assert!(a.is_empty());
        assert_eq!(a.insert(3, "c"), None);
        assert_eq!(a.insert(1, "a"), None);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(3), Some(&"c"));
        assert_eq!(a.get(2), None);
        assert_eq!(a.insert(3, "c2"), Some("c"));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(3), Some("c2"));
        assert_eq!(a.remove(3), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_key_order() {
        let mut a: IdArena<u32, i32> = IdArena::new();
        for k in [9u32, 2, 7, 0, 4] {
            a.insert(k, i32::try_from(k).unwrap() * 10);
        }
        let keys: Vec<u32> = a.keys().collect();
        assert_eq!(keys, vec![0, 2, 4, 7, 9]);
        let pairs: Vec<(u32, i32)> = a.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(pairs[4], (9, 90));
        for v in a.values_mut() {
            *v += 1;
        }
        assert_eq!(a.get(2), Some(&21));
    }

    #[test]
    fn handles_detect_reinsertion() {
        let mut a: IdArena<u64, &str> = IdArena::new();
        a.insert(5, "first");
        let h = a.handle(5).unwrap();
        assert_eq!(a.get_by_handle(h), Some(&"first"));
        a.remove(5);
        assert_eq!(a.get_by_handle(h), None, "vacated slot");
        a.insert(5, "second");
        assert_eq!(a.get_by_handle(h), None, "stale generation must not alias");
        let h2 = a.handle(5).unwrap();
        assert_eq!(a.get_by_handle(h2), Some(&"second"));
    }

    #[test]
    fn id_set_orders_and_dedups() {
        let mut s: IdSet<u32> = IdSet::new();
        assert!(s.insert(70));
        assert!(s.insert(3));
        assert!(!s.insert(70), "duplicate insert");
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
        let drained = s.drain_sorted();
        assert_eq!(drained, vec![3, 70]);
        assert!(s.is_empty());
        assert!(!s.remove(3));
        assert!(s.insert(3));
        assert!(s.remove(3));
    }

    #[test]
    fn arena_debug_is_readable() {
        let mut a: IdArena<u32, u8> = IdArena::new();
        a.insert(1, 7);
        assert_eq!(format!("{a:?}"), "{1: 7}");
    }
}
