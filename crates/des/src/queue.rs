//! The timed event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// An entry in the queue: ordered by time, then by insertion sequence so
/// same-instant events pop in FIFO order (determinism).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A handle to a cancellable entry, returned by
/// [`EventQueue::schedule_cancellable`]. The token is generation-stamped:
/// it wraps the entry's unique insertion sequence number, so a stale token
/// (from an entry that already fired) can never alias a newer one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CancelToken(u64);

/// A priority queue of `(SimTime, E)` pairs with deterministic FIFO
/// tie-breaking for events scheduled at the same instant.
///
/// Entries scheduled through [`Self::schedule_cancellable`] can later be
/// revoked with [`Self::cancel`]; dead entries are skipped by [`Self::pop`]
/// and never surface through [`Self::peek_time`] (the queue eagerly purges
/// a cancelled head so the reported horizon is always a live event).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: BTreeSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: BTreeSet::new(),
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire at absolute time `at` and returns a token
    /// that can later revoke it via [`Self::cancel`]. The entry otherwise
    /// behaves exactly like one from [`Self::schedule`] (same FIFO
    /// tie-breaking, same sequence space).
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> CancelToken {
        let seq = self.next_seq;
        self.schedule(at, event);
        CancelToken(seq)
    }

    /// Revokes the entry behind `token`. Returns `true` if the entry was
    /// still pending and is now dead, `false` if it had already fired or
    /// been cancelled. Must only be called with tokens whose entry has not
    /// been popped (the caller clears its token when the event fires);
    /// cancelling an already-delivered token is detected and ignored.
    pub fn cancel(&mut self, token: CancelToken) -> bool {
        // Tokens for entries that already popped have seq < next_seq too, so
        // membership in the heap is what decides. We cannot look inside the
        // heap cheaply; instead rely on the caller contract and keep the
        // cancelled set consistent by purging on pop. A double-cancel is
        // caught by the set insert.
        if token.0 >= self.next_seq || !self.cancelled.insert(token.0) {
            return false;
        }
        // Eagerly drop a dead head so `peek_time` never reports a cancelled
        // entry's timestamp (which would make drivers overrun deadlines).
        self.purge_dead_head();
        true
    }

    /// Schedules a batch of `(time, event)` pairs, reserving exact heap
    /// capacity up front (the iterator must be [`ExactSizeIterator`]) so a
    /// multi-kernel burst pays one allocation check instead of one per
    /// push. Sequence numbers are assigned in iteration order, so
    /// same-instant batch entries pop FIFO exactly as individual
    /// [`Self::schedule`] calls would.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
        I::IntoIter: ExactSizeIterator,
    {
        let iter = events.into_iter();
        self.heap.reserve(iter.len());
        for (at, event) in iter {
            self.schedule(at, event);
        }
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule(now + delay, event);
    }

    /// Removes and returns the earliest live event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(e) = self.heap.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            // An entry cancelled while buried in the heap may have risen
            // to the head just now; keep the head-is-live invariant that
            // `peek_time` relies on.
            self.purge_dead_head();
            return Some((e.time, e.event));
        }
        None
    }

    /// Removes and returns the earliest live event if its timestamp is at
    /// or before `deadline` (events at exactly `deadline` are delivered).
    /// A single heap operation replaces the peek-then-pop dance drivers
    /// would otherwise do.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the earliest live pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        debug_assert!(
            self.heap
                .peek()
                .map_or(true, |e| !self.cancelled.contains(&e.seq)),
            "queue head must never be a cancelled entry"
        );
        self.heap.peek().map(|e| e.time)
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }

    /// Pops cancelled entries off the head so the next live event (or
    /// nothing) is on top.
    fn purge_dead_head(&mut self) {
        while let Some(e) = self.heap.peek() {
            if !self.cancelled.contains(&e.seq) {
                break;
            }
            let seq = e.seq;
            self.heap.pop();
            self.cancelled.remove(&seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_micros(100), SimTime::from_micros(50), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(150)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let events = [
            (SimTime::from_micros(30), "c"),
            (SimTime::from_micros(10), "a"),
            (SimTime::from_micros(10), "b"),
            (SimTime::from_micros(20), "x"),
        ];
        for &(t, e) in &events {
            a.schedule(t, e);
        }
        b.schedule_batch(events.iter().copied());
        for _ in 0..events.len() {
            assert_eq!(a.pop(), b.pop());
        }
        assert_eq!(a.pop(), None);
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn cancelled_entry_is_skipped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "live");
        let tok = q.schedule_cancellable(SimTime::from_micros(20), "dead");
        q.schedule(SimTime::from_micros(30), "later");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "live")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelling_head_updates_peek_time() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(SimTime::from_micros(10), "head");
        q.schedule(SimTime::from_micros(40), "next");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        assert!(q.cancel(tok));
        // The dead head must not pin the horizon at t=10.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(40)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), "x");
        let tok = q.schedule_cancellable(SimTime::from_micros(20), "dead");
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_respects_deadline_inclusively() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        q.schedule(SimTime::from_micros(30), "c");
        assert_eq!(
            q.pop_before(SimTime::from_micros(20)),
            Some((SimTime::from_micros(10), "a"))
        );
        // Exactly at the deadline: delivered.
        assert_eq!(
            q.pop_before(SimTime::from_micros(20)),
            Some((SimTime::from_micros(20), "b"))
        );
        // Strictly after: held back.
        assert_eq!(q.pop_before(SimTime::from_micros(20)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(SimTime::from_micros(10), "dead");
        q.schedule(SimTime::from_micros(15), "live");
        q.cancel(tok);
        assert_eq!(
            q.pop_before(SimTime::from_micros(20)),
            Some((SimTime::from_micros(15), "live"))
        );
    }
}
