//! The timed event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then by insertion sequence so
/// same-instant events pop in FIFO order (determinism).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs with deterministic FIFO
/// tie-breaking for events scheduled at the same instant.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule(now + delay, event);
    }

    /// Schedules a batch of `(time, event)` pairs, reserving heap
    /// capacity once up front so a multi-kernel burst pays one
    /// allocation check instead of one per push. Sequence numbers are
    /// assigned in iteration order, so same-instant batch entries pop
    /// FIFO exactly as individual [`Self::schedule`] calls would.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let iter = events.into_iter();
        let (lower, _) = iter.size_hint();
        self.heap.reserve(lower);
        for (at, event) in iter {
            self.schedule(at, event);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_micros(100), SimTime::from_micros(50), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(150)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let events = [
            (SimTime::from_micros(30), "c"),
            (SimTime::from_micros(10), "a"),
            (SimTime::from_micros(10), "b"),
            (SimTime::from_micros(20), "x"),
        ];
        for &(t, e) in &events {
            a.schedule(t, e);
        }
        b.schedule_batch(events.iter().copied());
        for _ in 0..events.len() {
            assert_eq!(a.pop(), b.pop());
        }
        assert_eq!(a.pop(), None);
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }
}
