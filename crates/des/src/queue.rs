//! The timed event queue.

use crate::sanitizer;
use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// How the queue orders entries scheduled for the same instant *within one
/// semantic class* (see [`EventQueue::set_classifier`]). Cross-class order
/// is always fixed by the class rank; the tie-break policy only permutes
/// entries the simulation claims are order-insensitive. Running the same
/// scenario under several policies and diffing report digests is the
/// repo's determinism-race detector (`race_detector` bench bin): any
/// digest divergence means a handler silently depended on same-instant
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Insertion order (the default, and the historical behaviour).
    Fifo,
    /// Reverse insertion order — the cheapest adversarial permutation.
    Lifo,
    /// A deterministic pseudo-random permutation keyed by the given seed
    /// (mix of seed and insertion sequence — never wall-clock).
    SeededShuffle(u64),
}

impl TieBreak {
    /// The heap ordering key for insertion sequence `seq` under this
    /// policy. Lower keys pop first among same-time, same-class entries.
    fn key(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Lifo => u64::MAX - seq,
            TieBreak::SeededShuffle(seed) => splitmix64(seed ^ seq),
        }
    }

    /// Parses an environment override: `fifo`, `lifo`, `shuffle` (seed 1)
    /// or `shuffle:<seed>`. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<TieBreak> {
        match s {
            "fifo" => Some(TieBreak::Fifo),
            "lifo" => Some(TieBreak::Lifo),
            "shuffle" => Some(TieBreak::SeededShuffle(1)),
            _ => s
                .strip_prefix("shuffle:")
                .and_then(|n| n.parse().ok())
                .map(TieBreak::SeededShuffle),
        }
    }

    /// Folds the scenario seed into a shuffle so the permutation is drawn
    /// from the run's own randomness (`Fifo`/`Lifo` are unaffected).
    #[must_use]
    pub fn derive(self, scenario_seed: u64) -> TieBreak {
        match self {
            TieBreak::SeededShuffle(s) => {
                TieBreak::SeededShuffle(splitmix64(s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ scenario_seed))
            }
            other => other,
        }
    }
}

impl Snap for TieBreak {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            TieBreak::Fifo => w.u8(0),
            TieBreak::Lifo => w.u8(1),
            TieBreak::SeededShuffle(seed) => {
                w.u8(2);
                w.u64(*seed);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(TieBreak::Fifo),
            1 => Ok(TieBreak::Lifo),
            2 => Ok(TieBreak::SeededShuffle(r.u64()?)),
            _ => Err(SnapError::new("TieBreak tag")),
        }
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An entry in the queue: ordered by time, then semantic class, then the
/// tie-break key (insertion sequence under FIFO), with the raw sequence as
/// the final total-order anchor so shuffle-key collisions stay
/// deterministic.
struct Entry<E> {
    time: SimTime,
    class: u8,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A handle to a cancellable entry, returned by
/// [`EventQueue::schedule_cancellable`]. The token is generation-stamped:
/// it wraps the entry's unique insertion sequence number, so a stale token
/// (from an entry that already fired) can never alias a newer one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CancelToken(u64);

impl Snap for CancelToken {
    fn snap(&self, w: &mut SnapWriter) {
        let CancelToken(seq) = self;
        w.u64(*seq);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CancelToken(r.u64()?))
    }
}

/// A priority queue of `(SimTime, E)` pairs with deterministic FIFO
/// tie-breaking for events scheduled at the same instant.
///
/// Entries scheduled through [`Self::schedule_cancellable`] can later be
/// revoked with [`Self::cancel`]; dead entries are skipped by [`Self::pop`]
/// and never surface through [`Self::peek_time`] (the queue eagerly purges
/// a cancelled head so the reported horizon is always a live event).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: BTreeSet<u64>,
    tiebreak: TieBreak,
    classify: fn(&E) -> u8,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with FIFO tie-breaking and a single event
    /// class.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: BTreeSet::new(),
            tiebreak: TieBreak::Fifo,
            classify: |_| 0,
        }
    }

    /// Creates an empty queue with heap capacity for `capacity` pending
    /// entries pre-reserved. Fleet-scale scenarios size this from their
    /// expected concurrent event count so the heap never regrows mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            ..Self::new()
        }
    }

    /// Reserves heap capacity for at least `additional` more pending
    /// entries.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// The heap's current allocated capacity (pending + free slots).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Sets the same-instant, same-class ordering policy. Must be called
    /// before any events are scheduled (already-pushed entries keep the
    /// keys they were assigned at insertion).
    pub fn set_tiebreak(&mut self, tiebreak: TieBreak) {
        debug_assert!(
            self.heap.is_empty(),
            "tie-break policy must be set before scheduling"
        );
        self.tiebreak = tiebreak;
    }

    /// The active same-instant ordering policy.
    pub fn tiebreak(&self) -> TieBreak {
        self.tiebreak
    }

    /// Sets the semantic event classifier. Same-instant entries always pop
    /// in ascending class order regardless of the tie-break policy; the
    /// policy only permutes within a class. Simulations use this to pin
    /// the cross-kind orderings that are part of their semantics (e.g.
    /// "metric samples observe state before same-instant completions land")
    /// while leaving genuinely commutative orderings free for the race
    /// detector to perturb. Must be called before any events are scheduled.
    pub fn set_classifier(&mut self, classify: fn(&E) -> u8) {
        debug_assert!(
            self.heap.is_empty(),
            "classifier must be set before scheduling"
        );
        self.classify = classify;
    }

    /// The single insertion point: assigns the next sequence number and
    /// the tie-break key, pushes the entry, and returns the sequence. All
    /// scheduling paths (`schedule`, `schedule_batch`,
    /// `schedule_cancellable`) funnel through here so the tie-break policy
    /// lives in exactly one place.
    fn push_entry(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            class: (self.classify)(&event),
            key: self.tiebreak.key(seq),
            seq,
            event,
        });
        seq
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.push_entry(at, event);
    }

    /// Schedules `event` to fire at absolute time `at` and returns a token
    /// that can later revoke it via [`Self::cancel`]. The entry otherwise
    /// behaves exactly like one from [`Self::schedule`] (same tie-break
    /// policy, same sequence space).
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> CancelToken {
        CancelToken(self.push_entry(at, event))
    }

    /// Revokes the entry behind `token`. Returns `true` if the entry was
    /// still pending and is now dead, `false` if it had already fired or
    /// been cancelled. Must only be called with tokens whose entry has not
    /// been popped (the caller clears its token when the event fires);
    /// cancelling an already-delivered token is detected and ignored.
    pub fn cancel(&mut self, token: CancelToken) -> bool {
        // Tokens for entries that already popped have seq < next_seq too, so
        // membership in the heap is what decides. We cannot look inside the
        // heap cheaply; instead rely on the caller contract and keep the
        // cancelled set consistent by purging on pop. A double-cancel is
        // caught by the set insert.
        if sanitizer::active() {
            self.sanitize_cancel(token);
        }
        if token.0 >= self.next_seq || !self.cancelled.insert(token.0) {
            return false;
        }
        // Eagerly drop a dead head so `peek_time` never reports a cancelled
        // entry's timestamp (which would make drivers overrun deadlines).
        self.purge_dead_head();
        true
    }

    /// Shadow-check for [`Self::cancel`]: a token must come from this
    /// queue's own sequence space (generation validity) and, if it is not
    /// a detected double-cancel, its entry must still be live in the heap.
    /// O(n) heap scan — only ever runs under `FASTG_SANITIZE=1`.
    #[cfg(debug_assertions)]
    fn sanitize_cancel(&self, token: CancelToken) {
        sanitizer::check(token.0 < self.next_seq, "cancel-token-generation", || {
            format!(
                "token seq {} is from the future (next_seq {}): token from another queue?",
                token.0, self.next_seq
            )
        });
        if token.0 < self.next_seq && !self.cancelled.contains(&token.0) {
            sanitizer::check(
                self.heap.iter().any(|e| e.seq == token.0),
                "cancel-token-generation",
                || {
                    format!(
                        "token seq {} names an entry that already fired — stale token",
                        token.0
                    )
                },
            );
        }
    }

    /// Release builds compile the cancel shadow-check out entirely.
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn sanitize_cancel(&self, _token: CancelToken) {}

    /// Schedules a batch of `(time, event)` pairs, reserving exact heap
    /// capacity up front (the iterator must be [`ExactSizeIterator`]) so a
    /// multi-kernel burst pays one allocation check instead of one per
    /// push. Sequence numbers are assigned in iteration order, so
    /// same-instant batch entries pop in the same order as individual
    /// [`Self::schedule`] calls would under the active tie-break policy.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
        I::IntoIter: ExactSizeIterator,
    {
        let iter = events.into_iter();
        self.heap.reserve(iter.len());
        for (at, event) in iter {
            self.push_entry(at, event);
        }
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule(now + delay, event);
    }

    /// Removes and returns the earliest live event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(e) = self.heap.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            // An entry cancelled while buried in the heap may have risen
            // to the head just now; keep the head-is-live invariant that
            // `peek_time` relies on.
            self.purge_dead_head();
            return Some((e.time, e.event));
        }
        None
    }

    /// Removes and returns the earliest live event if its timestamp is at
    /// or before `deadline` (events at exactly `deadline` are delivered).
    /// A single heap operation replaces the peek-then-pop dance drivers
    /// would otherwise do.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the earliest live pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        debug_assert!(
            self.heap
                .peek()
                .map_or(true, |e| !self.cancelled.contains(&e.seq)),
            "queue head must never be a cancelled entry"
        );
        self.heap.peek().map(|e| e.time)
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }

    /// Serializes the queue's full ordering state: tie-break policy, the
    /// sequence counter, and every *live* entry with its stored
    /// time/class/key/seq verbatim (cancelled entries are dropped — their
    /// tokens are dead and nothing restores them). Entries are written in
    /// canonical pop order so the encoding is independent of the heap's
    /// internal layout. The classifier is a function pointer and is not
    /// encoded; [`Self::restore_state`] keeps whichever classifier the
    /// restored queue was constructed with.
    pub fn snap_state(&self, w: &mut SnapWriter)
    where
        E: Snap,
    {
        self.tiebreak.snap(w);
        w.u64(self.next_seq);
        let mut live: Vec<&Entry<E>> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .collect();
        live.sort_by(|a, b| {
            (a.time, a.class, a.key, a.seq).cmp(&(b.time, b.class, b.key, b.seq))
        });
        w.len_prefix(live.len());
        for e in live {
            let Entry {
                time,
                class,
                key,
                seq,
                event,
            } = e;
            time.snap(w);
            class.snap(w);
            key.snap(w);
            seq.snap(w);
            event.snap(w);
        }
    }

    /// Restores state captured by [`Self::snap_state`], replacing all
    /// pending entries. Stored tie-break keys are reused verbatim (not
    /// recomputed), so the restored queue pops in exactly the order the
    /// original would have; the sequence counter resumes where it left
    /// off, so future scheduling continues the same sequence space and
    /// outstanding [`CancelToken`]s stay valid.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>
    where
        E: Snap,
    {
        self.tiebreak = TieBreak::unsnap(r)?;
        self.next_seq = r.u64()?;
        self.heap.clear();
        self.cancelled.clear();
        let n = r.len_prefix()?;
        self.heap.reserve(n.min(r.remaining()));
        for _ in 0..n {
            let time = SimTime::unsnap(r)?;
            let class = r.u8()?;
            let key = r.u64()?;
            let seq = r.u64()?;
            if seq >= self.next_seq {
                return Err(SnapError::new("queue entry seq"));
            }
            let event = E::unsnap(r)?;
            self.heap.push(Entry {
                time,
                class,
                key,
                seq,
                event,
            });
        }
        Ok(())
    }

    /// Pops cancelled entries off the head so the next live event (or
    /// nothing) is on top.
    fn purge_dead_head(&mut self) {
        while let Some(e) = self.heap.peek() {
            if !self.cancelled.contains(&e.seq) {
                break;
            }
            let seq = e.seq;
            self.heap.pop();
            self.cancelled.remove(&seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_micros(100), SimTime::from_micros(50), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(150)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let events = [
            (SimTime::from_micros(30), "c"),
            (SimTime::from_micros(10), "a"),
            (SimTime::from_micros(10), "b"),
            (SimTime::from_micros(20), "x"),
        ];
        for &(t, e) in &events {
            a.schedule(t, e);
        }
        b.schedule_batch(events.iter().copied());
        for _ in 0..events.len() {
            assert_eq!(a.pop(), b.pop());
        }
        assert_eq!(a.pop(), None);
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn cancelled_entry_is_skipped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "live");
        let tok = q.schedule_cancellable(SimTime::from_micros(20), "dead");
        q.schedule(SimTime::from_micros(30), "later");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "live")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelling_head_updates_peek_time() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(SimTime::from_micros(10), "head");
        q.schedule(SimTime::from_micros(40), "next");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        assert!(q.cancel(tok));
        // The dead head must not pin the horizon at t=10.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(40)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), "x");
        let tok = q.schedule_cancellable(SimTime::from_micros(20), "dead");
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_respects_deadline_inclusively() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        q.schedule(SimTime::from_micros(30), "c");
        assert_eq!(
            q.pop_before(SimTime::from_micros(20)),
            Some((SimTime::from_micros(10), "a"))
        );
        // Exactly at the deadline: delivered.
        assert_eq!(
            q.pop_before(SimTime::from_micros(20)),
            Some((SimTime::from_micros(20), "b"))
        );
        // Strictly after: held back.
        assert_eq!(q.pop_before(SimTime::from_micros(20)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn lifo_reverses_same_instant_order() {
        let mut q = EventQueue::new();
        q.set_tiebreak(TieBreak::Lifo);
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        // Later time still pops later regardless of policy.
        q.schedule(SimTime::from_micros(6), 99);
        for i in (0..10).rev() {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), Some((SimTime::from_micros(6), 99)));
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let drain = |seed: u64| {
            let mut q = EventQueue::new();
            q.set_tiebreak(TieBreak::SeededShuffle(seed));
            let t = SimTime::from_micros(5);
            for i in 0..32 {
                q.schedule(t, i);
            }
            let mut order = Vec::new();
            while let Some((_, i)) = q.pop() {
                order.push(i);
            }
            order
        };
        let a = drain(7);
        assert_eq!(a, drain(7), "same seed must replay the same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "must be a permutation");
        assert_ne!(a, drain(8), "different seeds should permute differently");
        assert_ne!(a, (0..32).collect::<Vec<_>>(), "should not be identity");
    }

    #[test]
    fn class_order_beats_tiebreak_policy() {
        // Odd events are class 0, even events class 1: all odds pop first
        // at a shared instant, even under LIFO within each class.
        let mut q = EventQueue::new();
        q.set_classifier(|e: &i32| if e % 2 == 0 { 1 } else { 0 });
        q.set_tiebreak(TieBreak::Lifo);
        let t = SimTime::from_micros(5);
        for i in 0..6 {
            q.schedule(t, i);
        }
        let mut order = Vec::new();
        while let Some((_, i)) = q.pop() {
            order.push(i);
        }
        assert_eq!(order, vec![5, 3, 1, 4, 2, 0]);
    }

    #[test]
    fn tiebreak_parse_round_trips() {
        assert_eq!(TieBreak::parse("fifo"), Some(TieBreak::Fifo));
        assert_eq!(TieBreak::parse("lifo"), Some(TieBreak::Lifo));
        assert_eq!(TieBreak::parse("shuffle"), Some(TieBreak::SeededShuffle(1)));
        assert_eq!(
            TieBreak::parse("shuffle:42"),
            Some(TieBreak::SeededShuffle(42))
        );
        assert_eq!(TieBreak::parse("random"), None);
        assert_eq!(TieBreak::parse("shuffle:x"), None);
    }

    #[test]
    fn derive_mixes_scenario_seed_into_shuffle_only() {
        assert_eq!(TieBreak::Fifo.derive(9), TieBreak::Fifo);
        assert_eq!(TieBreak::Lifo.derive(9), TieBreak::Lifo);
        let a = TieBreak::SeededShuffle(1).derive(9);
        let b = TieBreak::SeededShuffle(1).derive(10);
        assert_ne!(a, b, "scenario seed must perturb the permutation");
        assert_eq!(a, TieBreak::SeededShuffle(1).derive(9), "derive is pure");
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order_and_seq_space() {
        use crate::snap::{SnapReader, SnapWriter};
        for tiebreak in [
            TieBreak::Fifo,
            TieBreak::Lifo,
            TieBreak::SeededShuffle(7),
        ] {
            let mut q = EventQueue::new();
            q.set_tiebreak(tiebreak);
            q.set_classifier(|e: &u64| u8::try_from(e % 3).unwrap());
            let t = SimTime::from_micros(5);
            for i in 0..20u64 {
                q.schedule(t, i);
            }
            let dead = q.schedule_cancellable(SimTime::from_micros(9), 99);
            q.schedule(SimTime::from_micros(12), 100);
            assert!(q.cancel(dead));
            // Pop a few so the heap layout diverges from insertion order.
            let mut popped = Vec::new();
            for _ in 0..5 {
                popped.push(q.pop().unwrap());
            }

            let mut w = SnapWriter::new();
            q.snap_state(&mut w);
            let bytes = w.finish();
            let mut restored: EventQueue<u64> = EventQueue::new();
            restored.set_classifier(|e: &u64| u8::try_from(e % 3).unwrap());
            restored
                .restore_state(&mut SnapReader::new(&bytes))
                .expect("restore");

            assert_eq!(restored.len(), q.len());
            assert_eq!(restored.tiebreak(), q.tiebreak());
            // Future scheduling lands in the same sequence space: schedule
            // one more same-instant event into both and drain.
            q.schedule(t, 7777);
            restored.schedule(t, 7777);
            let mut a = Vec::new();
            let mut b = Vec::new();
            while let Some(e) = q.pop() {
                a.push(e);
            }
            while let Some(e) = restored.pop() {
                b.push(e);
            }
            assert_eq!(a, b, "tiebreak {tiebreak:?} diverged after restore");
        }
    }

    #[test]
    fn snapshot_rejects_future_seq() {
        use crate::snap::{Snap, SnapReader, SnapWriter};
        let mut w = SnapWriter::new();
        TieBreak::Fifo.snap(&mut w);
        w.u64(1); // next_seq = 1
        w.len_prefix(1);
        SimTime::ZERO.snap(&mut w);
        w.u8(0); // class
        w.u64(5); // key
        w.u64(5); // seq — from the future
        3u64.snap(&mut w); // event
        let bytes = w.finish();
        let mut q: EventQueue<u64> = EventQueue::new();
        assert!(q.restore_state(&mut SnapReader::new(&bytes)).is_err());
    }

    #[test]
    fn pop_before_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(SimTime::from_micros(10), "dead");
        q.schedule(SimTime::from_micros(15), "live");
        q.cancel(tok);
        assert_eq!(
            q.pop_before(SimTime::from_micros(20)),
            Some((SimTime::from_micros(15), "live"))
        );
    }
}
