//! Simulation timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in integer microseconds since the
/// start of the simulation.
///
/// Integer microseconds keep the engine fully deterministic (no
/// floating-point drift between platforms) while being fine-grained enough
/// to represent individual CUDA kernel waves (tens of microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a timestamp from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a timestamp from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a timestamp from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            // f64→u64 `as` saturates, and the negative case is handled above.
            // fastg-lint: allow(no-lossy-cast)
            SimTime((s * 1e6).round() as u64)
        }
    }

    /// This instant expressed in whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, or zero when `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Builds an instant from a microsecond count that arrives as a
    /// float (estimator means, histogram bucket bounds), rounding to the
    /// nearest microsecond. Negative inputs are a caller bug
    /// (debug-asserted) and clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative microsecond count");
        // f64→u64 `as` saturates, and the input is clamped non-negative.
        // fastg-lint: allow(no-lossy-cast)
        SimTime(us.max(0.0).round() as u64)
    }

    /// Scales a duration by a dimensionless factor, rounding to the nearest
    /// microsecond. Intended for durations (e.g. "80 % of the window").
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        debug_assert!(factor >= 0.0, "negative time scale");
        // f64→u64 `as` saturates, and the factor is asserted non-negative.
        // fastg-lint: allow(no-lossy-cast)
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert_eq!(SimTime::from_secs_f64(0.25), SimTime::from_millis(250));
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(a * 2, SimTime::from_millis(20));
        assert_eq!(a / 2, SimTime::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_sub(b), SimTime::from_millis(7));
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(SimTime::from_micros(10).scale(0.25), SimTime::from_micros(3));
        assert_eq!(SimTime::from_secs(1).scale(0.8), SimTime::from_millis(800));
        assert_eq!(SimTime::from_micros(0).scale(10.0), SimTime::ZERO);
    }

    #[test]
    fn min_max_ordering() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(a < b);
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_micros(1)), None);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_micros(2_500_000)), "2.500s");
    }
}
