//! The simulation driver.

use crate::queue::EventQueue;
use crate::sanitizer;
use crate::time::SimTime;

/// The state and event handler of a simulated system.
///
/// A `World` owns all mutable simulation state; the [`Simulation`] driver
/// owns the clock and the event queue and calls [`World::handle`] for each
/// event in timestamp order. Handlers may schedule further events through
/// the queue they are handed.
pub trait World {
    /// The event type delivered by the queue.
    type Event;

    /// Handles one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// The outcome of a single [`Simulation::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was delivered.
    Handled,
    /// The queue was empty; nothing happened.
    Idle,
}

/// Drives a [`World`] by delivering events in timestamp order.
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    handled: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            handled: 0,
        }
    }

    /// The current simulated time (the timestamp of the last delivered
    /// event, or zero before the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_handled(&self) -> u64 {
        self.handled
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to seed initial state).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Immutable access to the event queue (e.g. to snapshot its state).
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Mutable access to the event queue (e.g. to seed initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Simultaneous mutable access to world and queue, for drivers that
    /// invoke world methods which schedule events outside of `handle`.
    pub fn parts_mut(&mut self) -> (&mut W, &mut EventQueue<W::Event>, SimTime) {
        (&mut self.world, &mut self.queue, self.now)
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Restores the driver clock from a checkpoint: the current simulated
    /// time and the delivered-event counter. Event-queue state is restored
    /// separately through [`EventQueue::restore_state`].
    pub fn restore_clock(&mut self, now: SimTime, handled: u64) {
        self.now = now;
        self.handled = handled;
    }

    /// Delivers the next event, if any.
    ///
    /// An event stamped earlier than the current time means something
    /// scheduled into the past; time never moves backwards (the event is
    /// delivered at the current time instead), and debug builds assert.
    pub fn step(&mut self) -> StepOutcome {
        match self.queue.pop() {
            Some((t, ev)) => {
                self.deliver(t, ev);
                StepOutcome::Handled
            }
            None => StepOutcome::Idle,
        }
    }

    /// Advances the clock to `t` and hands `ev` to the world.
    fn deliver(&mut self, t: SimTime, ev: W::Event) {
        if sanitizer::active() {
            sanitizer::on_event(self.handled, t);
            sanitizer::check(t >= self.now, "monotone-dispatch", || {
                format!("event scheduled in the past: {t:?} < {:?}", self.now)
            });
        }
        debug_assert!(t >= self.now, "event scheduled in the past: {t:?} < {:?}", self.now);
        self.now = self.now.max(t);
        self.handled += 1;
        let now = self.now;
        self.world.handle(now, ev, &mut self.queue);
    }

    /// Runs until the queue is empty. The clock stops at the last event.
    pub fn run_until_idle(&mut self) {
        while self.step() == StepOutcome::Handled {}
    }

    /// Runs until the next pending event would be strictly after `deadline`
    /// (events at exactly `deadline` are delivered), or the queue empties.
    /// Finally advances the clock to `deadline` if it is ahead of the last
    /// event, so interval statistics can be closed at a known instant.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((t, ev)) = self.queue.pop_before(deadline) {
            self.deliver(t, ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until `predicate(world)` returns true (checked after each event)
    /// or the queue empties. Returns whether the predicate was satisfied.
    pub fn run_while<F: FnMut(&W) -> bool>(&mut self, mut keep_going: F) -> bool {
        loop {
            if !keep_going(&self.world) {
                return true;
            }
            if self.step() == StepOutcome::Idle {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ping {
        count: u32,
        limit: u32,
    }

    impl World for Ping {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.count += ev;
            if self.count < self.limit {
                queue.schedule_after(now, SimTime::from_micros(10), 1);
            }
        }
    }

    #[test]
    fn run_until_idle_drains() {
        let mut sim = Simulation::new(Ping { count: 0, limit: 5 });
        sim.queue_mut().schedule(SimTime::ZERO, 1);
        sim.run_until_idle();
        assert_eq!(sim.world().count, 5);
        assert_eq!(sim.now(), SimTime::from_micros(40));
        assert_eq!(sim.events_handled(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new(Ping { count: 0, limit: 100 });
        sim.queue_mut().schedule(SimTime::ZERO, 1);
        sim.run_until(SimTime::from_micros(25));
        // Events at 0, 10, 20 delivered; 30 pending.
        assert_eq!(sim.world().count, 3);
        assert_eq!(sim.now(), SimTime::from_micros(25));
        sim.run_until(SimTime::from_micros(30));
        assert_eq!(sim.world().count, 4);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Simulation::new(Ping { count: 0, limit: 100 });
        sim.queue_mut().schedule(SimTime::ZERO, 1);
        let hit = sim.run_while(|w| w.count < 7);
        assert!(hit);
        assert_eq!(sim.world().count, 7);
    }

    #[test]
    fn run_while_reports_exhaustion() {
        let mut sim = Simulation::new(Ping { count: 0, limit: 3 });
        sim.queue_mut().schedule(SimTime::ZERO, 1);
        let hit = sim.run_while(|w| w.count < 10);
        assert!(!hit);
        assert_eq!(sim.world().count, 3);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_event_panics() {
        struct Bad;
        impl World for Bad {
            type Event = bool;
            fn handle(&mut self, _now: SimTime, first: bool, queue: &mut EventQueue<bool>) {
                if first {
                    queue.schedule(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.queue_mut().schedule(SimTime::from_micros(10), true);
        sim.run_until_idle();
    }
}
