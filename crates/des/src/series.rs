//! Interval statistics: time-weighted integrators and sampled series.

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// Integrates a piecewise-constant signal over simulated time.
///
/// Used for SM occupancy: the number of busy SMs is piecewise constant
/// between events; `TimeWeighted` accumulates `value × dt` so the mean over
/// any window is `integral / elapsed`.
///
/// The running integral is kept in `value × microseconds` units and only
/// converted to seconds at read time. For integer-valued signals (SM
/// counts) every accumulated term is then an exact integer in `f64`
/// (products stay far below 2⁵³), which makes the sum associative — the
/// property cluster fast-forward relies on to credit `k × cycle_delta` in
/// closed form and land bit-identical to `k` event-driven accumulations.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    /// Σ value × dt, with dt in microseconds.
    integral_us: f64,
    started: SimTime,
}

impl TimeWeighted {
    /// Starts integrating `initial` at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            integral_us: 0.0,
            started: start,
        }
    }

    /// Updates the signal to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.accumulate(now);
        self.value = value;
    }

    /// Adds `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        self.accumulate(now);
        self.value += delta;
    }

    /// The current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The integral of the signal from the start through `now`, in
    /// `value × seconds` units.
    pub fn integral_at(&self, now: SimTime) -> f64 {
        self.raw_integral_at(now) / 1e6
    }

    /// The raw running integral through `now` in `value × microseconds`
    /// units — exact (no division) for integer-valued signals. Cluster
    /// fast-forward probes this to measure one steady cycle's delta and
    /// later credits `k × delta` through [`Self::credit_raw`].
    pub fn raw_integral_at(&self, now: SimTime) -> f64 {
        // u64→f64: dt is far below 2^53 µs (≈ 285 simulated years).
        // fastg-lint: allow(no-lossy-cast)
        self.integral_us
            + self.value * now.saturating_sub(self.last_change).as_micros() as f64
    }

    /// The time-weighted mean of the signal from the start through `now`.
    /// Returns zero for an empty interval.
    pub fn mean_at(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_sub(self.started).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.integral_at(now) / elapsed
        }
    }

    /// Resets the integration window to start at `now`, keeping the current
    /// instantaneous value.
    pub fn reset(&mut self, now: SimTime) {
        self.accumulate(now);
        self.integral_us = 0.0;
        self.started = now;
        self.last_change = now;
    }

    fn accumulate(&mut self, now: SimTime) {
        // u64→f64: dt is far below 2^53 µs (≈ 285 simulated years).
        // fastg-lint: allow(no-lossy-cast)
        let dt = now.saturating_sub(self.last_change).as_micros() as f64;
        self.integral_us += self.value * dt;
        self.last_change = self.last_change.max(now);
    }

    /// Credits `amount` of pre-computed signal area (in `value × µs`
    /// units, i.e. [`Self::raw_integral_at`] units) directly into the
    /// integral without advancing the clock. Used by cluster fast-forward
    /// to replay k analytically-coalesced cycles in closed form: the
    /// caller measured one real cycle's raw-integral delta and adds
    /// `k × delta` here. For integer-valued signals every term is an exact
    /// integer in `f64`, so this is bit-identical to k event-driven
    /// accumulations. Only valid while the live signal sits at the level
    /// it held at each credited cycle boundary — cluster FF guarantees
    /// this by entering/exiting steady state only at completion instants
    /// where the signal is zero.
    pub fn credit_raw(&mut self, amount: f64) {
        self.integral_us += amount;
    }
}

impl Snap for TimeWeighted {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            value,
            last_change,
            integral_us,
            started,
        } = self;
        value.snap(w);
        last_change.snap(w);
        integral_us.snap(w);
        started.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimeWeighted {
            value: f64::unsnap(r)?,
            last_change: SimTime::unsnap(r)?,
            integral_us: f64::unsnap(r)?,
            started: SimTime::unsnap(r)?,
        })
    }
}

/// Tracks intervals during which a resource is busy (value > 0).
///
/// This is the nvidia-smi notion of "GPU utilization": the fraction of
/// wall-clock time during which at least one kernel was resident, regardless
/// of how many SMs it used.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    active: u32,
    busy_since: Option<SimTime>,
    busy_total: SimTime,
    started: SimTime,
}

impl BusyTracker {
    /// Starts tracking at `start`, initially idle.
    pub fn new(start: SimTime) -> Self {
        BusyTracker {
            active: 0,
            busy_since: None,
            busy_total: SimTime::ZERO,
            started: start,
        }
    }

    /// Marks one more concurrent activity beginning at `now`.
    pub fn begin(&mut self, now: SimTime) {
        if self.active == 0 {
            self.busy_since = Some(now);
        }
        self.active += 1;
    }

    /// Marks one concurrent activity ending at `now`. An unmatched `end`
    /// (no activity in progress) is ignored so a stray completion event
    /// cannot corrupt the busy accounting.
    pub fn end(&mut self, now: SimTime) {
        debug_assert!(self.active > 0, "BusyTracker::end with no active work");
        if self.active == 0 {
            return;
        }
        self.active -= 1;
        if self.active == 0 {
            if let Some(since) = self.busy_since.take() {
                self.busy_total += now.saturating_sub(since);
            } else {
                debug_assert!(false, "busy interval open");
            }
        }
    }

    /// Number of concurrently tracked activities.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Total busy time accumulated through `now`.
    pub fn busy_at(&self, now: SimTime) -> SimTime {
        match self.busy_since {
            Some(since) => self.busy_total + now.saturating_sub(since),
            None => self.busy_total,
        }
    }

    /// Busy fraction (0..=1) of the window from the start through `now`.
    pub fn utilization_at(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_sub(self.started).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.busy_at(now).as_secs_f64() / elapsed
        }
    }

    /// Restarts the measurement window at `now`, preserving in-progress
    /// activity.
    pub fn reset(&mut self, now: SimTime) {
        self.busy_total = SimTime::ZERO;
        self.started = now;
        if self.active > 0 {
            self.busy_since = Some(now);
        }
    }

    /// Credits `busy` of pre-computed busy time directly into the total,
    /// without opening an interval. Used by cluster fast-forward to replay
    /// k coalesced steady cycles (`k × cycle_busy`) in closed form; only
    /// valid while idle (`active == 0`), which the caller guarantees by
    /// crediting at completion instants.
    pub fn credit(&mut self, busy: SimTime) {
        debug_assert!(self.active == 0, "BusyTracker::credit while busy");
        self.busy_total += busy;
    }
}

impl Snap for BusyTracker {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            active,
            busy_since,
            busy_total,
            started,
        } = self;
        active.snap(w);
        busy_since.snap(w);
        busy_total.snap(w);
        started.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(BusyTracker {
            active: u32::unsnap(r)?,
            busy_since: Option::<SimTime>::unsnap(r)?,
            busy_total: SimTime::unsnap(r)?,
            started: SimTime::unsnap(r)?,
        })
    }
}

/// A recorded series of `(time, value)` samples, e.g. the per-second GPU
/// utilization exported by DCGM.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample. Samples must be appended in non-decreasing time
    /// order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().map_or(true, |&(t, _)| t <= at),
            "TimeSeries samples must be time-ordered"
        );
        self.points.push((at, value));
    }

    /// All samples, in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Arithmetic mean of the sample values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum sample value, or zero when empty.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean of the samples falling in `[from, to)`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

impl Snap for TimeSeries {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { points } = self;
        points.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimeSeries {
            points: Vec::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(1), 10.0); // 0 for 1s
        tw.set(SimTime::from_secs(3), 0.0); // 10 for 2s
        let mean = tw.mean_at(SimTime::from_secs(4)); // 0 for 1s more
        assert!((mean - 5.0).abs() < 1e-9, "mean = {mean}");
        assert!((tw.integral_at(SimTime::from_secs(4)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_add_and_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(2), 3.0); // value 1 for 2s -> integral 2
        assert_eq!(tw.current(), 4.0);
        tw.reset(SimTime::from_secs(2));
        assert_eq!(tw.integral_at(SimTime::from_secs(2)), 0.0);
        // After reset, value 4 for 1s.
        assert!((tw.mean_at(SimTime::from_secs(3)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn busy_tracker_overlapping_intervals() {
        let mut b = BusyTracker::new(SimTime::ZERO);
        b.begin(SimTime::from_secs(1));
        b.begin(SimTime::from_secs(2)); // overlap should not double count
        b.end(SimTime::from_secs(3));
        b.end(SimTime::from_secs(4));
        // Busy from 1..4 = 3s over a 5s window.
        assert!((b.utilization_at(SimTime::from_secs(5)) - 0.6).abs() < 1e-9);
        assert_eq!(b.active(), 0);
    }

    #[test]
    fn busy_tracker_open_interval_counts() {
        let mut b = BusyTracker::new(SimTime::ZERO);
        b.begin(SimTime::from_secs(1));
        assert_eq!(b.busy_at(SimTime::from_secs(3)), SimTime::from_secs(2));
        assert!((b.utilization_at(SimTime::from_secs(4)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn busy_tracker_reset_preserves_active() {
        let mut b = BusyTracker::new(SimTime::ZERO);
        b.begin(SimTime::from_secs(1));
        b.reset(SimTime::from_secs(2));
        // Still busy after reset; busy 2..3 over window 2..4 = 50 %.
        b.end(SimTime::from_secs(3));
        assert!((b.utilization_at(SimTime::from_secs(4)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no active work")]
    fn busy_tracker_unbalanced_end_panics() {
        let mut b = BusyTracker::new(SimTime::ZERO);
        b.end(SimTime::from_secs(1));
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(1), 3.0);
        s.push(SimTime::from_secs(2), 5.0);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-9);
        assert_eq!(s.max(), 5.0);
        assert!((s.mean_between(SimTime::from_secs(1), SimTime::from_secs(3)) - 4.0).abs() < 1e-9);
        assert_eq!(s.mean_between(SimTime::from_secs(10), SimTime::from_secs(20)), 0.0);
    }
}
