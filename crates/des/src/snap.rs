//! Deterministic binary snapshot codec.
//!
//! The checkpoint/fork machinery (`platform::checkpoint` in the core
//! crate) serializes the *entire* engine state — event queue, arenas,
//! allocator planes, estimator state, metrics accumulators — into one
//! contiguous byte buffer, and restores it byte-exactly. This module is
//! the codec substrate: a hand-rolled writer/reader pair (no serde; the
//! build is offline) plus the [`Snap`] trait every snapshottable type
//! implements.
//!
//! Encoding rules, chosen for determinism rather than compactness:
//!
//! * all integers are **fixed-width little-endian** — no varints, so the
//!   encoded form of a value never depends on its magnitude;
//! * `f64` is encoded via [`f64::to_bits`] — bit-exact round trips, the
//!   same convention the report digest uses;
//! * collections are length-prefixed (`u64`) and encoded in their own
//!   deterministic iteration order;
//! * there is no schema or tagging inside the stream — the layout *is*
//!   the schema, which is why encode/decode implementations must
//!   destructure their structs exhaustively (enforced by the
//!   `exhaustive-snapshot-fields` lint rule: a newly added field that the
//!   codec silently skips would corrupt every checkpoint).
//!
//! Decoding is fallible and total: a truncated or corrupt buffer returns
//! a [`SnapError`] naming the decode site, never a panic.

use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A decode failure: the buffer was truncated, a tag was out of range, or
/// a sanity bound was violated. Carries the decode site for diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// What was being decoded when the failure was detected.
    pub what: &'static str,
}

impl SnapError {
    /// Builds an error naming the decode site.
    pub fn new(what: &'static str) -> Self {
        SnapError { what }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot decode failed at {}", self.what)
    }
}

impl std::error::Error for SnapError {}

/// Serializes values into a growing byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// An empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        SnapWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's-complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` bit-exactly (via [`f64::to_bits`]).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a collection length as a `u64`. `usize` → `u64` is lossless
    /// on every supported target; the saturating fallback is unreachable.
    pub fn len_prefix(&mut self, len: usize) {
        self.u64(u64::try_from(len).unwrap_or(u64::MAX));
    }

    /// Writes raw bytes with a length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len_prefix(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string with a length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Deserializes values from a byte buffer, tracking the read cursor.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — a trailing-garbage
    /// check for top-level decoders.
    pub fn expect_done(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::new("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError { what })?;
        if end > self.buf.len() {
            return Err(SnapError { what });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2, "u16")?;
        let arr: [u8; 2] = b.try_into().map_err(|_| SnapError::new("u16"))?;
        Ok(u16::from_le_bytes(arr))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        let arr: [u8; 4] = b.try_into().map_err(|_| SnapError::new("u32"))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        let arr: [u8; 8] = b.try_into().map_err(|_| SnapError::new("u64"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        let b = self.take(16, "u128")?;
        let arr: [u8; 16] = b.try_into().map_err(|_| SnapError::new("u128"))?;
        Ok(u128::from_le_bytes(arr))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        let b = self.take(8, "i64")?;
        let arr: [u8; 8] = b.try_into().map_err(|_| SnapError::new("i64"))?;
        Ok(i64::from_le_bytes(arr))
    }

    /// Reads an `f64` encoded via [`f64::to_bits`].
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is a decode error.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::new("bool")),
        }
    }

    /// Reads a collection length prefix, bounds-checked against the bytes
    /// actually remaining (each element takes at least one byte), so a
    /// corrupt length cannot trigger an absurd pre-allocation.
    pub fn len_prefix(&mut self) -> Result<usize, SnapError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::new("len"))?;
        Ok(n)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_prefix()?;
        self.take(n, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::new("utf8"))
    }
}

/// A type whose full state can be serialized into a [`SnapWriter`] and
/// reconstructed, byte-exactly, from a [`SnapReader`].
///
/// Implementations must destructure their struct exhaustively (no `..`
/// rest patterns) so a newly added field fails to compile rather than
/// being silently dropped from checkpoints — the `exhaustive-snapshot-
/// fields` lint rule enforces this mechanically.
pub trait Snap: Sized {
    /// Serializes `self` into `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Reconstructs a value from `r`.
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snap for u16 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u16(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u16()
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snap for u128 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u128(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u128()
    }
}

impl Snap for i64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.i64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.i64()
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.len_prefix()
    }
}

impl Snap for f64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.f64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.f64()
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.bool(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl Snap for SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.as_micros());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SimTime::from_micros(r.u64()?))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            _ => Err(SnapError::new("Option tag")),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        // Pre-allocation is bounded by the bytes actually present (each
        // element encodes to at least one byte).
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = VecDeque::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push_back(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Arc<T> {
    fn snap(&self, w: &mut SnapWriter) {
        T::snap(self, w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arc::new(T::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap + PartialEq + fmt::Debug>(v: &T) {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("decode");
        r.expect_done().expect("fully consumed");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u8::MAX);
        round_trip(&0xBEEFu16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&u128::MAX);
        round_trip(&(-42i64));
        round_trip(&std::f64::consts::PI);
        round_trip(&f64::NEG_INFINITY);
        round_trip(&true);
        round_trip(&false);
        round_trip(&String::from("resnet-50 \u{1F680}"));
        round_trip(&SimTime::from_micros(123_456_789));
        round_trip(&42usize);
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        let back = f64::unsnap(&mut r).expect("decode");
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Some(7u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<String>::new());
        round_trip(&VecDeque::from([1u64, 2, 3]));
        round_trip(&BTreeMap::from([(1u64, 2u64), (3, 4)]));
        round_trip(&BTreeSet::from([9u64, 1, 5]));
        round_trip(&(1u64, 2u8));
        round_trip(&(1u64, 2u8, String::from("x")));
        round_trip(&vec![(SimTime::from_secs(1), 0.5f64)]);
    }

    #[test]
    fn arc_round_trips_by_value() {
        let v = Arc::new(vec![1u64, 2, 3]);
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        let back = Arc::<Vec<u64>>::unsnap(&mut r).expect("decode");
        assert_eq!(*back, *v);
    }

    #[test]
    fn truncated_buffer_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].snap(&mut w);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(Vec::<u64>::unsnap(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tags_are_errors() {
        let mut r = SnapReader::new(&[2]);
        assert!(Option::<u8>::unsnap(&mut r).is_err());
        let mut r = SnapReader::new(&[7]);
        assert!(bool::unsnap(&mut r).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapWriter::new();
        1u8.snap(&mut w);
        2u8.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        let _ = u8::unsnap(&mut r).expect("first");
        assert!(r.expect_done().is_err());
        let _ = u8::unsnap(&mut r).expect("second");
        assert!(r.expect_done().is_ok());
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut w = SnapWriter::new();
            BTreeMap::from([(3u64, 1.5f64), (1, 2.5)]).snap(&mut w);
            w.finish()
        };
        assert_eq!(encode(), encode());
    }
}
