//! Minimal, dependency-free JSON for FaST-GShare.
//!
//! The workspace builds in an offline environment, so instead of
//! `serde_json` it uses this small [`Value`] tree with a strict RFC 8259
//! parser and a printer. The API mirrors the `serde_json::Value` surface
//! the codebase relies on: `v["key"]` indexing that yields `Null` for
//! missing members, `as_str`/`as_f64`/`as_u64`/`is_null` accessors, and
//! compact/pretty printing.
//!
//! Numbers are stored as `f64` (like JavaScript); integers round-trip
//! exactly up to 2^53, far beyond anything the platform serializes.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null` (also what indexing a missing member returns).
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; members are kept sorted for deterministic printing.
    Object(BTreeMap<String, Value>),
}

/// A parse error: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
    offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

static NULL: Value = Value::Null;

impl Value {
    /// Parses a JSON document (must be a single value with only trailing
    /// whitespace after it).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Exact integer-ness test: fract() is exactly 0.0 for integers.
            // fastg-lint: allow(no-float-eq)
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                // In-range integer by the guard above; `as` is exact.
                // fastg-lint: allow(no-lossy-cast)
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n)
                // Exact integer-ness test, as in `as_u64`.
                // fastg-lint: allow(no-float-eq)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                // In-range integer by the guard above; `as` is exact.
                // fastg-lint: allow(no-lossy-cast)
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null` (including the "missing member" null).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented multi-line rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(a) => write_seq(out, indent, depth, a.is_empty(), ('[', ']'), |out| {
                for (i, v) in a.iter().enumerate() {
                    sep(out, indent, depth + 1, i == 0);
                    v.write(out, indent, depth + 1);
                }
            }),
            Value::Object(o) => write_seq(out, indent, depth, o.is_empty(), ('{', '}'), |out| {
                for (i, (k, v)) in o.iter().enumerate() {
                    sep(out, indent, depth + 1, i == 0);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
            }),
        }
    }
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    brackets: (char, char),
    body: impl FnOnce(&mut String),
) {
    out.push(brackets.0);
    if !empty {
        body(out);
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * depth));
        }
    }
    out.push(brackets.1);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 { // fastg-lint: allow(no-float-eq) — exact integer-ness test
        // In-range integer by the guard above; `as` is exact.
        // fastg-lint: allow(no-lossy-cast)
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        self.get(&key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

/// Convenience builder for object values.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    map: BTreeMap<String, Value>,
}

impl ObjectBuilder {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.map.insert(key.to_string(), value.into());
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.map)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn require(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.require(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.require(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.require(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs (e.g. emoji) are combined.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("invalid number"));
        };
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_manifest_shapes() {
        let v = Value::parse(
            r#"{"kind":"FaSTFunc","metadata":{"name":"f","annotations":{"faasshare/sm_partition":"24"}},"spec":{"model":"rnnt","replicas":2,"slo_ms":500}}"#,
        )
        .unwrap();
        assert_eq!(v["kind"].as_str(), Some("FaSTFunc"));
        assert_eq!(v["metadata"]["name"].as_str(), Some("f"));
        assert_eq!(
            v["metadata"]["annotations"]["faasshare/sm_partition"].as_str(),
            Some("24")
        );
        assert_eq!(v["spec"]["replicas"].as_u64(), Some(2));
        assert!(v["spec"]["missing"].is_null());
        assert!(v["nope"]["deep"].is_null());
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::parse(r#"{"a":[1,2.5,-3],"b":"x\ny","c":null,"d":true}"#).unwrap();
        for rendering in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Value::parse(&rendering).unwrap(), v);
        }
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, 1.5, -2.25, 1e-9, 123456789.0, 0.3333333333333333] {
            let s = Value::Num(n).to_string_compact();
            assert_eq!(Value::parse(&s).unwrap().as_f64(), Some(n), "{s}");
        }
        assert_eq!(Value::parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("{} extra").is_err());
        assert!(Value::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""aéb😀c""#).unwrap();
        assert_eq!(v.as_str(), Some("aéb😀c"));
    }

    #[test]
    fn object_builder() {
        let v = ObjectBuilder::new()
            .field("name", "f")
            .field("rps", 12.5)
            .field("n", 3u64)
            .build();
        assert_eq!(v["name"].as_str(), Some("f"));
        assert_eq!(v["rps"].as_f64(), Some(12.5));
        assert_eq!(v["n"].as_u64(), Some(3));
    }
}
