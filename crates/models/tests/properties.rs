//! Property tests for model profiles and the inference cursor.

use fastg_des::SimTime;
use fastg_models::{zoo, InferenceRun, KernelSpec, MemoryFootprint, ModelProfile, Op, Stage};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_profile() -> impl Strategy<Value = ModelProfile> {
    prop::collection::vec(
        (0u64..2_000, 0usize..5, 1u32..100, 1u64..500),
        1..12,
    )
    .prop_map(|stages| ModelProfile {
        name: "prop".into(),
        stages: stages
            .into_iter()
            .map(|(host, n, blocks, work)| Stage::uniform(host, n, blocks, work))
            .collect(),
        memory: MemoryFootprint::from_mib(100, 50),
    })
}

proptest! {
    /// Device time is monotone non-increasing in the SM grant.
    #[test]
    fn device_time_monotone_in_sms(profile in arb_profile()) {
        let mut prev = profile.device_time_at(1);
        for sms in 2..=80 {
            let t = profile.device_time_at(sms);
            prop_assert!(t <= prev, "device time rose at {sms} SMs");
            prev = t;
        }
    }

    /// Ideal RPS is monotone non-decreasing in quota and in SMs.
    #[test]
    fn ideal_rps_monotone(profile in arb_profile()) {
        for sms in [1u32, 10, 40, 80] {
            let mut prev = 0.0f64;
            for q in [0.1, 0.3, 0.5, 0.8, 1.0] {
                let r = profile.ideal_rps(sms, q);
                prop_assert!(r + 1e-9 >= prev, "rps fell with quota at {sms} SMs");
                prev = r;
            }
        }
        for q in [0.2, 1.0] {
            let mut prev = 0.0f64;
            for sms in 1..=80 {
                let r = profile.ideal_rps(sms, q);
                prop_assert!(r + 1e-9 >= prev, "rps fell with SMs at quota {q}");
                prev = r;
            }
        }
    }

    /// The cursor walks exactly the non-empty phases of the profile and
    /// then stays Done; total host time and kernel count match.
    #[test]
    fn cursor_accounts_for_everything(profile in arb_profile()) {
        let expected_host = profile.host_time();
        let expected_kernels = profile.kernels_per_request();
        let mut run = InferenceRun::new(Arc::new(profile));
        let mut host = SimTime::ZERO;
        let mut kernels = 0usize;
        loop {
            match run.advance() {
                Op::Host(d) => {
                    prop_assert!(d > SimTime::ZERO, "zero host phases must be skipped");
                    host += d;
                }
                Op::Burst(ks) => {
                    prop_assert!(!ks.is_empty(), "empty bursts must be skipped");
                    kernels += ks.len();
                }
                Op::Done => break,
            }
        }
        prop_assert_eq!(host, expected_host);
        prop_assert_eq!(kernels, expected_kernels);
        prop_assert_eq!(run.advance(), Op::Done);
    }

    /// Saturation point: past it, granting every SM changes nothing; just
    /// below it (if > 1), device time is strictly worse.
    #[test]
    fn saturation_point_is_tight(profile in arb_profile()) {
        let sat = profile.saturation_sms(80, 0.0);
        prop_assert_eq!(profile.device_time_at(sat), profile.device_time_at(80));
        if sat > 1 {
            prop_assert!(profile.device_time_at(sat - 1) > profile.device_time_at(80));
        }
    }

    /// Kernel wave duration equals ceil(blocks/granted) × work.
    #[test]
    fn kernel_duration_formula(blocks in 1u32..1_000, sms in 1u32..200, work in 1u64..1_000) {
        let k = KernelSpec { blocks, work_per_block: SimTime::from_micros(work) };
        let granted = sms.min(blocks);
        let expected = work * blocks.div_ceil(granted) as u64;
        prop_assert_eq!(k.duration_at(sms), SimTime::from_micros(expected));
    }
}

/// Zoo-wide sanity: every model's analytic estimates stay consistent.
#[test]
fn zoo_models_are_wellformed() {
    for m in zoo::all() {
        assert!(m.kernels_per_request() > 0, "{}", m.name);
        assert!(m.host_time() > SimTime::ZERO, "{}", m.name);
        assert!(m.memory.total() > 0, "{}", m.name);
        assert!(m.memory.weights_bytes < m.memory.total(), "{}", m.name);
        let full = m.ideal_rps(80, 1.0);
        assert!(full > 1.0 && full < 500.0, "{}: {full}", m.name);
        // Quota-bound regime is exactly proportional.
        let r1 = m.ideal_rps(80, 0.1);
        let r2 = m.ideal_rps(80, 0.2);
        assert!((r2 / r1 - 2.0).abs() < 0.02, "{}", m.name);
    }
}
