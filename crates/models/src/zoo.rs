//! The benchmark model zoo.
//!
//! Profiles for the six models the paper evaluates, calibrated against its
//! §5 measurements (V100, batch size 1):
//!
//! | model | 1-pod racing RPS | saturation (of 80 SMs) | memory orig / shared |
//! |---|---|---|---|
//! | ResNet-50 | ≈ 71 | ≈ 19 SMs (24 %) | 1525 / 1427 MiB |
//! | RNNT | ≈ 12.5 | ≈ 48 SMs | 2000 / 1780 MiB |
//! | GNMT | ≈ 29 | ≈ 60 SMs | 2100 / 1820 MiB |
//! | BERT-base | ≈ 40 | ≈ 40 SMs (50 %) | 1900 / 1480 MiB |
//! | ResNeXt-101 | ≈ 25 | ≈ 40 SMs | 3900 / 1800 MiB |
//! | ViT-Huge | ≈ 8 | ≈ 64 SMs (80 %) | 4735 / 2101 MiB |
//!
//! The *shape* of each profile encodes why the paper's mechanisms help:
//! ResNet is a single dense burst of small kernels (low SM occupancy, high
//! launch rate); RNNT and GNMT are recurrent — many host-interleaved stages
//! whose gaps leave the GPU idle under exclusive/time sharing; the
//! transformers are fewer, larger kernels that saturate later along the
//! spatial axis.

use crate::profile::{MemoryFootprint, ModelProfile, Stage};

/// ResNet-50 image classification (MLPerf). One preprocessing phase, one
/// dense burst of ~50 convolution/elementwise kernels, light
/// postprocessing.
pub fn resnet50() -> ModelProfile {
    ModelProfile {
        name: "resnet50".into(),
        stages: vec![
            Stage::uniform(3_000, 50, 19, 200),
            Stage::uniform(1_000, 0, 0, 0),
        ],
        memory: MemoryFootprint::from_mib(1427, 98),
    }
}

/// RNNT speech recognition (MLPerf). Recurrent: 40 decoder time-steps,
/// each a host control-flow phase plus a short kernel burst — the
/// host-gap-heavy profile that keeps utilization below 40 % for a single
/// racing pod (Figure 10).
pub fn rnnt() -> ModelProfile {
    ModelProfile {
        name: "rnnt".into(),
        stages: (0..40)
            .map(|_| Stage::uniform(1_300, 4, 48, 175))
            .collect(),
        memory: MemoryFootprint::from_mib(1780, 220),
    }
}

/// GNMT neural machine translation (MLPerf). 30 decoder steps with wide
/// (60-block) matrix kernels: saturates late along the spatial axis.
pub fn gnmt() -> ModelProfile {
    ModelProfile {
        name: "gnmt".into(),
        stages: (0..30)
            .map(|_| Stage::uniform(160, 2, 60, 495))
            .collect(),
        memory: MemoryFootprint::from_mib(1820, 280),
    }
}

/// BERT-base NLP (MLPerf). One transformer burst of 48 GEMM-dominated
/// kernels at 40 blocks each: saturates at 50 % of a V100.
pub fn bert_base() -> ModelProfile {
    ModelProfile {
        name: "bert_base".into(),
        stages: vec![
            Stage::uniform(2_500, 48, 40, 460),
            Stage::uniform(500, 0, 0, 0),
        ],
        memory: MemoryFootprint::from_mib(1480, 420),
    }
}

/// ResNeXt-101 32x8d (larger vision model for the model-sharing study).
pub fn resnext101() -> ModelProfile {
    ModelProfile {
        name: "resnext101".into(),
        stages: vec![
            Stage::uniform(4_000, 70, 40, 500),
            Stage::uniform(1_000, 0, 0, 0),
        ],
        memory: MemoryFootprint::from_mib(1800, 2100),
    }
}

/// ViT-Huge vision transformer (largest model in the paper; weights
/// dominate the footprint, so model sharing saves 55.6 %).
pub fn vit_huge() -> ModelProfile {
    ModelProfile {
        name: "vit_huge".into(),
        stages: vec![
            Stage::uniform(4_000, 120, 64, 1_000),
            Stage::uniform(1_000, 0, 0, 0),
        ],
        memory: MemoryFootprint::from_mib(2101, 2634),
    }
}

/// All six benchmark models, in the paper's order.
pub fn all() -> Vec<ModelProfile> {
    vec![
        resnet50(),
        bert_base(),
        rnnt(),
        gnmt(),
        resnext101(),
        vit_huge(),
    ]
}

/// Looks a model up by name.
pub fn by_name(name: &str) -> Option<ModelProfile> {
    all().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Calibration against the paper's §5.3 single-racing-pod throughputs.
    #[test]
    fn single_pod_racing_rps_matches_paper() {
        let cases = [
            (resnet50(), 71.4, 3.0),  // paper: 71.37 req/s
            (rnnt(), 12.5, 1.0),      // paper: 12.51 req/s
            (gnmt(), 29.0, 1.5),      // paper: 28.85 req/s
            (bert_base(), 40.0, 3.0),
            (resnext101(), 25.0, 2.0),
            (vit_huge(), 8.0, 1.0),
        ];
        for (m, target, tol) in cases {
            let rps = m.ideal_rps(80, 1.0);
            assert!(
                (rps - target).abs() <= tol,
                "{}: ideal rps {rps:.2} not within {tol} of {target}",
                m.name
            );
        }
    }

    /// Figure 8: saturation points along the spatial axis.
    #[test]
    fn spatial_saturation_points() {
        assert_eq!(resnet50().saturation_sms(80, 0.0), 19); // ~24 %
        assert_eq!(bert_base().saturation_sms(80, 0.0), 40); // 50 %
        assert_eq!(vit_huge().saturation_sms(80, 0.0), 64); // 80 %
        assert_eq!(rnnt().saturation_sms(80, 0.0), 48);
        assert_eq!(gnmt().saturation_sms(80, 0.0), 60);
    }

    /// §5.3: eight 12 %-partition pods beat the time-sharing ceiling by the
    /// paper's factors (time-sharing ceiling = single racing pod).
    #[test]
    fn eight_pods_at_12pct_vs_time_sharing() {
        // 12 % of 80 SMs rounds to 10.
        let cases = [
            (resnet50(), 296.8, 0.25), // paper total for 8 pods
            (rnnt(), 43.24, 0.15),
            (gnmt(), 43.79, 0.15),
        ];
        for (m, paper_total, rel_tol) in cases {
            let per_pod = m.ideal_rps(10, 1.0);
            let total = per_pod * 8.0;
            let ratio = total / paper_total;
            assert!(
                (1.0 - rel_tol..=1.0 + rel_tol).contains(&ratio),
                "{}: 8-pod total {total:.1} vs paper {paper_total} (ratio {ratio:.2})",
                m.name
            );
        }
    }

    /// Figure 13 memory numbers.
    #[test]
    fn memory_footprints_match_paper() {
        use crate::profile::MIB;
        assert_eq!(resnet50().memory.total() / MIB, 1525);
        assert_eq!(resnet50().memory.shared_instance() / MIB, 1427);
        assert_eq!(vit_huge().memory.total() / MIB, 4735);
        assert_eq!(vit_huge().memory.shared_instance() / MIB, 2101);
        // ViT-Huge sharing saves 55.6 % per additional instance.
        let saved: f64 = 1.0 - 2101.0 / 4735.0;
        assert!((saved - 0.556).abs() < 0.002);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("resnet50").unwrap().name, "resnet50");
        assert_eq!(by_name("gnmt").unwrap().name, "gnmt");
        assert!(by_name("nope").is_none());
        assert_eq!(all().len(), 6);
    }

    /// Temporal proportionality (Figure 8): throughput under quota q is
    /// q-proportional while quota-bound.
    #[test]
    fn quota_proportionality() {
        let m = resnet50();
        let r20 = m.ideal_rps(19, 0.2);
        let r40 = m.ideal_rps(19, 0.4);
        let r60 = m.ideal_rps(19, 0.6);
        assert!((r40 / r20 - 2.0).abs() < 0.05, "r40/r20 = {}", r40 / r20);
        assert!((r60 / r20 - 3.0).abs() < 0.05);
    }
}
