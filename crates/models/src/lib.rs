//! # fastg-models — deep-learning model zoo and inference engine
//!
//! The FaST-GShare systems (manager, profiler, scheduler) never look inside
//! a CUDA kernel; they observe *launch sequences*: how many kernels a model
//! issues, how much parallelism (thread-blocks) each has, how long each
//! takes, where the host-side gaps and synchronization points fall, and how
//! much device memory the function needs. This crate models exactly that
//! surface:
//!
//! * [`ModelProfile`] — a model as a sequence of [`Stage`]s, each a
//!   host-side phase (pre/post-processing, Python/framework overhead,
//!   RNN time-step loops) followed by an asynchronous burst of kernels and
//!   a synchronization point. This is where the CUDA hook library
//!   intercepts (`cuLaunchKernel` … `cuCtxSynchronize`).
//! * [`zoo`] — profiles for the paper's benchmark models (ResNet-50,
//!   BERT-base, RNNT, GNMT from MLPerf, plus ResNeXt-101 and ViT-Huge for
//!   the model-sharing study), calibrated against the paper's §5 numbers:
//!   single-pod racing throughput, SM-saturation points (Figure 8), and
//!   memory footprints (Figure 13).
//! * [`InferenceRun`] — a resumable cursor that walks a profile and yields
//!   the next operation (host compute, kernel burst, completion); the
//!   platform event loop interprets these against a simulated GPU.
//!
//! Analytic throughput/latency estimates ([`ModelProfile::latency_at`],
//! [`ModelProfile::ideal_rps`]) provide closed-form cross-checks for the
//! simulation (used heavily in tests).

#![warn(missing_docs)]

pub mod profile;
pub mod run;
pub mod zoo;

pub use profile::{KernelSpec, MemoryFootprint, ModelProfile, Stage};
pub use run::{InferenceRun, Op, StageOp};
