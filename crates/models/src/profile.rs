//! Model profiles: kernel traces and memory footprints.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;

/// One kernel launch within a stage burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Thread-blocks in the grid; bounds exploitable SM parallelism.
    pub blocks: u32,
    /// Time for one SM to retire one block.
    pub work_per_block: SimTime,
}

impl KernelSpec {
    /// Residency duration when granted `sms` SMs (wave execution).
    pub fn duration_at(&self, sms: u32) -> SimTime {
        let granted = sms.min(self.blocks.max(1)).max(1);
        self.work_per_block * u64::from(self.blocks.max(1).div_ceil(granted))
    }

    /// SM-time regardless of scheduling.
    pub fn total_work(&self) -> SimTime {
        self.work_per_block * u64::from(self.blocks.max(1))
    }
}

/// A host phase followed by an asynchronous kernel burst ending at a
/// synchronization point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Host-side time before any kernel of the burst launches
    /// (pre-processing, framework overhead, RNN step control flow).
    pub host: SimTime,
    /// The kernels launched back-to-back after the host phase. The stage
    /// ends with a `cuCtxSynchronize`-style sync once all complete.
    pub kernels: Vec<KernelSpec>,
}

impl Stage {
    /// Builds a stage of `n` identical kernels.
    pub fn uniform(host_us: u64, n: usize, blocks: u32, work_us: u64) -> Self {
        Stage {
            host: SimTime::from_micros(host_us),
            kernels: vec![
                KernelSpec {
                    blocks,
                    work_per_block: SimTime::from_micros(work_us),
                };
                n
            ],
        }
    }

    /// Device residency time of the burst when every kernel is granted
    /// `sms` SMs and kernels run back-to-back (in-order stream, no
    /// cross-client contention).
    pub fn device_time_at(&self, sms: u32) -> SimTime {
        self.kernels
            .iter()
            .fold(SimTime::ZERO, |acc, k| acc + k.duration_at(sms))
    }
}

/// GPU memory footprint of one function instance, split the way the
/// model-sharing mechanism cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Framework/runtime + activations + CUDA context: the part every
    /// instance needs privately, in bytes.
    pub runtime_bytes: u64,
    /// Model parameters: the part model sharing de-duplicates, in bytes.
    pub weights_bytes: u64,
}

impl MemoryFootprint {
    /// Builds a footprint from mebibyte quantities.
    pub fn from_mib(runtime_mib: u64, weights_mib: u64) -> Self {
        MemoryFootprint {
            runtime_bytes: runtime_mib * MIB,
            weights_bytes: weights_mib * MIB,
        }
    }

    /// Total per-instance footprint without model sharing.
    pub fn total(&self) -> u64 {
        self.runtime_bytes + self.weights_bytes
    }

    /// Per-instance footprint when the weights live in the shared store.
    pub fn shared_instance(&self) -> u64 {
        self.runtime_bytes
    }
}

/// One mebibyte, in bytes.
pub const MIB: u64 = 1024 * 1024;

/// A deep-learning model as the GPU-sharing stack observes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelProfile {
    /// Model name (e.g. "resnet50").
    pub name: String,
    /// The per-request stage sequence.
    pub stages: Vec<Stage>,
    /// Device-memory footprint of one instance.
    pub memory: MemoryFootprint,
}

impl ModelProfile {
    /// Total host-side time per request.
    pub fn host_time(&self) -> SimTime {
        self.stages
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.host)
    }

    /// Total device time per request when each kernel is granted `sms` SMs
    /// with no cross-client contention.
    pub fn device_time_at(&self, sms: u32) -> SimTime {
        self.stages
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.device_time_at(sms))
    }

    /// Uncontended request latency at a spatial grant of `sms` SMs.
    pub fn latency_at(&self, sms: u32) -> SimTime {
        self.host_time() + self.device_time_at(sms)
    }

    /// Analytic single-instance throughput estimate (requests/second) under
    /// a spatial partition of `sms` SMs and a temporal quota of `quota`
    /// (fraction of each window the pod may occupy the GPU).
    ///
    /// Two regimes bind: pipeline latency (`1 / (host + device)`) and quota
    /// (`quota / device`). The profiler's measured curves follow this
    /// within queueing noise, which is how Figure 8 shows proportional
    /// growth along the temporal axis and saturation along the spatial
    /// axis.
    pub fn ideal_rps(&self, sms: u32, quota: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&quota), "quota out of range: {quota}");
        let quota = if quota.is_nan() { 0.0 } else { quota.clamp(0.0, 1.0) };
        let device = self.device_time_at(sms).as_secs_f64();
        let latency = self.latency_at(sms).as_secs_f64();
        if device <= 0.0 {
            return if latency > 0.0 { 1.0 / latency } else { 0.0 };
        }
        (1.0 / latency).min(quota / device)
    }

    /// The smallest SM grant at which device time is within `tolerance`
    /// (e.g. 0.01 = 1 %) of its value at `max_sms`: the model's spatial
    /// saturation point.
    pub fn saturation_sms(&self, max_sms: u32, tolerance: f64) -> u32 {
        let best = self.device_time_at(max_sms).as_secs_f64();
        for sms in 1..=max_sms {
            let t = self.device_time_at(sms).as_secs_f64();
            if t <= best * (1.0 + tolerance) {
                return sms;
            }
        }
        max_sms
    }

    /// Total kernels launched per request.
    pub fn kernels_per_request(&self) -> usize {
        self.stages.iter().map(|s| s.kernels.len()).sum()
    }
}

impl Snap for KernelSpec {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            blocks,
            work_per_block,
        } = self;
        w.u32(*blocks);
        work_per_block.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(KernelSpec {
            blocks: r.u32()?,
            work_per_block: SimTime::unsnap(r)?,
        })
    }
}

impl Snap for Stage {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { host, kernels } = self;
        host.snap(w);
        kernels.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Stage {
            host: SimTime::unsnap(r)?,
            kernels: Vec::unsnap(r)?,
        })
    }
}

impl Snap for MemoryFootprint {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            runtime_bytes,
            weights_bytes,
        } = self;
        w.u64(*runtime_bytes);
        w.u64(*weights_bytes);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemoryFootprint {
            runtime_bytes: r.u64()?,
            weights_bytes: r.u64()?,
        })
    }
}

impl Snap for ModelProfile {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            name,
            stages,
            memory,
        } = self;
        name.snap(w);
        stages.snap(w);
        memory.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ModelProfile {
            name: String::unsnap(r)?,
            stages: Vec::unsnap(r)?,
            memory: MemoryFootprint::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ModelProfile {
        ModelProfile {
            name: "toy".into(),
            stages: vec![
                Stage::uniform(1_000, 2, 20, 100),
                Stage::uniform(500, 1, 10, 50),
            ],
            memory: MemoryFootprint::from_mib(1000, 200),
        }
    }

    #[test]
    fn kernel_duration_waves() {
        let k = KernelSpec {
            blocks: 20,
            work_per_block: SimTime::from_micros(100),
        };
        assert_eq!(k.duration_at(20), SimTime::from_micros(100));
        assert_eq!(k.duration_at(80), SimTime::from_micros(100)); // capped by blocks
        assert_eq!(k.duration_at(10), SimTime::from_micros(200));
        assert_eq!(k.duration_at(7), SimTime::from_micros(300));
        assert_eq!(k.total_work(), SimTime::from_micros(2_000));
    }

    #[test]
    fn stage_and_profile_times() {
        let m = toy();
        assert_eq!(m.host_time(), SimTime::from_micros(1_500));
        // Full grant: 2×100 + 1×50 = 250us.
        assert_eq!(m.device_time_at(80), SimTime::from_micros(250));
        // 10 SMs: 2×200 + 1×50 = 450us.
        assert_eq!(m.device_time_at(10), SimTime::from_micros(450));
        assert_eq!(m.latency_at(80), SimTime::from_micros(1_750));
        assert_eq!(m.kernels_per_request(), 3);
    }

    #[test]
    fn ideal_rps_regimes() {
        let m = toy();
        // Full quota: latency-bound = 1 / 1.75ms.
        let full = m.ideal_rps(80, 1.0);
        assert!((full - 1.0 / 1.75e-3).abs() < 1.0);
        // Tiny quota: quota-bound = 0.01 / 0.25ms.
        let q = m.ideal_rps(80, 0.01);
        assert!((q - 0.01 / 0.25e-3).abs() < 1.0);
        // Quota scaling is proportional in the quota-bound regime.
        assert!((m.ideal_rps(80, 0.02) / q - 2.0).abs() < 0.01);
    }

    #[test]
    fn saturation_point() {
        let m = toy();
        // Largest kernel has 20 blocks: 20 SMs saturate.
        assert_eq!(m.saturation_sms(80, 0.0), 20);
    }

    #[test]
    fn memory_split() {
        let f = MemoryFootprint::from_mib(1427, 98);
        assert_eq!(f.total(), 1525 * MIB);
        assert_eq!(f.shared_instance(), 1427 * MIB);
    }

    #[test]
    #[should_panic(expected = "quota out of range")]
    fn bad_quota_panics() {
        toy().ideal_rps(80, 1.5);
    }
}
