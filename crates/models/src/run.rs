//! The inference cursor: walks a [`ModelProfile`] one operation at a time.

use crate::profile::{KernelSpec, ModelProfile};
use fastg_des::snap::{SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;
use std::sync::Arc;

/// The next thing an in-flight inference needs to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Spend host-side time (GPU idle for this request).
    Host(SimTime),
    /// Launch this kernel burst asynchronously, then synchronize. The
    /// platform routes each launch through the CUDA hook (token checks) and
    /// calls [`InferenceRun::advance`] again after the sync completes.
    Burst(Vec<KernelSpec>),
    /// The request is complete.
    Done,
}

/// The next operation, with the burst identified *by stage index* instead
/// of a cloned kernel vector. [`InferenceRun::advance_indexed`] returns
/// this so per-request hot paths can iterate
/// `profile.stages[i].kernels` through their own `Arc<ModelProfile>`
/// handle — the per-stage `Vec<KernelSpec>` clone in [`Op::Burst`] is the
/// single largest allocation source in a saturated simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOp {
    /// Spend host-side time (GPU idle for this request).
    Host(SimTime),
    /// Launch the kernels of `profile.stages[index]`, then synchronize.
    Burst(usize),
    /// The request is complete.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Host,
    Burst,
}

/// A resumable cursor over one request's stage sequence.
///
/// The platform event loop drives it: call [`advance`](Self::advance) to get
/// the next [`Op`], perform it (schedule a host-delay event, or launch the
/// burst and wait for the sync), then call `advance` again.
#[derive(Debug, Clone)]
pub struct InferenceRun {
    profile: Arc<ModelProfile>,
    stage: usize,
    phase: Phase,
}

impl InferenceRun {
    /// Starts a run at the beginning of the profile.
    pub fn new(profile: Arc<ModelProfile>) -> Self {
        InferenceRun {
            profile,
            stage: 0,
            phase: Phase::Host,
        }
    }

    /// The model being run.
    pub fn profile(&self) -> &Arc<ModelProfile> {
        &self.profile
    }

    /// Yields the next operation and moves the cursor past it. Host phases
    /// of zero length and empty bursts are skipped. After `Done` is
    /// returned, subsequent calls keep returning `Done`.
    pub fn advance(&mut self) -> Op {
        match self.advance_indexed() {
            StageOp::Host(t) => Op::Host(t),
            StageOp::Burst(i) => Op::Burst(self.profile.stages[i].kernels.clone()),
            StageOp::Done => Op::Done,
        }
    }

    /// Allocation-free variant of [`advance`](Self::advance): bursts are
    /// returned as a stage index into [`profile`](Self::profile) rather
    /// than a cloned kernel vector. The indexed stage is guaranteed to
    /// have a non-empty kernel list.
    pub fn advance_indexed(&mut self) -> StageOp {
        loop {
            let Some(stage) = self.profile.stages.get(self.stage) else {
                return StageOp::Done;
            };
            match self.phase {
                Phase::Host => {
                    self.phase = Phase::Burst;
                    if stage.host > SimTime::ZERO {
                        return StageOp::Host(stage.host);
                    }
                }
                Phase::Burst => {
                    let index = self.stage;
                    self.phase = Phase::Host;
                    self.stage += 1;
                    if !stage.kernels.is_empty() {
                        return StageOp::Burst(index);
                    }
                }
            }
        }
    }

    /// Device work (single-grant residency time at `sms` SMs) of the burst
    /// the cursor would yield next, if any. The hook library uses this as
    /// the Gemini-style kernel-burst estimate when sizing token requests.
    pub fn upcoming_burst_estimate(&self, sms: u32) -> Option<SimTime> {
        self.profile
            .stages
            .get(self.stage)
            .filter(|s| !s.kernels.is_empty())
            .map(|s| s.device_time_at(sms))
    }

    /// Fraction of stages completed (for progress displays).
    pub fn progress(&self) -> f64 {
        if self.profile.stages.is_empty() {
            1.0
        } else {
            self.stage as f64 / self.profile.stages.len() as f64
        }
    }

    /// Restarts the cursor (used when a pod re-runs the same request shape).
    pub fn reset(&mut self) {
        self.stage = 0;
        self.phase = Phase::Host;
    }

    /// Encodes the cursor position only — stage index and phase — leaving
    /// the (immutable, shared) profile to be re-attached on restore via
    /// [`Self::unsnap_cursor`]. Checkpoints of a fleet hold one profile
    /// copy per function, not one per in-flight request.
    pub fn snap_cursor(&self, w: &mut SnapWriter) {
        let Self {
            profile: _,
            stage,
            phase,
        } = self;
        w.len_prefix(*stage);
        match phase {
            Phase::Host => w.u8(0),
            Phase::Burst => w.u8(1),
        }
    }

    /// Rebuilds a run from a cursor encoded by [`Self::snap_cursor`],
    /// re-attaching `profile` as the shared model.
    pub fn unsnap_cursor(
        r: &mut SnapReader<'_>,
        profile: Arc<ModelProfile>,
    ) -> Result<Self, SnapError> {
        let stage = r.len_prefix()?;
        if stage > profile.stages.len() {
            return Err(SnapError::new("inference cursor stage"));
        }
        let phase = match r.u8()? {
            0 => Phase::Host,
            1 => Phase::Burst,
            _ => return Err(SnapError::new("inference cursor phase")),
        };
        Ok(InferenceRun {
            profile,
            stage,
            phase,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MemoryFootprint, Stage};

    fn profile(stages: Vec<Stage>) -> Arc<ModelProfile> {
        Arc::new(ModelProfile {
            name: "t".into(),
            stages,
            memory: MemoryFootprint::from_mib(1, 1),
        })
    }

    #[test]
    fn walks_host_then_burst_per_stage() {
        let p = profile(vec![
            Stage::uniform(100, 2, 4, 10),
            Stage::uniform(50, 1, 4, 10),
        ]);
        let mut run = InferenceRun::new(p);
        assert_eq!(run.advance(), Op::Host(SimTime::from_micros(100)));
        match run.advance() {
            Op::Burst(ks) => assert_eq!(ks.len(), 2),
            other => panic!("expected burst, got {other:?}"),
        }
        assert_eq!(run.advance(), Op::Host(SimTime::from_micros(50)));
        match run.advance() {
            Op::Burst(ks) => assert_eq!(ks.len(), 1),
            other => panic!("expected burst, got {other:?}"),
        }
        assert_eq!(run.advance(), Op::Done);
        assert_eq!(run.advance(), Op::Done); // idempotent
    }

    #[test]
    fn skips_empty_phases() {
        let p = profile(vec![
            Stage::uniform(0, 1, 4, 10), // zero host
            Stage::uniform(25, 0, 0, 0), // empty burst
        ]);
        let mut run = InferenceRun::new(p);
        assert!(matches!(run.advance(), Op::Burst(_)));
        assert_eq!(run.advance(), Op::Host(SimTime::from_micros(25)));
        assert_eq!(run.advance(), Op::Done);
    }

    #[test]
    fn empty_profile_is_done_immediately() {
        let mut run = InferenceRun::new(profile(vec![]));
        assert_eq!(run.advance(), Op::Done);
        assert_eq!(run.progress(), 1.0);
    }

    #[test]
    fn burst_estimate_tracks_cursor() {
        let p = profile(vec![Stage::uniform(100, 2, 20, 10)]);
        let mut run = InferenceRun::new(p);
        // Two 20-block 10us kernels at 10 SMs: 2 waves each = 40us.
        assert_eq!(
            run.upcoming_burst_estimate(10),
            Some(SimTime::from_micros(40))
        );
        run.advance(); // host
        run.advance(); // burst
        assert_eq!(run.upcoming_burst_estimate(10), None);
    }

    #[test]
    fn reset_restarts() {
        let p = profile(vec![Stage::uniform(100, 1, 4, 10)]);
        let mut run = InferenceRun::new(p);
        run.advance();
        run.advance();
        assert_eq!(run.advance(), Op::Done);
        run.reset();
        assert_eq!(run.advance(), Op::Host(SimTime::from_micros(100)));
        assert!(run.progress() < 1.0);
    }
}
