//! # fastgshare — FaaS-oriented spatio-temporal GPU sharing
//!
//! A full reproduction of **FaST-GShare** (Gu et al., ICPP 2023): an
//! architecture that multiplexes deep-learning inference functions onto
//! shared GPUs in both the *spatial* dimension (MPS SM partitions) and the
//! *temporal* dimension (time-quota tokens), while guaranteeing function
//! SLOs through profiling-driven auto-scaling and fragmentation-aware GPU
//! packing.
//!
//! The four components of the paper map to the four policy modules here:
//!
//! | paper | module | what it does |
//! |---|---|---|
//! | FaST-Manager (§3.3) | [`manager`] | frontend/backend token protocol: multi-token scheduler, `Q_miss` priority queue, SM Allocation Adapter, elastic quotas |
//! | FaST-Profiler (§3.2) | [`profiler`] | Experiment→Trial sweeps of (SM partition × time quota), profile database |
//! | FaST-Scheduler (§3.4) | [`scheduler`] | Algorithm 1 (Heuristic Scaling) and Algorithm 2 (Maximal Rectangles) with node selection |
//! | Model Sharing (§3.5) | [`modelshare`] | IPC-based single-copy weight store (STORE/GET protocol) |
//!
//! [`platform`] composes them with the simulation substrates
//! (`fastg-des`, `fastg-gpu`, `fastg-models`, `fastg-cluster`,
//! `fastg-workload`) into a deterministic end-to-end serverless inference
//! platform.
//!
//! ## Quickstart
//!
//! ```
//! use fastgshare::platform::{Platform, PlatformConfig, FunctionConfig};
//! use fastgshare::manager::SharingPolicy;
//! use fastg_des::SimTime;
//!
//! let mut platform = Platform::new(
//!     PlatformConfig::default()
//!         .nodes(1)
//!         .policy(SharingPolicy::FaST),
//! );
//! // Deploy 2 ResNet pods at a 12 % SM partition and full time quota.
//! let func = platform.deploy(
//!     FunctionConfig::new("fastsvc-resnet", "resnet50")
//!         .slo_ms(69)
//!         .replicas(2)
//!         .resources(12.0, 1.0, 1.0),
//! ).unwrap();
//! // Drive it with 60 req/s of Poisson traffic for 5 simulated seconds.
//! platform.set_load(func, fastg_workload::ArrivalProcess::poisson(60.0, 7));
//! let report = platform.run_for(SimTime::from_secs(5));
//! let f = &report.functions[&func];
//! assert!(f.completed > 200, "completed {}", f.completed);
//! ```

#![warn(missing_docs)]

pub mod manager;
pub mod modelshare;
pub mod platform;
pub mod profiler;
pub mod scheduler;

pub use manager::SharingPolicy;
pub use platform::{FunctionConfig, Platform, PlatformConfig, PlatformReport};
