//! `fastgshare` — command-line front end for the simulated platform.
//!
//! ```text
//! fastgshare serve   [model] [rps] [seconds]      one function under FaST
//! fastgshare compare [model] [pods]               the four sharing policies
//! fastgshare profile [model]                      Figure-8 grid for a model
//! fastgshare autoscale                            Figure-12 scenario
//! fastgshare csv     [model] [rps] [seconds]      run + CSV report to stdout
//! fastgshare apply   <manifest.json> [rps] [sec]  deploy a FaSTFunc manifest
//! fastgshare models                               list the model zoo
//! ```
//!
//! Arguments are positional with sensible defaults; no flags, no external
//! CLI dependency.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{csv, FunctionConfig, Platform, PlatformConfig};
use fastgshare::profiler::{ConfigServer, Experiment, ProfileDb, ProfileKey, ProfileRecord};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let arg = |i: usize, default: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| default.to_string())
    };
    match cmd {
        "serve" => serve(
            &arg(1, "resnet50"),
            arg(2, "60").parse().unwrap_or(60.0),
            arg(3, "10").parse().unwrap_or(10),
            false,
        ),
        "csv" => serve(
            &arg(1, "resnet50"),
            arg(2, "60").parse().unwrap_or(60.0),
            arg(3, "10").parse().unwrap_or(10),
            true,
        ),
        "compare" => compare(&arg(1, "resnet50"), arg(2, "8").parse().unwrap_or(8)),
        "profile" => profile(&arg(1, "resnet50")),
        "autoscale" => autoscale(),
        "models" => models(),
        "apply" => apply(
            &arg(1, ""),
            arg(2, "30").parse().unwrap_or(30.0),
            arg(3, "10").parse().unwrap_or(10),
        ),
        _ => help(),
    }
}

/// Deploys a FaSTFunc manifest file and serves Poisson traffic against it.
fn apply(path: &str, rps: f64, seconds: u64) {
    if path.is_empty() {
        eprintln!("usage: fastgshare apply <manifest.json> [rps] [seconds]");
        std::process::exit(2);
    }
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let fc = match FunctionConfig::from_manifest(&json) {
        Ok(fc) => fc,
        Err(e) => {
            eprintln!("bad manifest: {e}");
            std::process::exit(1);
        }
    };
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .warmup(SimTime::from_secs(1))
            .seed(42),
    );
    let f = match p.deploy(fc) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("deploy failed: {e}");
            std::process::exit(1);
        }
    };
    p.set_load(f, ArrivalProcess::poisson(rps, 7));
    let report = p.run_for(SimTime::from_secs(seconds));
    print!("{}", report.summary());
}

fn help() {
    println!(
        "fastgshare — FaST-GShare (ICPP 2023) simulation platform\n\n\
         USAGE:\n  \
         fastgshare serve   [model] [rps] [seconds]   serve Poisson traffic under FaST\n  \
         fastgshare compare [model] [pods]            compare the four sharing policies\n  \
         fastgshare profile [model]                   FaST-Profiler grid (Figure 8)\n  \
         fastgshare autoscale                         auto-scaling scenario (Figure 12)\n  \
         fastgshare csv     [model] [rps] [seconds]   emit a CSV report\n  \
         fastgshare models                            list the model zoo"
    );
}

fn models() {
    println!("{:<12} {:>10} {:>12} {:>10} {:>12}", "model", "1-pod rps", "saturation", "memory", "weights");
    for m in fastg_models::zoo::all() {
        println!(
            "{:<12} {:>10.1} {:>9} SMs {:>8} M {:>10} M",
            m.name,
            m.ideal_rps(80, 1.0),
            m.saturation_sms(80, 0.0),
            m.memory.total() / (1024 * 1024),
            m.memory.weights_bytes / (1024 * 1024),
        );
    }
}

fn serve(model: &str, rps: f64, seconds: u64, as_csv: bool) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .warmup(SimTime::from_secs(1))
            .seed(42),
    );
    let f = match p.deploy(
        FunctionConfig::new(&format!("fastsvc-{model}"), model)
            .replicas(2)
            .resources(24.0, 1.0, 1.0),
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("deploy failed: {e}");
            std::process::exit(1);
        }
    };
    p.set_load(f, ArrivalProcess::poisson(rps, 7));
    let report = p.run_for(SimTime::from_secs(seconds));
    if as_csv {
        print!("{}", csv::functions_csv(&report));
        print!("{}", csv::nodes_csv(&report));
        print!("{}", csv::timeseries_csv(&report));
    } else {
        print!("{}", report.summary());
    }
}

fn compare(model: &str, pods: usize) {
    println!(
        "{:<28} {:>10} {:>12} {:>8} {:>8}",
        "policy", "req/s", "p99", "util", "SM occ"
    );
    let cases = [
        ("device plugin (exclusive)", SharingPolicy::Exclusive, 100.0),
        ("time sharing (KubeShare)", SharingPolicy::SingleToken, 100.0),
        ("racing (MPS, no control)", SharingPolicy::Racing, 100.0),
        ("FaST-GShare (12% parts)", SharingPolicy::FaST, 12.0),
        ("FaST-GShare (24% parts)", SharingPolicy::FaST, 24.0),
    ];
    for (name, policy, sm) in cases {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(policy)
                .oversubscribe(true)
                .warmup(SimTime::from_secs(1))
                .seed(17),
        );
        let n = if policy == SharingPolicy::Exclusive { 1 } else { pods };
        let f = p
            .deploy(
                FunctionConfig::new("cmp", model)
                    .replicas(n)
                    .resources(sm, 1.0, 1.0)
                    .saturating(),
            )
            .expect("deploys");
        let r = p.run_for(SimTime::from_secs(5));
        let fr = &r.functions[&f];
        println!(
            "{name:<28} {:>10.1} {:>12} {:>7.1}% {:>7.1}%",
            fr.throughput_rps,
            format!("{}", fr.p99),
            r.nodes[0].utilization * 100.0,
            r.nodes[0].sm_occupancy * 100.0,
        );
    }
}

fn profile(model: &str) {
    let mut db = ProfileDb::new();
    let exp = Experiment::new(model, ConfigServer::paper_grid())
        .trial_duration(SimTime::from_secs(3));
    if let Err(e) = exp.run(&mut db) {
        eprintln!("profiling failed: {e}");
        std::process::exit(1);
    }
    println!("{}", db.to_json());
}

fn autoscale() {
    let zoo = fastg_models::zoo::resnet50();
    let mut db = ProfileDb::new();
    for &(sm_pct, sms) in &[(6.0, 5u32), (12.0, 10), (24.0, 19), (50.0, 40)] {
        for &q in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            db.insert(
                "resnet50",
                ProfileKey::new(sm_pct, q),
                ProfileRecord {
                    rps: zoo.ideal_rps(sms, q),
                    p50: zoo.latency_at(sms),
                    p99: zoo.latency_at(sms) * 2,
                    utilization: 0.0,
                    sm_occupancy: 0.0,
                },
            );
        }
    }
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .warmup(SimTime::from_secs(2))
            .seed(23),
    );
    let f = p
        .deploy(
            FunctionConfig::new("fastsvc-resnet", "resnet50")
                .slo_ms(69)
                .replicas(1)
                .resources(12.0, 0.4, 1.0),
        )
        .expect("deploys");
    p.enable_autoscaler(db);
    p.set_load(
        f,
        ArrivalProcess::profile(
            vec![
                (SimTime::ZERO, 10.0),
                (SimTime::from_secs(10), 10.0),
                (SimTime::from_secs(30), 130.0),
                (SimTime::from_secs(40), 130.0),
                (SimTime::from_secs(45), 40.0),
                (SimTime::from_secs(60), 40.0),
            ],
            99,
        ),
    );
    println!("{:>6} {:>7} {:>12}", "t", "pods", "served");
    let mut prev = 0u64;
    for step in 1..=12u64 {
        let r = p.run_for(SimTime::from_secs(5));
        let fr = &r.functions[&f];
        println!(
            "{:>5}s {:>7} {:>10.1}/s",
            step * 5,
            fr.replicas,
            (fr.completed - prev) as f64 / 5.0
        );
        prev = fr.completed;
    }
    let fr = &p.report().functions[&f];
    println!(
        "SLO violations {:.2}% over {} requests",
        fr.violation_ratio * 100.0,
        fr.completed
    );
}
