//! Run reports: the numbers the paper's figures plot.

use fastg_cluster::FuncId;
use fastg_des::{SimTime, TimeSeries};
use std::collections::BTreeMap;

/// Per-function results over a run.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Model served.
    pub model: String,
    /// Requests that arrived at the gateway.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by the gateway: timed out in the queue, or lost to a
    /// crash with no retry budget left.
    pub dropped: u64,
    /// Requests refused at admission: bounded queue full or circuit
    /// breaker fast-fail (overload control plane only).
    pub rejected: u64,
    /// Requests shed because queue wait plus the estimated service time
    /// proved their deadline unmeetable.
    pub shed_deadline: u64,
    /// Requests admitted while the function served in brownout
    /// (reduced-quota) mode.
    pub browned_out: u64,
    /// Times the function's circuit breaker tripped to Open.
    pub breaker_trips: u64,
    /// Goodput: steady-state SLO-met completions per second after
    /// warm-up — the number overload control exists to protect.
    pub goodput_rps: f64,
    /// Completions that met the SLO.
    pub good_completions: u64,
    /// Wasted work: service time spent on completions that missed their
    /// SLO (capacity burned on already-dead requests).
    pub wasted_service: SimTime,
    /// Time from each detected replica outage to the run of health checks
    /// that restored the desired replica count (recovery controller only;
    /// empty when recovery is off or no outage occurred).
    pub time_to_recovery: Vec<SimTime>,
    /// Steady-state throughput (completions/second after warm-up).
    pub throughput_rps: f64,
    /// Median end-to-end latency.
    pub p50: SimTime,
    /// 95th-percentile latency.
    pub p95: SimTime,
    /// 99th-percentile (tail) latency.
    pub p99: SimTime,
    /// Worst observed latency.
    pub max_latency: SimTime,
    /// Mean latency.
    pub mean_latency: SimTime,
    /// The function's SLO.
    pub slo: SimTime,
    /// Requests over the SLO.
    pub slo_violations: u64,
    /// Violation ratio in `[0, 1]`.
    pub violation_ratio: f64,
    /// Running replica count at the end of the run.
    pub replicas: usize,
    /// Replica count over time (sampled with the metric interval).
    pub replica_series: TimeSeries,
}

/// Per-node (per-GPU) results over a run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// GPU model on this node (e.g. a MIG instance name).
    pub gpu: String,
    /// Mean GPU utilization after warm-up (0..=1).
    pub utilization: f64,
    /// Mean SM occupancy after warm-up (0..=1).
    pub sm_occupancy: f64,
    /// Kernels completed on this GPU.
    pub kernels: u64,
    /// Pods resident at the end of the run.
    pub pods: usize,
    /// Whether the node was still up at the end of the run (`false` after
    /// an injected `NodeCrash`).
    pub up: bool,
    /// Device memory in use at the end of the run (bytes).
    pub memory_used: u64,
    /// Sampled utilization series.
    pub utilization_series: TimeSeries,
    /// Sampled SM-occupancy series.
    pub occupancy_series: TimeSeries,
}

/// The full report for one run.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Simulated time covered.
    pub duration: SimTime,
    /// Warm-up offset steady-state numbers exclude.
    pub warmup: SimTime,
    /// Per-function results, keyed by function id.
    pub functions: BTreeMap<FuncId, FunctionReport>,
    /// Per-node results, in node order.
    pub nodes: Vec<NodeReport>,
    /// Pods the scheduler could not place ("new GPU required" events).
    pub unschedulable_pods: u64,
    /// Faults injected from the configured plan.
    pub faults_injected: u64,
}

impl PlatformReport {
    /// Total completions across functions.
    pub fn total_completed(&self) -> u64 {
        self.functions.values().map(|f| f.completed).sum()
    }

    /// Total steady-state throughput across functions.
    pub fn total_throughput(&self) -> f64 {
        self.functions.values().map(|f| f.throughput_rps).sum()
    }

    /// Total goodput (SLO-met completions/second) across functions.
    pub fn total_goodput(&self) -> f64 {
        self.functions.values().map(|f| f.goodput_rps).sum()
    }

    /// Total service time burned on SLO-missing completions.
    pub fn total_wasted_service(&self) -> SimTime {
        self.functions
            .values()
            .fold(SimTime::ZERO, |acc, f| acc + f.wasted_service)
    }

    /// Total admission rejections (queue full + breaker fast-fails).
    pub fn total_rejected(&self) -> u64 {
        self.functions.values().map(|f| f.rejected).sum()
    }

    /// Total deadline-driven sheds.
    pub fn total_shed(&self) -> u64 {
        self.functions.values().map(|f| f.shed_deadline).sum()
    }

    /// Mean utilization across nodes that ran at least one kernel (the
    /// aggregation Figure 11 reports).
    pub fn mean_utilization_active(&self) -> f64 {
        let active: Vec<&NodeReport> = self.nodes.iter().filter(|n| n.kernels > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|n| n.utilization).sum::<f64>() / active.len() as f64
    }

    /// Mean SM occupancy across active nodes.
    pub fn mean_occupancy_active(&self) -> f64 {
        let active: Vec<&NodeReport> = self.nodes.iter().filter(|n| n.kernels > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|n| n.sm_occupancy).sum::<f64>() / active.len() as f64
    }

    /// Number of GPUs that served kernels.
    pub fn gpus_used(&self) -> usize {
        self.nodes.iter().filter(|n| n.kernels > 0).count()
    }

    /// Renders a compact human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "run: {} (warmup {}) | {} GPUs used | util {:.1}% | SM occ {:.1}%",
            self.duration,
            self.warmup,
            self.gpus_used(),
            self.mean_utilization_active() * 100.0,
            self.mean_occupancy_active() * 100.0,
        );
        for f in self.functions.values() {
            let _ = writeln!(
                s,
                "  {:<24} {:>8.1} rps | p50 {} p99 {} | SLO {} viol {:.2}% | pods {}",
                f.name,
                f.throughput_rps,
                f.p50,
                f.p99,
                f.slo,
                f.violation_ratio * 100.0,
                f.replicas,
            );
        }
        for n in &self.nodes {
            let _ = writeln!(
                s,
                "  {:<24} util {:>5.1}% | SM occ {:>5.1}% | kernels {} | pods {} | mem {} MiB",
                n.name,
                n.utilization * 100.0,
                n.sm_occupancy * 100.0,
                n.kernels,
                n.pods,
                n.memory_used / (1024 * 1024),
            );
        }
        s
    }

    /// A canonical, lossless rendering of every field — floats via their
    /// bit patterns, series sample by sample — used for determinism
    /// regression testing: two runs of the same configuration and seed
    /// must produce the identical string, byte for byte.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let f64b = |v: f64| v.to_bits();
        let series = |s: &mut String, ts: &TimeSeries| {
            for &(t, v) in ts.points() {
                let _ = write!(s, " {}:{:016x}", t.as_micros(), v.to_bits());
            }
        };
        let _ = writeln!(
            s,
            "run duration={} warmup={} unschedulable={} faults={}",
            self.duration.as_micros(),
            self.warmup.as_micros(),
            self.unschedulable_pods,
            self.faults_injected,
        );
        for (id, f) in &self.functions {
            let _ = write!(
                s,
                "fn {id:?} name={} model={} arr={} done={} drop={} rej={} shed={} \
                 brown={} trips={} good={} goodrps={:016x} waste={} rps={:016x} \
                 p50={} p95={} p99={} max={} mean={} slo={} viol={} ratio={:016x} reps={}",
                f.name,
                f.model,
                f.arrivals,
                f.completed,
                f.dropped,
                f.rejected,
                f.shed_deadline,
                f.browned_out,
                f.breaker_trips,
                f.good_completions,
                f64b(f.goodput_rps),
                f.wasted_service.as_micros(),
                f64b(f.throughput_rps),
                f.p50.as_micros(),
                f.p95.as_micros(),
                f.p99.as_micros(),
                f.max_latency.as_micros(),
                f.mean_latency.as_micros(),
                f.slo.as_micros(),
                f.slo_violations,
                f64b(f.violation_ratio),
                f.replicas,
            );
            for ttr in &f.time_to_recovery {
                let _ = write!(s, " ttr={}", ttr.as_micros());
            }
            series(&mut s, &f.replica_series);
            s.push('\n');
        }
        for n in &self.nodes {
            let _ = write!(
                s,
                "node {} gpu={} util={:016x} occ={:016x} kernels={} pods={} up={} mem={}",
                n.name,
                n.gpu,
                f64b(n.utilization),
                f64b(n.sm_occupancy),
                n.kernels,
                n.pods,
                n.up,
                n.memory_used,
            );
            series(&mut s, &n.utilization_series);
            series(&mut s, &n.occupancy_series);
            s.push('\n');
        }
        s
    }

    /// FNV-1a digest of [`Self::canonical_text`]: a compact fingerprint
    /// for byte-identical replay checks.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_text().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(kernels: u64, util: f64, occ: f64) -> NodeReport {
        NodeReport {
            name: "n".into(),
            gpu: "test-gpu".into(),
            utilization: util,
            sm_occupancy: occ,
            kernels,
            pods: 0,
            up: true,
            memory_used: 0,
            utilization_series: TimeSeries::new(),
            occupancy_series: TimeSeries::new(),
        }
    }

    #[test]
    fn active_node_aggregation_ignores_idle_gpus() {
        let r = PlatformReport {
            duration: SimTime::from_secs(10),
            warmup: SimTime::ZERO,
            functions: BTreeMap::new(),
            nodes: vec![node(100, 0.8, 0.4), node(0, 0.0, 0.0)],
            unschedulable_pods: 0,
            faults_injected: 0,
        };
        assert_eq!(r.gpus_used(), 1);
        assert!((r.mean_utilization_active() - 0.8).abs() < 1e-9);
        assert!((r.mean_occupancy_active() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = PlatformReport {
            duration: SimTime::ZERO,
            warmup: SimTime::ZERO,
            functions: BTreeMap::new(),
            nodes: vec![],
            unschedulable_pods: 0,
            faults_injected: 0,
        };
        assert_eq!(r.total_completed(), 0);
        assert_eq!(r.total_throughput(), 0.0);
        assert_eq!(r.mean_utilization_active(), 0.0);
        assert!(!r.summary().is_empty());
    }
}
