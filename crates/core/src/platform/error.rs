//! Typed errors for platform control-plane operations.
//!
//! `deploy`, pod admission and `reconfigure` used to report failures as
//! `Result<_, String>`, which forced `format!` allocations onto paths
//! that parallel sweep workers hit under load. [`PlatformError`] carries
//! the underlying typed error instead; rendering to text happens only
//! when a caller actually displays it.

use crate::modelshare::ShareError;
use fastg_cluster::ClusterError;
use fastg_des::snap::SnapError;
use fastg_gpu::MpsError;

/// Why a platform control-plane operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The function config names a model the zoo does not know.
    UnknownModel(String),
    /// The referenced function was never deployed (or was deleted).
    UnknownFunction,
    /// Pod admission failed: no node can host the requested resources
    /// (the paper's "a new GPU is required" outcome).
    NoNodeFits,
    /// A cluster-level operation failed.
    Cluster(ClusterError),
    /// An MPS partition update was rejected.
    Mps(MpsError),
    /// The model-sharing attach failed.
    Share(ShareError),
    /// An engine invariant broke (per-node table missing a row).
    Internal(&'static str),
    /// A parallel sweep worker failed (panic captured by `fastg-par`).
    Worker(fastg_par::ParError),
    /// A checkpoint could not be decoded (truncated, version-mismatched
    /// or corrupt snapshot bytes).
    Snapshot(SnapError),
}

impl From<SnapError> for PlatformError {
    fn from(e: SnapError) -> Self {
        PlatformError::Snapshot(e)
    }
}

impl From<fastg_par::ParError> for PlatformError {
    fn from(e: fastg_par::ParError) -> Self {
        PlatformError::Worker(e)
    }
}

impl From<ClusterError> for PlatformError {
    fn from(e: ClusterError) -> Self {
        PlatformError::Cluster(e)
    }
}

impl From<MpsError> for PlatformError {
    fn from(e: MpsError) -> Self {
        PlatformError::Mps(e)
    }
}

impl From<ShareError> for PlatformError {
    fn from(e: ShareError) -> Self {
        PlatformError::Share(e)
    }
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            PlatformError::UnknownFunction => write!(f, "unknown function"),
            PlatformError::NoNodeFits => write!(f, "a new GPU required (no node fits)"),
            PlatformError::Cluster(e) => write!(f, "cluster: {e}"),
            PlatformError::Mps(e) => write!(f, "mps: {e}"),
            PlatformError::Share(e) => write!(f, "model sharing: {e}"),
            PlatformError::Internal(what) => write!(f, "internal: {what}"),
            PlatformError::Worker(e) => write!(f, "sweep worker: {e}"),
            PlatformError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_variant() {
        assert_eq!(
            PlatformError::UnknownModel("nope".into()).to_string(),
            "unknown model 'nope'"
        );
        assert_eq!(
            PlatformError::NoNodeFits.to_string(),
            "a new GPU required (no node fits)"
        );
        assert_eq!(
            PlatformError::Internal("backend missing for node").to_string(),
            "internal: backend missing for node"
        );
    }

    #[test]
    fn converts_from_component_errors() {
        let e: PlatformError = ClusterError::UnknownPod(fastg_cluster::PodId(7)).into();
        assert!(matches!(e, PlatformError::Cluster(_)));
    }
}
