//! Versioned engine snapshots: the container format behind
//! [`Platform::checkpoint`](crate::platform::Platform::checkpoint),
//! [`Platform::restore`](crate::platform::Platform::restore) and
//! [`Platform::fork`](crate::platform::Platform::fork).
//!
//! A [`Snapshot`] is a self-describing byte buffer: an 8-byte header
//! (magic + format version, both little-endian `u32`s) followed by the
//! [`Snap`](fastg_des::snap::Snap)-encoded engine payload. The header
//! exists so snapshots persisted to disk (or shipped between worker
//! threads of a prefix-shared sweep) fail loudly — with a decode-site
//! error, not garbage state — when fed to an incompatible build.
//!
//! What the payload captures, in encode order:
//!
//! 1. the driver clock (`now`, delivered-event counter),
//! 2. the full engine state: resolved [`PlatformConfig`]
//!    (env-independent), cluster + GPUs + MPS servers, gateway queues,
//!    per-node FaST Backends and model storage servers, scheduler planes,
//!    function/pod runtime tables (arena generations included, so stale
//!    handles stay stale), overload control plane, fast-forward phase
//!    lattice, and metrics accumulators,
//! 3. the event queue: live entries with their tie-break keys and the
//!    sequence counter, so outstanding [`CancelToken`]s stay valid and
//!    the restored run pops events in exactly the original order.
//!
//! Not captured: recycling scratch buffers (restored empty — they are
//! performance state, not semantics) and function-pointer state (the
//! event classifier, reinstalled at restore). Restore-then-run is
//! byte-identical to straight-through execution: the two runs produce
//! equal [`PlatformReport::digest`](crate::platform::PlatformReport::digest)s.
//!
//! [`PlatformConfig`]: crate::platform::PlatformConfig
//! [`CancelToken`]: fastg_des::CancelToken

use fastg_des::snap::SnapError;

/// Identifies a byte buffer as a FaST-GShare engine snapshot
/// (`b"FGSN"` little-endian).
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"FGSN");

/// Current snapshot format version. Bumped whenever any `snap`/`unsnap`
/// encoding changes shape; old snapshots are rejected, never reinterpreted.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Length of the `magic ‖ version` header preceding the payload.
const HEADER_LEN: usize = 8;

/// A sealed, versioned engine snapshot.
///
/// Immutable by construction: workers of a prefix-shared sweep share one
/// snapshot (behind an `Arc` or a plain reference) and each restores its
/// own private platform from it. Obtain one from
/// [`Platform::checkpoint`](crate::platform::Platform::checkpoint) or
/// [`Snapshot::from_bytes`]; the raw bytes round-trip through
/// [`Snapshot::as_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Seals an encoded engine payload behind the versioned header.
    pub(crate) fn seal(payload: Vec<u8>) -> Self {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&payload);
        Snapshot { bytes }
    }

    /// Validates the header of `bytes` and returns the payload slice.
    fn checked_payload(bytes: &[u8]) -> Result<&[u8], SnapError> {
        let magic = bytes
            .get(..4)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(u32::from_le_bytes);
        if magic != Some(SNAPSHOT_MAGIC) {
            return Err(SnapError::new("snapshot magic"));
        }
        let version = bytes
            .get(4..HEADER_LEN)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(u32::from_le_bytes);
        if version != Some(SNAPSHOT_VERSION) {
            return Err(SnapError::new("snapshot version"));
        }
        bytes
            .get(HEADER_LEN..)
            .ok_or_else(|| SnapError::new("snapshot payload"))
    }

    /// The engine payload (header validated on every access, so a
    /// hand-built `Snapshot` can never smuggle a bad header past decode).
    pub(crate) fn payload(&self) -> Result<&[u8], SnapError> {
        Self::checked_payload(&self.bytes)
    }

    /// Adopts raw bytes (e.g. read back from disk) as a snapshot,
    /// validating the magic and version.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        Self::checked_payload(&bytes)?;
        Ok(Snapshot { bytes })
    }

    /// The full encoded form: header plus payload.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total encoded size in bytes (capacity-planning for sweeps that
    /// hold many snapshots at once).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The format version stamped in this snapshot's header.
    pub fn version(&self) -> u32 {
        self.bytes
            .get(4..HEADER_LEN)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(u32::from_le_bytes)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_reopen_round_trips() {
        let snap = Snapshot::seal(vec![1, 2, 3]);
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        assert_eq!(snap.size_bytes(), HEADER_LEN + 3);
        assert_eq!(snap.payload().unwrap(), &[1, 2, 3]);
        let reopened = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(reopened, snap);
    }

    #[test]
    fn empty_payload_is_valid() {
        let snap = Snapshot::seal(Vec::new());
        assert_eq!(snap.payload().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Snapshot::seal(vec![7]).as_bytes().to_vec();
        bytes[0] ^= 0xff;
        let err = Snapshot::from_bytes(bytes).unwrap_err();
        assert_eq!(err.what, "snapshot magic");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Snapshot::seal(vec![7]).as_bytes().to_vec();
        bytes[4] = bytes[4].wrapping_add(1);
        let err = Snapshot::from_bytes(bytes).unwrap_err();
        assert_eq!(err.what, "snapshot version");
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(Snapshot::from_bytes(vec![b'F', b'G']).is_err());
        assert!(Snapshot::from_bytes(SNAPSHOT_MAGIC.to_le_bytes().to_vec()).is_err());
    }
}
