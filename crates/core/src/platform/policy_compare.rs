//! Side-by-side scheduler-policy comparison: the arena evaluation grid.
//!
//! Runs every [`SchedPolicy`] over a grid of placement scenarios and
//! condenses each (policy, scenario) cell into throughput, SLO
//! violations, spatial fragmentation, GPU usage and the scheduler's
//! lifetime placement counters. The rendered report is **canonical**:
//! floats are printed both rounded (for humans) and as bit patterns, and
//! no wall-clock value ever enters it, so two runs of the same grid — at
//! any worker-thread count and under any event tie-break order — must
//! produce byte-identical text.

use std::fmt::Write as _;

use fastg_des::{SimTime, TieBreak};
use fastg_workload::ArrivalProcess;

use crate::manager::{SchedPolicy, SharingPolicy};
use crate::platform::config::{FunctionConfig, PlatformConfig};
use crate::platform::engine::Platform;
use crate::platform::error::PlatformError;
use crate::scheduler::SchedStats;

/// The two scenario shapes of the standard grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScenarioKind {
    /// The paper's Figure 11 pod mix (2 BERT + 2 RNNT + 4 ResNet per four
    /// nodes), saturating: a pure packing benchmark — fragmentation and
    /// GPUs-in-use dominate.
    MixedSaturate,
    /// Latency-critical functions under constant load co-located with
    /// bursty best-effort pods (`quota_request < quota_limit`): an SLO
    /// benchmark where the priority co-location policy's class split
    /// matters.
    LoadedSlo,
}

/// One scenario of the comparison grid.
#[derive(Debug, Clone, Copy)]
pub struct CompareScenario {
    /// Stable scenario name (a report key — never reused across shapes).
    pub name: &'static str,
    kind: ScenarioKind,
    /// Cluster size.
    pub nodes: usize,
    /// Measured seconds after the 1 s warm-up.
    pub seconds: u64,
    /// Scenario seed.
    pub seed: u64,
}

impl CompareScenario {
    /// The Figure 11 packing scenario at `nodes` nodes.
    pub fn mixed_saturate(nodes: usize, seconds: u64, seed: u64) -> Self {
        Self { name: "mixed-saturate", kind: ScenarioKind::MixedSaturate, nodes, seconds, seed }
    }

    /// The SLO co-location scenario at `nodes` nodes.
    pub fn loaded_slo(nodes: usize, seconds: u64, seed: u64) -> Self {
        Self { name: "loaded-slo", kind: ScenarioKind::LoadedSlo, nodes, seconds, seed }
    }

    fn config(&self, policy: SchedPolicy, tiebreak: TieBreak) -> PlatformConfig {
        PlatformConfig::default()
            .nodes(self.nodes)
            .policy(SharingPolicy::FaST)
            .scheduler(policy)
            .tiebreak(tiebreak)
            .warmup(SimTime::from_secs(1))
            .seed(self.seed)
    }

    /// Builds the scenario's platform under `policy`.
    fn build(&self, policy: SchedPolicy, tiebreak: TieBreak) -> Result<Platform, PlatformError> {
        let mut p = Platform::new(self.config(policy, tiebreak));
        match self.kind {
            ScenarioKind::MixedSaturate => {
                // One Figure 11 pod set per four nodes, descending area.
                let sets = (self.nodes / 4).max(1);
                for s in 0..sets {
                    p.deploy(
                        FunctionConfig::new(&format!("bert-{s:02}"), "bert_base")
                            .replicas(2)
                            .resources(50.0, 0.6, 0.6)
                            .saturating(),
                    )?;
                    p.deploy(
                        FunctionConfig::new(&format!("rnnt-{s:02}"), "rnnt")
                            .replicas(2)
                            .resources(24.0, 0.4, 0.4)
                            .saturating(),
                    )?;
                    p.deploy(
                        FunctionConfig::new(&format!("resnet-{s:02}"), "resnet50")
                            .replicas(4)
                            .resources(12.0, 0.4, 0.4)
                            .saturating(),
                    )?;
                }
            }
            ScenarioKind::LoadedSlo => {
                // Two latency-critical ResNets plus one bursty best-effort
                // BERT per pair of nodes.
                let pairs = (self.nodes / 2).max(1);
                for s in 0..pairs {
                    for r in 0..2 {
                        let f = p.deploy(
                            FunctionConfig::new(&format!("lc-{s:02}-{r}"), "resnet50")
                                .slo_ms(200)
                                .replicas(1)
                                .resources(25.0, 0.5, 0.5),
                        )?;
                        p.set_load(f, ArrivalProcess::constant(20.0));
                    }
                    let f = p.deploy(
                        FunctionConfig::new(&format!("be-{s:02}"), "bert_base")
                            .slo_ms(500)
                            .replicas(1)
                            .resources(50.0, 0.3, 0.8),
                    )?;
                    p.set_load(f, ArrivalProcess::constant(5.0));
                }
            }
        }
        Ok(p)
    }
}

/// The standard two-scenario grid at `scale` × the base cluster size.
pub fn standard_grid(scale: usize, seconds: u64, seed: u64) -> Vec<CompareScenario> {
    let scale = scale.max(1);
    vec![
        CompareScenario::mixed_saturate(4 * scale, seconds, seed),
        CompareScenario::loaded_slo(4 * scale, seconds, seed.wrapping_add(1)),
    ]
}

/// One (policy, scenario) cell of the comparison grid.
#[derive(Debug, Clone)]
pub struct PolicyCell {
    /// The scheduler policy of this cell.
    pub policy: SchedPolicy,
    /// The scenario name.
    pub scenario: &'static str,
    /// Total steady-state throughput (req/s) across functions.
    pub throughput_rps: f64,
    /// Total SLO violations across functions.
    pub slo_violations: u64,
    /// Mean spatial fragmentation across GPUs in use, at end of run.
    pub fragmentation: f64,
    /// GPUs with at least one pod bound, at end of run.
    pub gpus_in_use: usize,
    /// Pods that found no feasible node.
    pub unschedulable: u64,
    /// Lifetime placement counters of the scheduler.
    pub stats: SchedStats,
    /// FNV-1a digest of the full platform report (the replay fingerprint).
    pub digest: u64,
}

/// The rendered grid: every cell of policies × scenarios.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Cells in (scenario-major, policy-minor) order.
    pub cells: Vec<PolicyCell>,
}

impl CompareReport {
    /// Canonical text: one line per cell, floats rounded *and* as bit
    /// patterns, no wall-clock values. Byte-identical across reruns,
    /// worker-thread counts and tie-break orders.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "policy-compare grid: throughput / SLO violations / fragmentation per cell\n",
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "cell scenario={} policy={} rps={:.1}({:016x}) slo_viol={} \
                 frag={:.4}({:016x}) gpus={} unsched={} placed={} released={} \
                 rejects={} probes={} fallbacks={} merges={} restructs={} digest={:016x}",
                c.scenario,
                c.policy,
                c.throughput_rps,
                c.throughput_rps.to_bits(),
                c.slo_violations,
                c.fragmentation,
                c.fragmentation.to_bits(),
                c.gpus_in_use,
                c.unschedulable,
                c.stats.placements,
                c.stats.releases,
                c.stats.rejects,
                c.stats.probes,
                c.stats.exact_fallbacks,
                c.stats.merges,
                c.stats.restructures,
                c.digest,
            );
        }
        s
    }

    /// FNV-1a digest of [`Self::render`].
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Runs one (policy, scenario) cell to completion. Cells are independent
/// simulations, so a driver may fan them out across worker threads
/// (`fastg_par::par_map`) without affecting the report bytes.
pub fn run_policy_cell(
    policy: SchedPolicy,
    scenario: &CompareScenario,
    tiebreak: TieBreak,
) -> Result<PolicyCell, PlatformError> {
    let mut p = scenario.build(policy, tiebreak)?;
    let report = p.run_for(SimTime::from_secs(1 + scenario.seconds));
    let slo_violations = report.functions.values().map(|f| f.slo_violations).sum();
    Ok(PolicyCell {
        policy,
        scenario: scenario.name,
        throughput_rps: report.total_throughput(),
        slo_violations,
        fragmentation: p.mean_fragmentation(),
        gpus_in_use: p.gpus_in_use(),
        unschedulable: report.unschedulable_pods,
        stats: p.scheduler_stats(),
        digest: report.digest(),
    })
}

/// Runs every `policy` over every `scenario` under `tiebreak`, returning
/// the filled grid. Scenario-major order keeps the report grouping
/// stable.
pub fn run_policy_grid(
    policies: &[SchedPolicy],
    scenarios: &[CompareScenario],
    tiebreak: TieBreak,
) -> Result<CompareReport, PlatformError> {
    let mut cells = Vec::with_capacity(policies.len() * scenarios.len());
    for sc in scenarios {
        for &policy in policies {
            cells.push(run_policy_cell(policy, sc, tiebreak)?);
        }
    }
    Ok(CompareReport { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_byte_identical_across_tiebreak_orders() {
        let policies = [SchedPolicy::Paper, SchedPolicy::FastPath];
        let scenarios = [CompareScenario::mixed_saturate(4, 2, 7)];
        let fifo = run_policy_grid(&policies, &scenarios, TieBreak::Fifo)
            .expect("grid runs")
            .render();
        let lifo = run_policy_grid(&policies, &scenarios, TieBreak::Lifo)
            .expect("grid runs")
            .render();
        assert_eq!(fifo, lifo, "tie-break order leaked into the grid");
        assert_eq!(fifo.lines().count(), 1 + 2, "one line per cell plus header");
    }

    #[test]
    fn slo_grid_covers_all_arena_policies() {
        let policies = [
            SchedPolicy::FastPath,
            SchedPolicy::DemandMatch,
            SchedPolicy::PriorityColocate,
        ];
        let scenarios = [CompareScenario::loaded_slo(4, 2, 11)];
        let report = run_policy_grid(&policies, &scenarios, TieBreak::Fifo).expect("grid runs");
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert!(cell.stats.placements > 0, "{} placed nothing", cell.policy);
            assert_eq!(cell.unschedulable, 0, "{} left pods unschedulable", cell.policy);
        }
    }
}
