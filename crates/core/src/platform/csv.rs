//! CSV rendering of run reports, for external plotting of the figures.

use crate::platform::report::PlatformReport;
use fastg_des::TimeSeries;
use std::fmt::Write;

/// Renders a [`TimeSeries`] as `t_seconds,value` rows with a header.
pub fn series_csv(name: &str, series: &TimeSeries) -> String {
    let mut out = String::from("t_seconds,");
    out.push_str(name);
    out.push('\n');
    for &(t, v) in series.points() {
        let _ = writeln!(out, "{:.3},{v:.6}", t.as_secs_f64());
    }
    out
}

/// Per-function summary rows: one line per function.
pub fn functions_csv(report: &PlatformReport) -> String {
    let mut out = String::from(
        "function,model,arrivals,completed,throughput_rps,p50_ms,p95_ms,p99_ms,\
         mean_ms,slo_ms,violations,violation_ratio,replicas\n",
    );
    for f in report.functions.values() {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{:.6},{}",
            f.name,
            f.model,
            f.arrivals,
            f.completed,
            f.throughput_rps,
            f.p50.as_millis_f64(),
            f.p95.as_millis_f64(),
            f.p99.as_millis_f64(),
            f.mean_latency.as_millis_f64(),
            f.slo.as_millis_f64(),
            f.slo_violations,
            f.violation_ratio,
            f.replicas,
        );
    }
    out
}

/// Per-node summary rows: one line per GPU.
pub fn nodes_csv(report: &PlatformReport) -> String {
    let mut out =
        String::from("node,utilization,sm_occupancy,kernels,pods,memory_used_mib\n");
    for n in &report.nodes {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{},{},{}",
            n.name,
            n.utilization,
            n.sm_occupancy,
            n.kernels,
            n.pods,
            n.memory_used / (1024 * 1024),
        );
    }
    out
}

/// The per-node utilization/occupancy series plus per-function replica
/// series, concatenated as long-format rows:
/// `series,entity,t_seconds,value`.
pub fn timeseries_csv(report: &PlatformReport) -> String {
    let mut out = String::from("series,entity,t_seconds,value\n");
    let mut push = |series: &str, entity: &str, ts: &TimeSeries| {
        for &(t, v) in ts.points() {
            let _ = writeln!(out, "{series},{entity},{:.3},{v:.6}", t.as_secs_f64());
        }
    };
    for n in &report.nodes {
        push("utilization", &n.name, &n.utilization_series);
        push("sm_occupancy", &n.name, &n.occupancy_series);
    }
    for f in report.functions.values() {
        push("replicas", &f.name, &f.replica_series);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::SharingPolicy;
    use crate::platform::{FunctionConfig, Platform, PlatformConfig};
    use fastg_des::SimTime;
    use fastg_workload::ArrivalProcess;

    fn small_report() -> PlatformReport {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(SharingPolicy::FaST)
                .seed(4),
        );
        let f = p
            .deploy(
                FunctionConfig::new("csv-func", "resnet50")
                    .replicas(1)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::constant(20.0));
        p.run_for(SimTime::from_secs(2))
    }

    #[test]
    fn functions_csv_has_header_and_rows() {
        let csv = functions_csv(&small_report());
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("function,model,arrivals"));
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("csv-func,resnet50,"));
        // Column count matches the header.
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count()
        );
    }

    #[test]
    fn nodes_csv_has_one_row_per_gpu() {
        let csv = nodes_csv(&small_report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("gpu-worker-0,"));
    }

    #[test]
    fn timeseries_long_format() {
        let csv = timeseries_csv(&small_report());
        assert!(csv.starts_with("series,entity,t_seconds,value\n"));
        assert!(csv.contains("utilization,gpu-worker-0,"));
        assert!(csv.contains("sm_occupancy,gpu-worker-0,"));
        assert!(csv.contains("replicas,csv-func,"));
    }

    #[test]
    fn series_csv_round_numbers() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1500), 0.5);
        let csv = series_csv("util", &ts);
        assert_eq!(csv, "t_seconds,util\n1.500,0.500000\n");
    }
}
