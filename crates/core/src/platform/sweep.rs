//! Named scenario grids executed in parallel.
//!
//! A [`Scenario`] is a self-contained recipe for one deterministic
//! platform run: config, function set, open-loop loads and a duration.
//! [`run_sweep`] fans a grid of scenarios out over `fastg-par` worker
//! threads and returns the reports **in input order**, so the output —
//! and every digest derived from it — is byte-identical no matter how
//! many threads execute it (including the `threads = 1` sequential
//! path). Determinism holds because each scenario owns its entire
//! simulation: no state is shared between workers, and result slots are
//! indexed by input position, not completion order.

use crate::platform::config::{FunctionConfig, PlatformConfig};
use crate::platform::engine::Platform;
use crate::platform::error::PlatformError;
use crate::platform::report::PlatformReport;
use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;

/// One named, self-contained platform run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label carried into the sweep result (figure point, grid cell…).
    pub name: String,
    /// Platform construction parameters (nodes, policy, seed, faults…).
    pub config: PlatformConfig,
    /// Functions deployed, in order, before the clock starts.
    pub functions: Vec<FunctionConfig>,
    /// Open-loop arrival processes keyed by index into `functions`.
    pub loads: Vec<(usize, ArrivalProcess)>,
    /// Simulated time to run before reporting.
    pub duration: SimTime,
}

impl Scenario {
    /// A scenario with no functions and a 1 s duration; chain the
    /// builder methods to fill it in.
    pub fn new(name: impl Into<String>, config: PlatformConfig) -> Self {
        Scenario {
            name: name.into(),
            config,
            functions: Vec::new(),
            loads: Vec::new(),
            duration: SimTime::from_secs(1),
        }
    }

    /// Adds a function deployed at construction.
    pub fn function(mut self, fc: FunctionConfig) -> Self {
        self.functions.push(fc);
        self
    }

    /// Attaches an arrival process to the `func_index`-th function.
    pub fn load(mut self, func_index: usize, process: ArrivalProcess) -> Self {
        self.loads.push((func_index, process));
        self
    }

    /// Sets the simulated run duration.
    pub fn duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }

    /// Builds the platform, deploys every function, attaches loads and
    /// runs to completion.
    pub fn run(self) -> Result<PlatformReport, PlatformError> {
        self.run_traced().map(|(report, _)| report)
    }

    /// Like [`Self::run`], but also returns the per-event delivery trace
    /// (empty unless [`PlatformConfig::trace_events`] is set). The race
    /// detector uses this to delta-debug a digest divergence to the first
    /// differently-ordered event.
    pub fn run_traced(self) -> Result<(PlatformReport, Vec<String>), PlatformError> {
        let mut platform = Platform::new(self.config);
        let mut ids = Vec::with_capacity(self.functions.len());
        for fc in self.functions {
            ids.push(platform.deploy(fc)?);
        }
        for (index, process) in self.loads {
            let Some(&func) = ids.get(index) else {
                return Err(PlatformError::UnknownFunction);
            };
            platform.set_load(func, process);
        }
        let report = platform.run_for(self.duration);
        Ok((report, platform.event_trace().to_vec()))
    }
}

/// Runs every scenario, `threads` at a time, returning `(name, report)`
/// pairs in the same order as the input grid. `threads = 1` is exactly
/// the sequential loop; any other count produces byte-identical reports
/// (see module docs). The first failing scenario's error is returned,
/// and a worker panic surfaces as [`PlatformError::Worker`].
pub fn run_sweep(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Result<Vec<(String, PlatformReport)>, PlatformError> {
    fastg_par::try_par_map(scenarios, threads, |_, scenario| {
        let name = scenario.name.clone();
        Ok((name, scenario.run()?))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Scenario> {
        [12.0, 24.0]
            .iter()
            .map(|&sm| {
                Scenario::new(
                    format!("resnet-sm{sm}"),
                    PlatformConfig::default()
                        .nodes(1)
                        .warmup(SimTime::from_millis(200))
                        .seed(7),
                )
                .function(
                    FunctionConfig::new("f", "resnet50")
                        .replicas(1)
                        .resources(sm, 0.4, 1.0)
                        .saturating(),
                )
                .duration(SimTime::from_millis(700))
            })
            .collect()
    }

    #[test]
    fn sweep_returns_input_order_and_matches_sequential() {
        let seq = run_sweep(grid(), 1).expect("sequential sweep");
        let par = run_sweep(grid(), 3).expect("parallel sweep");
        assert_eq!(seq.len(), 2);
        let names: Vec<&str> = par.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["resnet-sm12", "resnet-sm24"]);
        for ((n1, r1), (n2, r2)) in seq.iter().zip(&par) {
            assert_eq!(n1, n2);
            assert_eq!(r1.digest(), r2.digest());
        }
    }

    #[test]
    fn bad_load_index_is_a_typed_error() {
        let sc = Scenario::new("bad", PlatformConfig::default().nodes(1))
            .load(0, ArrivalProcess::poisson(10.0, 1));
        assert_eq!(sc.run().unwrap_err(), PlatformError::UnknownFunction);
    }

    #[test]
    fn unknown_model_propagates_through_sweep() {
        let sc = Scenario::new("ghost", PlatformConfig::default().nodes(1))
            .function(FunctionConfig::new("f", "not-a-model"));
        match run_sweep(vec![sc], 2) {
            Err(PlatformError::UnknownModel(name)) => assert_eq!(name, "not-a-model"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }
}
