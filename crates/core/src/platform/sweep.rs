//! Named scenario grids executed in parallel, with prefix-shared warmup.
//!
//! A [`Scenario`] is a self-contained recipe for one deterministic
//! platform run: config, function set, open-loop loads, an optional
//! shared warmup + treatment split, and a duration. [`run_sweep`] fans a
//! grid of scenarios out over `fastg-par` worker threads and returns the
//! reports **in input order**, so the output — and every digest derived
//! from it — is byte-identical no matter how many threads execute it
//! (including the `threads = 1` sequential path).
//!
//! # Prefix-shared execution
//!
//! Treatment grids (same cluster, same functions, same load, different
//! post-warmup knob per cell) re-simulate the identical warmup once per
//! cell when run naively. [`run_sweep`] factors the grid into a
//! shared-prefix tree instead: scenarios whose `(config, functions,
//! loads, shared_warmup)` encode to the same bytes form one group, the
//! group's warmup is simulated **once**, checkpointed via
//! [`Platform::checkpoint`], and every cell restores from the immutable,
//! shared [`Snapshot`] before applying its [`TreatmentAction`]s and
//! running its measured window. Because restore-then-run is
//! byte-identical to running straight through (see
//! [`checkpoint`](crate::platform::checkpoint)), factoring changes
//! wall-clock time only, never results — [`run_sweep_unshared`] is the
//! reference path the benches diff digests against.

use crate::platform::checkpoint::Snapshot;
use crate::platform::config::{FunctionConfig, PlatformConfig};
use crate::platform::engine::Platform;
use crate::platform::error::PlatformError;
use crate::platform::report::PlatformReport;
use fastg_cluster::FuncId;
use fastg_des::snap::{Snap, SnapWriter};
use fastg_des::{ArenaKey, SimTime};
use fastg_workload::ArrivalProcess;
// Prefix grouping is a once-per-sweep cold path keyed by encoded bytes;
// an ordered map keeps group discovery order-deterministic without a
// hasher. fastg-lint: allow(no-btreemap-hot-path)
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deterministic post-warmup mutation: the *treatment* a grid cell
/// applies after the shared prefix, before its measured window.
#[derive(Debug, Clone)]
pub enum TreatmentAction {
    /// Live-reconfigure the `func_index`-th function's resources.
    Reconfigure {
        /// Index into [`Scenario::functions`].
        func_index: usize,
        /// New SM partition percentage.
        sm_partition: f64,
        /// New guaranteed window fraction.
        quota_request: f64,
        /// New maximum window fraction.
        quota_limit: f64,
    },
    /// Reconcile the `func_index`-th function to a replica count.
    ScaleTo {
        /// Index into [`Scenario::functions`].
        func_index: usize,
        /// Target replica count.
        replicas: usize,
    },
    /// Replace the `func_index`-th function's arrival process.
    SetLoad {
        /// Index into [`Scenario::functions`].
        func_index: usize,
        /// The new open-loop process.
        process: ArrivalProcess,
    },
    /// Crash the first `count` running pods of the `func_index`-th
    /// function (chaos cells).
    KillPods {
        /// Index into [`Scenario::functions`].
        func_index: usize,
        /// How many pods to crash.
        count: usize,
    },
}

/// One named, self-contained platform run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label carried into the sweep result (figure point, grid cell…).
    pub name: String,
    /// Platform construction parameters (nodes, policy, seed, faults…).
    pub config: PlatformConfig,
    /// Functions deployed, in order, before the clock starts.
    pub functions: Vec<FunctionConfig>,
    /// Open-loop arrival processes keyed by index into `functions`.
    pub loads: Vec<(usize, ArrivalProcess)>,
    /// Simulated warmup run *before* the treatment. Scenarios that agree
    /// on `(config, functions, loads, shared_warmup)` share one warmup
    /// simulation under [`run_sweep`]. Zero (the default) disables
    /// sharing for this scenario.
    pub shared_warmup: SimTime,
    /// Post-warmup mutations applied between the shared prefix and the
    /// measured window.
    pub treatment: Vec<TreatmentAction>,
    /// Simulated time to run *after* warmup + treatment before reporting.
    pub duration: SimTime,
}

impl Scenario {
    /// A scenario with no functions and a 1 s duration; chain the
    /// builder methods to fill it in.
    pub fn new(name: impl Into<String>, config: PlatformConfig) -> Self {
        Scenario {
            name: name.into(),
            config,
            functions: Vec::new(),
            loads: Vec::new(),
            shared_warmup: SimTime::ZERO,
            treatment: Vec::new(),
            duration: SimTime::from_secs(1),
        }
    }

    /// Adds a function deployed at construction.
    pub fn function(mut self, fc: FunctionConfig) -> Self {
        self.functions.push(fc);
        self
    }

    /// Attaches an arrival process to the `func_index`-th function.
    pub fn load(mut self, func_index: usize, process: ArrivalProcess) -> Self {
        self.loads.push((func_index, process));
        self
    }

    /// Sets the shareable warmup prefix (see [`Self::shared_warmup`]).
    pub fn warmup(mut self, warmup: SimTime) -> Self {
        self.shared_warmup = warmup;
        self
    }

    /// Appends a post-warmup treatment action.
    pub fn then(mut self, action: TreatmentAction) -> Self {
        self.treatment.push(action);
        self
    }

    /// Sets the simulated run duration (the measured window).
    pub fn duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }

    /// The scenario's prefix identity: the byte encoding of everything
    /// that happens *before* the treatment. Two scenarios with equal
    /// keys are guaranteed to simulate identical warmups — the encoding
    /// covers the full resolved config (seed, tie-break, fault plan…),
    /// every function, every load (including its RNG seed state) and
    /// the warmup length itself.
    pub fn prefix_key(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.config.snap(&mut w);
        self.functions.snap(&mut w);
        w.len_prefix(self.loads.len());
        for (index, process) in &self.loads {
            w.len_prefix(*index);
            process.snap(&mut w);
        }
        self.shared_warmup.snap(&mut w);
        w.finish()
    }

    /// Builds the platform, deploys every function, attaches loads and
    /// runs warmup + treatment + measured window to completion.
    pub fn run(self) -> Result<PlatformReport, PlatformError> {
        self.run_traced().map(|(report, _)| report)
    }

    /// Like [`Self::run`], but also returns the per-event delivery trace
    /// (empty unless [`PlatformConfig::trace_events`] is set). The race
    /// detector uses this to delta-debug a digest divergence to the first
    /// differently-ordered event.
    pub fn run_traced(self) -> Result<(PlatformReport, Vec<String>), PlatformError> {
        let (mut platform, ids) = build_prefix(&self.config, &self.functions, &self.loads)?;
        if self.shared_warmup > SimTime::ZERO {
            platform.run_for(self.shared_warmup);
        }
        apply_treatment(&mut platform, &ids, &self.treatment)?;
        let report = platform.run_for(self.duration);
        Ok((report, platform.event_trace().to_vec()))
    }

    /// Resumes this scenario's cell from a shared warmup snapshot:
    /// restore, apply the treatment, run the measured window.
    fn run_from_snapshot(self, snap: &Snapshot) -> Result<PlatformReport, PlatformError> {
        let mut platform = Platform::from_snapshot(snap)?;
        // Functions deploy in order onto a fresh platform, so ids are
        // dense from zero; the snapshot preserves that numbering.
        let ids: Vec<FuncId> = (0..self.functions.len())
            .map(FuncId::from_index)
            .collect();
        apply_treatment(&mut platform, &ids, &self.treatment)?;
        Ok(platform.run_for(self.duration))
    }
}

/// Builds a platform, deploys `functions` in order and attaches `loads`.
fn build_prefix(
    config: &PlatformConfig,
    functions: &[FunctionConfig],
    loads: &[(usize, ArrivalProcess)],
) -> Result<(Platform, Vec<FuncId>), PlatformError> {
    let mut platform = Platform::new(config.clone());
    let mut ids = Vec::with_capacity(functions.len());
    for fc in functions {
        ids.push(platform.deploy(fc.clone())?);
    }
    for (index, process) in loads {
        let Some(&func) = ids.get(*index) else {
            return Err(PlatformError::UnknownFunction);
        };
        platform.set_load(func, process.clone());
    }
    Ok((platform, ids))
}

/// Applies treatment actions in order.
fn apply_treatment(
    platform: &mut Platform,
    ids: &[FuncId],
    actions: &[TreatmentAction],
) -> Result<(), PlatformError> {
    let resolve = |index: usize| ids.get(index).copied().ok_or(PlatformError::UnknownFunction);
    for action in actions {
        match action {
            TreatmentAction::Reconfigure {
                func_index,
                sm_partition,
                quota_request,
                quota_limit,
            } => {
                platform.reconfigure(
                    resolve(*func_index)?,
                    *sm_partition,
                    *quota_request,
                    *quota_limit,
                )?;
            }
            TreatmentAction::ScaleTo {
                func_index,
                replicas,
            } => platform.scale_to(resolve(*func_index)?, *replicas),
            TreatmentAction::SetLoad {
                func_index,
                process,
            } => platform.set_load(resolve(*func_index)?, process.clone()),
            TreatmentAction::KillPods { func_index, count } => {
                let func = resolve(*func_index)?;
                for pod in platform.pods_of(func).into_iter().take(*count) {
                    platform.kill_pod(pod);
                }
            }
        }
    }
    Ok(())
}

/// What prefix factoring saved in one [`run_sweep`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Distinct warmup prefixes simulated once and shared.
    pub prefixes_shared: usize,
    /// Cells that resumed from a shared snapshot instead of replaying
    /// their own warmup.
    pub cells_resumed: usize,
    /// Total simulated warmup time the sharing avoided (the sum of
    /// `shared_warmup` over resumed cells, minus the one run per group).
    pub warmup_avoided: SimTime,
}

/// One unit of sweep work after factoring.
enum Cell {
    /// Run the whole scenario in one worker (unique prefix, or sharing
    /// disabled).
    Straight(Scenario),
    /// Restore the shared warmup snapshot, then treat + measure.
    Resume(Scenario, Arc<Snapshot>),
}

/// Runs every scenario, `threads` at a time, returning `(name, report)`
/// pairs in the same order as the input grid, with shared warmup
/// prefixes simulated once (see the module docs). `threads = 1` is
/// exactly the sequential loop; any other count produces byte-identical
/// reports. The first failing scenario's error is returned, and a
/// worker panic surfaces as [`PlatformError::Worker`].
pub fn run_sweep(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Result<Vec<(String, PlatformReport)>, PlatformError> {
    run_sweep_stats(scenarios, threads).map(|(results, _)| results)
}

/// [`run_sweep`] without prefix factoring: every scenario replays its
/// own warmup. Same results, more wall-clock — this is the reference
/// path the benches diff digests against to prove factoring is exact.
pub fn run_sweep_unshared(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Result<Vec<(String, PlatformReport)>, PlatformError> {
    fastg_par::try_par_map(scenarios, threads, |_, scenario| {
        let name = scenario.name.clone();
        Ok::<_, PlatformError>((name, scenario.run()?))
    })
}

/// [`run_sweep`], also reporting how much work prefix sharing avoided.
pub fn run_sweep_stats(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Result<(Vec<(String, PlatformReport)>, SweepStats), PlatformError> {
    // Group scenarios by prefix identity. Only scenarios that opted into
    // a warmup can share; groups of one gain nothing and run straight.
    let mut groups: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
    for (i, s) in scenarios.iter().enumerate() {
        if s.shared_warmup > SimTime::ZERO {
            groups.entry(s.prefix_key()).or_default().push(i);
        }
    }
    groups.retain(|_, members| members.len() >= 2);

    // Simulate each shared prefix once (groups fan out over the same
    // worker pool) and seal the result into an immutable snapshot.
    let prefix_jobs: Vec<(Vec<usize>, Scenario)> = groups
        .into_values()
        .map(|members| {
            let template = scenarios[members[0]].clone();
            (members, template)
        })
        .collect();
    let mut stats = SweepStats::default();
    let snapshots = fastg_par::try_par_map(
        prefix_jobs.iter().map(|(_, t)| t.clone()).collect(),
        threads,
        |_, template| {
            let (mut platform, _) =
                build_prefix(&template.config, &template.functions, &template.loads)?;
            platform.run_for(template.shared_warmup);
            Ok::<_, PlatformError>(Arc::new(platform.checkpoint()))
        },
    )?;

    // Assemble the cell list in input order.
    let mut shared_for: Vec<Option<Arc<Snapshot>>> = vec![None; scenarios.len()];
    for ((members, template), snap) in prefix_jobs.iter().zip(&snapshots) {
        stats.prefixes_shared += 1;
        stats.cells_resumed += members.len();
        let resumed_extra = u64::try_from(members.len() - 1).unwrap_or(u64::MAX);
        stats.warmup_avoided += template.shared_warmup * resumed_extra;
        for &i in members {
            shared_for[i] = Some(Arc::clone(snap));
        }
    }
    let cells: Vec<Cell> = scenarios
        .into_iter()
        .zip(shared_for)
        .map(|(scenario, snap)| match snap {
            Some(snap) => Cell::Resume(scenario, snap),
            None => Cell::Straight(scenario),
        })
        .collect();

    let results = fastg_par::try_par_map(cells, threads, |_, cell| match cell {
        Cell::Straight(scenario) => {
            let name = scenario.name.clone();
            Ok::<_, PlatformError>((name, scenario.run()?))
        }
        Cell::Resume(scenario, snap) => {
            let name = scenario.name.clone();
            Ok((name, scenario.run_from_snapshot(&snap)?))
        }
    })?;
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Scenario> {
        [12.0, 24.0]
            .iter()
            .map(|&sm| {
                Scenario::new(
                    format!("resnet-sm{sm}"),
                    PlatformConfig::default()
                        .nodes(1)
                        .warmup(SimTime::from_millis(200))
                        .seed(7),
                )
                .function(
                    FunctionConfig::new("f", "resnet50")
                        .replicas(1)
                        .resources(sm, 0.4, 1.0)
                        .saturating(),
                )
                .duration(SimTime::from_millis(700))
            })
            .collect()
    }

    /// A treatment grid: identical prefix, per-cell reconfigure.
    fn treatment_grid() -> Vec<Scenario> {
        [(12.0, 0.4), (24.0, 0.4), (50.0, 0.8), (100.0, 1.0)]
            .iter()
            .map(|&(sm, quota)| {
                Scenario::new(
                    format!("treat-sm{sm}-q{quota}"),
                    PlatformConfig::default().nodes(1).seed(11),
                )
                .function(
                    FunctionConfig::new("f", "resnet50")
                        .replicas(1)
                        .resources(100.0, 1.0, 1.0)
                        .saturating(),
                )
                .warmup(SimTime::from_millis(400))
                .then(TreatmentAction::Reconfigure {
                    func_index: 0,
                    sm_partition: sm,
                    quota_request: quota,
                    quota_limit: quota,
                })
                .duration(SimTime::from_millis(400))
            })
            .collect()
    }

    #[test]
    fn sweep_returns_input_order_and_matches_sequential() {
        let seq = run_sweep(grid(), 1).expect("sequential sweep");
        let par = run_sweep(grid(), 3).expect("parallel sweep");
        assert_eq!(seq.len(), 2);
        let names: Vec<&str> = par.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["resnet-sm12", "resnet-sm24"]);
        for ((n1, r1), (n2, r2)) in seq.iter().zip(&par) {
            assert_eq!(n1, n2);
            assert_eq!(r1.digest(), r2.digest());
        }
    }

    #[test]
    fn prefix_sharing_is_digest_exact() {
        let (shared, stats) = run_sweep_stats(treatment_grid(), 2).expect("shared sweep");
        let straight = run_sweep_unshared(treatment_grid(), 2).expect("unshared sweep");
        assert_eq!(stats.prefixes_shared, 1);
        assert_eq!(stats.cells_resumed, 4);
        assert_eq!(stats.warmup_avoided, SimTime::from_millis(1200));
        assert_eq!(shared.len(), straight.len());
        for ((n1, r1), (n2, r2)) in shared.iter().zip(&straight) {
            assert_eq!(n1, n2);
            assert_eq!(r1.digest(), r2.digest(), "cell {n1} diverged");
        }
        // The treatment actually differentiates the cells.
        let rps: Vec<f64> = shared
            .iter()
            .map(|(_, r)| r.functions.values().next().unwrap().throughput_rps)
            .collect();
        assert!(rps[0] < rps[3], "quota sweep should spread throughput: {rps:?}");
    }

    #[test]
    fn distinct_prefixes_do_not_share() {
        // Same shape, different seeds → different prefix keys.
        let mut cells = treatment_grid();
        cells[1].config = cells[1].config.clone().seed(12);
        let (_, stats) = run_sweep_stats(cells, 2).expect("sweep");
        assert_eq!(stats.prefixes_shared, 1);
        assert_eq!(stats.cells_resumed, 3);
    }

    #[test]
    fn chaos_treatment_round_trips() {
        let base = || {
            Scenario::new("kill", PlatformConfig::default().nodes(1).seed(5))
                .function(
                    FunctionConfig::new("f", "resnet50")
                        .replicas(2)
                        .resources(25.0, 0.25, 0.25),
                )
                .load(0, ArrivalProcess::poisson(40.0, 3))
                .warmup(SimTime::from_millis(300))
                .then(TreatmentAction::KillPods {
                    func_index: 0,
                    count: 1,
                })
                .duration(SimTime::from_millis(500))
        };
        let (shared, stats) =
            run_sweep_stats(vec![base(), base()], 2).expect("chaos sweep");
        assert_eq!(stats.cells_resumed, 2);
        let straight = run_sweep_unshared(vec![base(), base()], 1).expect("straight");
        assert_eq!(shared[0].1.digest(), straight[0].1.digest());
        assert_eq!(shared[1].1.digest(), straight[1].1.digest());
    }

    #[test]
    fn bad_load_index_is_a_typed_error() {
        let sc = Scenario::new("bad", PlatformConfig::default().nodes(1))
            .load(0, ArrivalProcess::poisson(10.0, 1));
        assert_eq!(sc.run().unwrap_err(), PlatformError::UnknownFunction);
    }

    #[test]
    fn unknown_model_propagates_through_sweep() {
        let sc = Scenario::new("ghost", PlatformConfig::default().nodes(1))
            .function(FunctionConfig::new("f", "not-a-model"));
        match run_sweep(vec![sc], 2) {
            Err(PlatformError::UnknownModel(name)) => assert_eq!(name, "not-a-model"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }
}
