//! Platform and function configuration surfaces.

use super::faults::FaultPlan;
use super::overload::OverloadConfig;
use crate::manager::{SchedPolicy, SharingPolicy};
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{SimTime, TieBreak};
use fastg_gpu::GpuSpec;

/// Cluster-wide configuration. Builder-style setters return `self`.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// GPU model per node (default: V100).
    pub gpu: GpuSpec,
    /// Number of worker nodes (one GPU each).
    pub node_count: usize,
    /// Heterogeneous cluster: explicit per-node GPU specs (e.g. the
    /// instances of a MIG-sliced A100). When set, `gpu`/`node_count` are
    /// ignored.
    pub node_gpus: Option<Vec<GpuSpec>>,
    /// GPU sharing policy.
    pub policy: SharingPolicy,
    /// Quota accounting window. The paper's running example uses 1 s; the
    /// default here is 100 ms, which enforces the same quota fractions at
    /// a granularity compatible with double-digit-millisecond SLOs.
    pub window: SimTime,
    /// Token lease duration (see
    /// [`BackendConfig`](crate::manager::BackendConfig)). `None` picks a
    /// policy-appropriate default: 5 ms for FaST's fine-grained
    /// multi-token rotation, 100 ms for single-token time sharing
    /// (KubeShare-scale slices — the holder keeps the GPU across its
    /// host gaps, which is exactly the inefficiency §5.3 measures).
    pub token_lease: Option<SimTime>,
    /// SM Allocation Adapter global limit (percent).
    pub sm_global_limit: f64,
    /// Whether the model-sharing storage server is used.
    pub model_sharing: bool,
    /// DCGM-style metric sampling period.
    pub sample_interval: SimTime,
    /// Report warm-up: steady-state metrics are computed from this offset.
    pub warmup: SimTime,
    /// Auto-scaler control-loop period.
    pub autoscale_interval: SimTime,
    /// Capacity headroom the auto-scaler plans for (1.15 = provision 15 %
    /// above the predicted rate, absorbing Poisson bursts within a
    /// window).
    pub autoscale_headroom: f64,
    /// Trailing window for gateway arrival-rate prediction.
    pub predict_window: SimTime,
    /// The auto-scaler never drains a function below this replica count.
    pub min_replicas: usize,
    /// Disables rectangle-based admission control: pods land on the
    /// least-loaded node even when the GPU is spatio-temporally
    /// over-subscribed. §5.3's racing/over-subscription experiments and
    /// Figure 1b's extreme-workload setup need this.
    pub oversubscribe: bool,
    /// Seed for all platform randomness (workload seeds derive from it).
    pub seed: u64,
    /// Deterministic fault-injection schedule. `None` (the default) injects
    /// nothing — runs without a plan are byte-identical to builds that
    /// predate fault injection.
    pub fault_plan: Option<FaultPlan>,
    /// Enables the recovery controller: a periodic health tick compares
    /// each function's running replicas against its desired count and
    /// reschedules missing ones on surviving nodes (with exponential
    /// backoff while no capacity exists).
    pub recovery: bool,
    /// Recovery-controller health-check period.
    pub health_interval: SimTime,
    /// Per-function request timeout as a multiple of the function's SLO
    /// (e.g. `Some(3.0)` sheds a request still *queued* 3 SLOs after
    /// arrival). `None` disables timeouts.
    pub request_timeout_factor: Option<f64>,
    /// Maximum times a request may be requeued after losing its pod to a
    /// crash before the gateway sheds it. `None` retries forever.
    pub retry_budget: Option<u32>,
    /// Overload control plane: bounded admission queues, deadline-aware
    /// shedding, per-function circuit breakers and brownout serving.
    /// `None` (the default) keeps the legacy unbounded-queue behaviour.
    pub overload: Option<OverloadConfig>,
    /// Event-coalescing fast-forward: uncontended bursts are advanced
    /// analytically as one macro-event instead of one event per kernel,
    /// with byte-identical reports. On by default; the
    /// `FASTG_FASTFORWARD=0` environment variable (read once, at config
    /// construction) or [`Self::fastforward`] disables it for A/B parity
    /// checks.
    pub fastforward: bool,
    /// Cluster-level fast-forward: a node serving a single steady
    /// constant-rate function schedules no per-request events at all —
    /// whole request cycles are credited analytically and replayed lazily
    /// at the next control-plane touch. Requires `fastforward`; off by
    /// default, opt in via `FASTG_CLUSTER_FF=1` (read once, at config
    /// construction) or [`Self::cluster_fastforward`]. Reports stay
    /// byte-identical to the event-by-event run.
    pub cluster_fastforward: bool,
    /// Pre-reserves the event-queue heap for this many events at platform
    /// construction (`None` keeps organic growth). Fleet benches set it to
    /// skip the doubling reallocations of a 1k-node warm-up.
    pub event_capacity: Option<usize>,
    /// Same-instant event ordering policy ([`TieBreak::Fifo`] by
    /// default). `Lifo` and `SeededShuffle` are deterministic adversarial
    /// permutations used by the race detector to prove handler outcomes
    /// do not depend on tie order; shuffles additionally fold in
    /// [`Self::seed`] at platform construction. Overridable via the
    /// `FASTG_TIEBREAK` environment variable (`fifo`, `lifo`, `shuffle`,
    /// `shuffle:<seed>`; read once, at config construction) or
    /// [`Self::tiebreak`].
    pub tiebreak: TieBreak,
    /// Records a `{time} {event:?}` line for every delivered event. Off
    /// by default (it allocates per event); the race detector turns it on
    /// to delta-debug a digest divergence to the first differing event.
    pub trace_events: bool,
    /// Which placement engine drives node selection and rectangle
    /// packing. [`SchedPolicy::Paper`] (the default) is the digest-pinned
    /// maximal-rects reference; the other policies run on the guillotine
    /// scheduler arena. Overridable via the `FASTG_SCHED` environment
    /// variable (`paper`, `fast`, `demand`, `priority`; read once, at
    /// config construction) or [`Self::scheduler`].
    pub sched: SchedPolicy,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            gpu: GpuSpec::v100(),
            node_count: 1,
            node_gpus: None,
            policy: SharingPolicy::FaST,
            window: SimTime::from_millis(100),
            token_lease: None,
            sm_global_limit: 100.0,
            model_sharing: true,
            sample_interval: SimTime::from_millis(250),
            warmup: SimTime::ZERO,
            autoscale_interval: SimTime::from_secs(2),
            autoscale_headroom: 1.15,
            predict_window: SimTime::from_secs(4),
            min_replicas: 1,
            oversubscribe: false,
            seed: 42,
            fault_plan: None,
            recovery: false,
            health_interval: SimTime::from_millis(500),
            request_timeout_factor: None,
            retry_budget: None,
            overload: None,
            fastforward: std::env::var("FASTG_FASTFORWARD").map_or(true, |v| v != "0"),
            cluster_fastforward: std::env::var("FASTG_CLUSTER_FF").is_ok_and(|v| v != "0"),
            event_capacity: None,
            tiebreak: std::env::var("FASTG_TIEBREAK")
                .ok()
                .as_deref()
                .and_then(TieBreak::parse)
                .unwrap_or(TieBreak::Fifo),
            trace_events: false,
            sched: std::env::var("FASTG_SCHED")
                .map_or(SchedPolicy::Paper, |v| SchedPolicy::from_env_value(&v)),
        }
    }
}

impl PlatformConfig {
    /// Sets the node count.
    pub fn nodes(mut self, n: usize) -> Self {
        self.node_count = n;
        self
    }

    /// Sets the sharing policy.
    pub fn policy(mut self, p: SharingPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Sets the GPU spec for every node.
    pub fn gpu(mut self, g: GpuSpec) -> Self {
        self.gpu = g;
        self
    }

    /// Builds a heterogeneous cluster from explicit per-node GPU specs
    /// (e.g. [`fastg_gpu::MigConfig::instances`]).
    pub fn gpus(mut self, specs: Vec<GpuSpec>) -> Self {
        debug_assert!(!specs.is_empty(), "empty GPU list");
        // An empty list would build a node-less platform; ignore it and
        // keep the homogeneous default instead.
        if !specs.is_empty() {
            self.node_gpus = Some(specs);
        }
        self
    }

    /// The effective per-node GPU list.
    pub fn effective_gpus(&self) -> Vec<GpuSpec> {
        match &self.node_gpus {
            Some(list) => list.clone(),
            None => vec![self.gpu.clone(); self.node_count],
        }
    }

    /// Sets the quota window.
    pub fn window(mut self, w: SimTime) -> Self {
        self.window = w;
        self
    }

    /// Sets the token lease duration (overriding the policy default).
    pub fn token_lease(mut self, d: SimTime) -> Self {
        self.token_lease = Some(d);
        self
    }

    /// The lease duration actually used for the configured policy.
    pub fn effective_token_lease(&self) -> SimTime {
        self.token_lease.unwrap_or(match self.policy {
            crate::manager::SharingPolicy::SingleToken => SimTime::from_millis(100),
            _ => SimTime::from_millis(5),
        })
    }

    /// Enables/disables model sharing.
    pub fn model_sharing(mut self, on: bool) -> Self {
        self.model_sharing = on;
        self
    }

    /// Sets the report warm-up offset.
    pub fn warmup(mut self, w: SimTime) -> Self {
        self.warmup = w;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the metric sampling period.
    pub fn sample_interval(mut self, d: SimTime) -> Self {
        self.sample_interval = d;
        self
    }

    /// Sets the auto-scaler period.
    pub fn autoscale_interval(mut self, d: SimTime) -> Self {
        self.autoscale_interval = d;
        self
    }

    /// Allows spatio-temporal over-subscription (no placement admission).
    pub fn oversubscribe(mut self, on: bool) -> Self {
        self.oversubscribe = on;
        self
    }

    /// Sets the auto-scaler headroom factor.
    pub fn autoscale_headroom(mut self, h: f64) -> Self {
        debug_assert!(h >= 1.0, "headroom below 1 under-provisions by design");
        self.autoscale_headroom = if h.is_finite() { h.max(1.0) } else { 1.0 };
        self
    }

    /// Attaches a fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables/disables the recovery controller.
    pub fn recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Sets the recovery-controller health-check period.
    pub fn health_interval(mut self, d: SimTime) -> Self {
        debug_assert!(d > SimTime::ZERO, "zero health interval");
        self.health_interval = d.max(SimTime::from_micros(1));
        self
    }

    /// Sheds requests still queued `factor × SLO` after arrival.
    pub fn request_timeout_factor(mut self, factor: f64) -> Self {
        debug_assert!(factor > 0.0, "non-positive timeout factor");
        if factor > 0.0 {
            self.request_timeout_factor = Some(factor);
        }
        self
    }

    /// Caps crash-requeues per request before the gateway sheds it.
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Attaches the overload control plane (bounded admission, deadline
    /// shedding, circuit breaking, brownout).
    pub fn overload(mut self, cfg: OverloadConfig) -> Self {
        self.overload = Some(cfg);
        self
    }

    /// Enables the overload control plane with default tuning, or
    /// disables it entirely.
    pub fn overload_control(mut self, on: bool) -> Self {
        self.overload = if on {
            Some(OverloadConfig::default())
        } else {
            None
        };
        self
    }

    /// Enables or disables the event-coalescing fast-forward layer
    /// (overrides the `FASTG_FASTFORWARD` environment default).
    pub fn fastforward(mut self, on: bool) -> Self {
        self.fastforward = on;
        self
    }

    /// Enables or disables cluster-level fast-forward (overrides the
    /// `FASTG_CLUSTER_FF` environment default). Only effective when
    /// [`Self::fastforward`] is also on.
    pub fn cluster_fastforward(mut self, on: bool) -> Self {
        self.cluster_fastforward = on;
        self
    }

    /// Pre-reserves the event-queue heap for `n` events.
    pub fn event_capacity(mut self, n: usize) -> Self {
        self.event_capacity = Some(n);
        self
    }

    /// Sets the same-instant tie-break policy (overrides the
    /// Selects the placement engine (overrides the `FASTG_SCHED`
    /// environment default).
    pub fn scheduler(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// `FASTG_TIEBREAK` environment default).
    pub fn tiebreak(mut self, tiebreak: TieBreak) -> Self {
        self.tiebreak = tiebreak;
        self
    }

    /// Enables or disables per-event trace recording (see
    /// [`Platform::event_trace`](super::Platform::event_trace)).
    pub fn trace_events(mut self, on: bool) -> Self {
        self.trace_events = on;
        self
    }
}

impl Snap for PlatformConfig {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            gpu,
            node_count,
            node_gpus,
            policy,
            window,
            token_lease,
            sm_global_limit,
            model_sharing,
            sample_interval,
            warmup,
            autoscale_interval,
            autoscale_headroom,
            predict_window,
            min_replicas,
            oversubscribe,
            seed,
            fault_plan,
            recovery,
            health_interval,
            request_timeout_factor,
            retry_budget,
            overload,
            fastforward,
            cluster_fastforward,
            event_capacity,
            tiebreak,
            trace_events,
            sched,
        } = self;
        gpu.snap(w);
        w.len_prefix(*node_count);
        node_gpus.snap(w);
        policy.snap(w);
        window.snap(w);
        token_lease.snap(w);
        w.f64(*sm_global_limit);
        model_sharing.snap(w);
        sample_interval.snap(w);
        warmup.snap(w);
        autoscale_interval.snap(w);
        w.f64(*autoscale_headroom);
        predict_window.snap(w);
        w.len_prefix(*min_replicas);
        oversubscribe.snap(w);
        w.u64(*seed);
        fault_plan.snap(w);
        recovery.snap(w);
        health_interval.snap(w);
        request_timeout_factor.snap(w);
        retry_budget.snap(w);
        overload.snap(w);
        fastforward.snap(w);
        cluster_fastforward.snap(w);
        event_capacity.snap(w);
        tiebreak.snap(w);
        trace_events.snap(w);
        sched.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let gpu = GpuSpec::unsnap(r)?;
        let node_count = r.len_prefix()?;
        let node_gpus = Option::<Vec<GpuSpec>>::unsnap(r)?;
        let policy = SharingPolicy::unsnap(r)?;
        let window = SimTime::unsnap(r)?;
        let token_lease = Option::<SimTime>::unsnap(r)?;
        let sm_global_limit = r.f64()?;
        if !(sm_global_limit.is_finite() && sm_global_limit > 0.0) {
            return Err(SnapError::new("config sm limit"));
        }
        let model_sharing = bool::unsnap(r)?;
        let sample_interval = SimTime::unsnap(r)?;
        let warmup = SimTime::unsnap(r)?;
        let autoscale_interval = SimTime::unsnap(r)?;
        let autoscale_headroom = r.f64()?;
        if !(autoscale_headroom.is_finite() && autoscale_headroom >= 1.0) {
            return Err(SnapError::new("config headroom"));
        }
        Ok(PlatformConfig {
            gpu,
            node_count,
            node_gpus,
            policy,
            window,
            token_lease,
            sm_global_limit,
            model_sharing,
            sample_interval,
            warmup,
            autoscale_interval,
            autoscale_headroom,
            predict_window: SimTime::unsnap(r)?,
            min_replicas: r.len_prefix()?,
            oversubscribe: bool::unsnap(r)?,
            seed: r.u64()?,
            fault_plan: Option::unsnap(r)?,
            recovery: bool::unsnap(r)?,
            health_interval: SimTime::unsnap(r)?,
            request_timeout_factor: Option::unsnap(r)?,
            retry_budget: Option::unsnap(r)?,
            overload: Option::unsnap(r)?,
            fastforward: bool::unsnap(r)?,
            cluster_fastforward: bool::unsnap(r)?,
            event_capacity: Option::unsnap(r)?,
            tiebreak: TieBreak::unsnap(r)?,
            trace_events: bool::unsnap(r)?,
            sched: SchedPolicy::unsnap(r)?,
        })
    }
}

/// Per-function deployment configuration.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Function name (e.g. `fastsvc-resnet-q40-p12`).
    pub name: String,
    /// Model zoo name (e.g. `resnet50`).
    pub model: String,
    /// Latency SLO.
    pub slo: SimTime,
    /// Initial replica count.
    pub replicas: usize,
    /// Initial resources: `(sm_partition %, quota_request, quota_limit)`.
    pub resources: (f64, f64, f64),
    /// Closed-loop saturating load instead of an arrival process (used by
    /// the profiler: the pod is re-armed with a new request the moment it
    /// finishes one).
    pub saturate: bool,
}

impl FunctionConfig {
    /// A function serving `model` with defaults: one replica, whole GPU,
    /// 1 s SLO.
    pub fn new(name: &str, model: &str) -> Self {
        FunctionConfig {
            name: name.to_string(),
            model: model.to_string(),
            slo: SimTime::from_secs(1),
            replicas: 1,
            resources: (100.0, 1.0, 1.0),
            saturate: false,
        }
    }

    /// Sets the SLO in milliseconds.
    pub fn slo_ms(mut self, ms: u64) -> Self {
        self.slo = SimTime::from_millis(ms);
        self
    }

    /// Sets the initial replica count.
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Sets the spatio-temporal resources.
    pub fn resources(mut self, sm_partition: f64, quota_request: f64, quota_limit: f64) -> Self {
        self.resources = (sm_partition, quota_request, quota_limit);
        self
    }

    /// Marks the function for closed-loop saturating load.
    pub fn saturating(mut self) -> Self {
        self.saturate = true;
        self
    }

    /// Parses a FaSTFunc manifest (the JSON equivalent of the paper's
    /// Figure 4 CRD): `metadata.name`, the `faasshare/*` resource
    /// annotations, and `spec.{model, replicas, slo_ms}`.
    ///
    /// ```
    /// let manifest = r#"{
    ///   "apiVersion": "fastgshare.caps.in.tum.de/v1",
    ///   "kind": "FaSTFunc",
    ///   "metadata": {
    ///     "name": "fastsvc-rnnt-q30-p24",
    ///     "annotations": {
    ///       "faasshare/sm_partition": "24",
    ///       "faasshare/quota_request": "0.3",
    ///       "faasshare/quota_limit": "0.8"
    ///     }
    ///   },
    ///   "spec": { "model": "rnnt", "replicas": 2, "slo_ms": 500 }
    /// }"#;
    /// let fc = fastgshare::platform::FunctionConfig::from_manifest(manifest).unwrap();
    /// assert_eq!(fc.model, "rnnt");
    /// assert_eq!(fc.replicas, 2);
    /// assert_eq!(fc.resources, (24.0, 0.3, 0.8));
    /// ```
    pub fn from_manifest(json: &str) -> Result<Self, String> {
        let v = fastg_json::Value::parse(json).map_err(|e| format!("invalid JSON: {e}"))?;
        if v["kind"].as_str() != Some("FaSTFunc") {
            return Err(format!(
                "manifest kind must be FaSTFunc, got {:?}",
                v["kind"]
            ));
        }
        let name = v["metadata"]["name"]
            .as_str()
            .ok_or("metadata.name missing")?;
        let model = v["spec"]["model"].as_str().ok_or("spec.model missing")?;
        let annotations = &v["metadata"]["annotations"];
        // Annotations are strings in CRDs (Figure 4); numbers are also
        // accepted for convenience.
        let ann = |key: &str, default: f64| -> Result<f64, String> {
            let val = &annotations[format!("faasshare/{key}")];
            if val.is_null() {
                return Ok(default);
            }
            val.as_str()
                .map(|s| s.parse::<f64>().map_err(|e| format!("faasshare/{key}: {e}")))
                .unwrap_or_else(|| {
                    val.as_f64()
                        .ok_or_else(|| format!("faasshare/{key}: not a number"))
                })
        };
        let sm = ann("sm_partition", 100.0)?;
        let q_req = ann("quota_request", 1.0)?;
        let q_lim = ann("quota_limit", q_req.max(1.0))?;
        let replicas = usize::try_from(v["spec"]["replicas"].as_u64().unwrap_or(1)).unwrap_or(usize::MAX);
        let slo_ms = v["spec"]["slo_ms"].as_u64().unwrap_or(1_000);
        Ok(FunctionConfig::new(name, model)
            .replicas(replicas)
            .resources(sm, q_req, q_lim)
            .slo_ms(slo_ms))
    }
}

impl Snap for FunctionConfig {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            name,
            model,
            slo,
            replicas,
            resources,
            saturate,
        } = self;
        name.snap(w);
        model.snap(w);
        slo.snap(w);
        w.len_prefix(*replicas);
        resources.snap(w);
        saturate.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let name = String::unsnap(r)?;
        let model = String::unsnap(r)?;
        let slo = SimTime::unsnap(r)?;
        let replicas = r.len_prefix()?;
        let resources = <(f64, f64, f64)>::unsnap(r)?;
        if !(resources.0.is_finite() && resources.1.is_finite() && resources.2.is_finite()) {
            return Err(SnapError::new("function resources"));
        }
        Ok(FunctionConfig {
            name,
            model,
            slo,
            replicas,
            resources,
            saturate: bool::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PlatformConfig::default();
        assert_eq!(c.node_count, 1);
        assert_eq!(c.policy, SharingPolicy::FaST);
        assert!(c.window > SimTime::ZERO);
        assert!(c.autoscale_headroom >= 1.0);
    }

    #[test]
    fn builder_chain() {
        let c = PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::Racing)
            .window(SimTime::from_millis(50))
            .model_sharing(false)
            .seed(7);
        assert_eq!(c.node_count, 4);
        assert_eq!(c.policy, SharingPolicy::Racing);
        assert_eq!(c.window, SimTime::from_millis(50));
        assert!(!c.model_sharing);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn function_builder() {
        let f = FunctionConfig::new("fastsvc-rnnt", "rnnt")
            .slo_ms(500)
            .replicas(3)
            .resources(24.0, 0.3, 0.8)
            .saturating();
        assert_eq!(f.slo, SimTime::from_millis(500));
        assert_eq!(f.replicas, 3);
        assert_eq!(f.resources, (24.0, 0.3, 0.8));
        assert!(f.saturate);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn headroom_below_one_rejected() {
        PlatformConfig::default().autoscale_headroom(0.5);
    }

    #[test]
    fn manifest_defaults_apply() {
        let fc = FunctionConfig::from_manifest(
            r#"{"kind":"FaSTFunc","metadata":{"name":"f"},"spec":{"model":"resnet50"}}"#,
        )
        .unwrap();
        assert_eq!(fc.replicas, 1);
        assert_eq!(fc.resources, (100.0, 1.0, 1.0));
        assert_eq!(fc.slo, SimTime::from_millis(1_000));
    }

    #[test]
    fn manifest_numeric_annotations_accepted() {
        let fc = FunctionConfig::from_manifest(
            r#"{"kind":"FaSTFunc",
                "metadata":{"name":"f","annotations":{
                    "faasshare/sm_partition":12,
                    "faasshare/quota_request":0.4,
                    "faasshare/quota_limit":0.9}},
                "spec":{"model":"resnet50","replicas":3,"slo_ms":69}}"#,
        )
        .unwrap();
        assert_eq!(fc.resources, (12.0, 0.4, 0.9));
        assert_eq!(fc.replicas, 3);
        assert_eq!(fc.slo, SimTime::from_millis(69));
    }

    #[test]
    fn manifest_rejects_wrong_kind() {
        let err = FunctionConfig::from_manifest(
            r#"{"kind":"Deployment","metadata":{"name":"f"},"spec":{"model":"resnet50"}}"#,
        );
        assert!(err.is_err());
        assert!(FunctionConfig::from_manifest("not json").is_err());
        assert!(FunctionConfig::from_manifest(
            r#"{"kind":"FaSTFunc","metadata":{},"spec":{"model":"x"}}"#
        )
        .is_err());
    }
}
