//! The platform engine: the event loop wiring every component together.

use crate::manager::{
    BackendConfig, BurstEstimator, FastBackend, PodClass, RequestOutcome, SchedPolicy,
    SharingPolicy,
};
use crate::modelshare::{footprint, ModelStorageServer, StoreLib, DEFAULT_CTX_OVERHEAD};
use crate::platform::checkpoint::Snapshot;
use crate::platform::config::{FunctionConfig, PlatformConfig};
use crate::platform::error::PlatformError;
use crate::platform::faults::FaultKind;
use crate::platform::overload::{
    AdmitDecision, BreakerAction, BreakerState, CircuitBreaker, OverloadConfig,
};
use crate::platform::report::{FunctionReport, NodeReport, PlatformReport};
use crate::profiler::ProfileDb;
use crate::scheduler::{
    heuristic_scale, ArenaScheduler, ConfigPoint, NodeSelector, PlacementPolicy, RunningPod,
    ScaleAction, SchedStats, Scheduler,
};
use fastg_cluster::{
    Cluster, FuncId, FaSTFuncSpec, Gateway, NodeId, NodeState, PodId, PodState, Request,
    RequestId, ResourceSpec,
};
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{
    sanitizer, ArenaKey, CancelToken, EventQueue, IdArena, IdSet, SimTime, Simulation, TimeSeries,
    World,
};
use fastg_gpu::{ClientId, KernelDesc, KernelId, MpsMode};
use fastg_models::{zoo, InferenceRun, ModelProfile, StageOp};
use fastg_workload::{ArrivalProcess, RateMeter, SloTracker};
// Report assembly is the one cold path still keyed by ordered maps (the
// report type is part of the public API). fastg-lint: allow(no-btreemap-hot-path)
use std::collections::BTreeMap;
use std::sync::Arc;

/// Events driving the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A request arrives at the gateway for this function.
    Arrival(FuncId),
    /// A pod finished a host-side phase of its active request.
    HostDone(PodId),
    /// A kernel completed on a node's GPU.
    KernelFinish(NodeId, KernelId),
    /// A fast-forwarded burst reached its analytic end: one macro-event
    /// standing in for every per-kernel finish of an uncontended burst.
    /// Scheduled cancellably; every contention change cancels it and
    /// falls back to per-kernel stepping.
    BurstFastForward(NodeId, PodId),
    /// A quota window closed on a node.
    WindowReset(NodeId),
    /// The auto-scaler control loop runs.
    ScaleTick,
    /// DCGM-style metric sampling.
    MetricsSample,
    /// A scheduled fault fires (index into the configured
    /// [`FaultPlan`](crate::platform::FaultPlan)).
    Fault(usize),
    /// The recovery controller's periodic health check runs.
    HealthTick,
    /// A request's queueing deadline passed; shed it if still queued.
    RequestTimeout(FuncId, RequestId),
    /// The overload control plane's periodic breaker evaluation: every
    /// function's circuit breaker advances one window (trip, probe,
    /// close, brownout enter/exit). Scheduled only when overload control
    /// is configured, so legacy runs see an identical event stream.
    BreakerTick,
    /// A node's batched token-dispatch pass: grants are decided once per
    /// node per instant, after every same-instant request/release has
    /// landed, so who wins a token never depends on same-instant event
    /// delivery order. Scheduled (deduplicated) by any operation that
    /// frees capacity or queues a waiter.
    Dispatch(NodeId),
}

impl Event {
    /// Same-instant delivery rank (see [`EventQueue::set_classifier`]).
    ///
    /// Cross-kind order at a shared instant is part of the platform's
    /// semantics, so it is pinned here instead of left to insertion
    /// order: faults preempt everything, then the control-plane ticks in
    /// a fixed cadence (scaler, health, metrics, breaker, quota window —
    /// matching the order their periodic reschedules produce under FIFO
    /// with the default intervals), and finally the data-plane "work"
    /// events. All work events share one class: their relative order
    /// stays insertion-seq under FIFO (preserving fast-forward's
    /// materialized-finish semantics exactly), and the tie-break
    /// perturbation policies shuffle only within this class — which is
    /// precisely the orderings the race detector asserts are
    /// digest-neutral.
    fn class(&self) -> u8 {
        match self {
            Event::Fault(_) => 0,
            Event::ScaleTick => 1,
            Event::HealthTick => 2,
            Event::MetricsSample => 3,
            Event::BreakerTick => 4,
            Event::WindowReset(_) => 5,
            Event::Arrival(_)
            | Event::HostDone(_)
            | Event::KernelFinish(_, _)
            | Event::BurstFastForward(_, _)
            | Event::RequestTimeout(_, _) => 6,
            Event::Dispatch(_) => 7,
        }
    }
}

struct FuncRt {
    spec: FaSTFuncSpec,
    model: Arc<ModelProfile>,
    resources: ResourceSpec,
    slo: SloTracker,
    completions: RateMeter,
    load: Option<ArrivalProcess>,
    saturate: bool,
    replica_series: TimeSeries,
    /// Replica count the recovery controller restores after failures.
    desired_replicas: usize,
    /// When the controller first saw this function short of replicas.
    outage_since: Option<SimTime>,
    /// Exponential-backoff state for failed recovery attempts.
    backoff_exp: u32,
    backoff_until: SimTime,
    /// Time-to-recovery of every healed outage.
    recoveries: Vec<SimTime>,
    /// EWMA service-time estimate feeding deadline-aware shedding.
    service_est: BurstEstimator,
    /// SLO-met completions (goodput).
    goodput: RateMeter,
    /// Service time burned on completions that missed their SLO.
    wasted_service: SimTime,
    /// Requests admitted while serving browned-out.
    browned_out: u64,
    /// The function's circuit breaker (overload control plane).
    breaker: CircuitBreaker,
    /// Cancellation token of the function's pending self-timed arrival
    /// event. Cluster fast-forward cancels it on steady entry (virtual
    /// arrivals replace the chain) and re-homes it on exit; `set_load`
    /// cancels it before installing a new process.
    arrival_token: Option<CancelToken>,
    /// Full-quota resources to restore when brownout ends. The snapshot
    /// is taken at brownout entry; an external reconfigure during
    /// brownout is superseded by the restore.
    normal_resources: ResourceSpec,
}

struct ActiveReq {
    req: Request,
    /// When service began (wasted-work accounting excludes queue wait).
    started: SimTime,
    run: InferenceRun,
    /// Stage index (into the run's profile) of a burst waiting for a
    /// token grant. Kept as an index so the hot path never clones the
    /// kernel vector (see [`StageOp`]).
    pending_stage: Option<usize>,
    outstanding: usize,
    burst_gpu_time: SimTime,
    waiting_token: bool,
    /// Cancellation token of the burst's pending macro-event, when the
    /// burst was coalesced by the fast-forward layer.
    ff: Option<CancelToken>,
}

/// Snapshot taken at a qualifying completion `C0`: one full request cycle
/// is then measured against the next completion `C1 = C0 + gap` before the
/// node enters the steady regime.
struct ArmedCycle {
    pod: PodId,
    /// Arrival time of the request completing at `C0`.
    arrival: SimTime,
    /// `C0` itself.
    completion: SimTime,
    busy: SimTime,
    occ_raw: f64,
    kernels: u64,
    client_busy: SimTime,
    q_used: SimTime,
    epochs: u64,
    tokens: u64,
    /// Node event count at `C0` (cycle event cost = delta + 1 arrival).
    events: u64,
}

/// The verified template cycle of a steady node: every counter delta one
/// request cycle contributes, all exact integer quantities, so `k` cycles
/// credit in closed form bit-identically to replaying `k` real cycles.
struct SteadyCycle {
    func: FuncId,
    pod: PodId,
    client: ClientId,
    /// Constant inter-arrival gap (strictly greater than `latency`).
    gap: SimTime,
    /// Per-request latency == service time (the queue is always empty).
    latency: SimTime,
    /// Arrival time of the first cycle not yet credited.
    next_arrival: SimTime,
    /// Whether the template cycle met its SLO.
    met: bool,
    d_busy: SimTime,
    d_occ_raw: f64,
    d_kernels: u64,
    d_client_busy: SimTime,
    d_q_used: SimTime,
    d_epochs: u64,
    d_tokens: u64,
    /// Events one real cycle delivers (coalescing-ratio accounting).
    cycle_events: u64,
}

/// Cluster fast-forward node-state lattice: `Inactive → Armed → Steady`,
/// with `Resuming` bridging a materialized catch-up request back into
/// `Steady` without re-measuring (nothing about the timeline changed).
enum NodePhase {
    /// Node schedules real events; no cycle measurement in progress.
    Inactive,
    /// First qualifying completion seen; measuring one template cycle.
    Armed(ArmedCycle),
    /// No per-request events scheduled: cycles credit analytically.
    Steady(SteadyCycle),
    /// One real request (materialized by an exit) is in flight; its
    /// completion at `expect + latency` re-enters `Steady` directly.
    Resuming { cycle: SteadyCycle, expect: SimTime },
}

struct PodRt {
    func: FuncId,
    node: NodeId,
    /// The pod's MPS client id, resolved once at creation so the
    /// per-burst launch path skips the cluster pod-table lookup.
    client: ClientId,
    active: Option<ActiveReq>,
    storelib: Option<StoreLib>,
    bound_rect: bool,
    /// A crashed pod whose kernels are still draining on the GPU: the
    /// number of outstanding kernel completions before final teardown.
    zombie: Option<usize>,
}

/// The [`World`] implementation composing cluster, GPUs, manager,
/// scheduler, model sharing and workloads.
pub struct Engine {
    cfg: PlatformConfig,
    cluster: Cluster,
    gateway: Gateway,
    backends: IdArena<NodeId, FastBackend>,
    stores: IdArena<NodeId, ModelStorageServer>,
    /// The placement engine behind the pluggable [`Scheduler`] trait:
    /// the paper's maximal-rects reference ([`NodeSelector`]) or a
    /// guillotine-arena policy ([`ArenaScheduler`]), per
    /// [`PlatformConfig::sched`].
    selector: Box<dyn Scheduler>,
    funcs: IdArena<FuncId, FuncRt>,
    pods: IdArena<PodId, PodRt>,
    autoscale_db: Option<ProfileDb>,
    next_func: u32,
    next_synth: u64,
    unschedulable: u64,
    killed: u64,
    faults_injected: u64,
    /// Bursts coalesced into a single macro-event so far.
    ff_bursts: u64,
    /// Kernel completions those bursts covered (the per-kernel events the
    /// fast-forward layer never had to schedule).
    ff_coalesced_kernels: u64,
    /// Reusable buffer of `(finish_at, KernelFinish)` pairs built while
    /// launching a burst, so a multi-kernel burst costs zero steady-state
    /// allocations before its batched heap push.
    burst_scratch: Vec<(SimTime, Event)>,
    /// Reusable buffer for kernels admitted when a completion frees SMs
    /// (the hottest event in the simulation).
    started_scratch: Vec<fastg_gpu::KernelStart>,
    /// Nodes with a batched [`Event::Dispatch`] pass already scheduled
    /// for the current instant (deduplication set; see
    /// [`Engine::poke_dispatch`]).
    dispatch_pending: IdSet<NodeId>,
    /// Cluster fast-forward phase per node (indexed by `NodeId`).
    node_phase: Vec<NodePhase>,
    /// Per-node count of delivered data-plane events (cycle measurement).
    node_events: Vec<u64>,
    /// Steady cycles credited analytically so far.
    ff_cluster_cycles: u64,
    /// Events those cycles would have delivered (never scheduled).
    ff_cluster_events_coalesced: u64,
    /// Per-event `{time} {event}` lines when `cfg.trace_events` is set
    /// (the race detector's delta-debugging input); empty otherwise.
    trace: Vec<String>,
}

/// Builds the placement engine a config selects. Factored out of
/// [`Engine::new`] because snapshot restore must reconstruct the same
/// engine before handing it its captured state: policy identity is
/// config, not snapshot payload (see [`Scheduler::snap_state`]).
fn make_selector(cfg: &PlatformConfig) -> Box<dyn Scheduler> {
    let time_sharing = matches!(cfg.policy, SharingPolicy::SingleToken);
    if cfg.sched.uses_arena() {
        Box::new(ArenaScheduler::new(cfg.sched, time_sharing))
    } else {
        let placement = if time_sharing {
            PlacementPolicy::TimeSharingOnly
        } else {
            PlacementPolicy::MaximalRectangles
        };
        Box::new(NodeSelector::new(placement))
    }
}

impl Engine {
    fn new(cfg: PlatformConfig) -> Self {
        let mut cluster = Cluster::new();
        let mode = match cfg.policy {
            SharingPolicy::Exclusive => MpsMode::Exclusive,
            _ => MpsMode::Shared,
        };
        let nodes: Vec<NodeId> = cfg
            .effective_gpus()
            .into_iter()
            .map(|spec| cluster.add_node(spec, mode))
            .collect();
        let mut selector = make_selector(&cfg);
        let mut backends = IdArena::new();
        let mut stores = IdArena::new();
        for &n in &nodes {
            selector.add_gpu(n);
            backends.insert(
                n,
                FastBackend::new(BackendConfig {
                    policy: cfg.policy,
                    window: cfg.window,
                    token_lease: cfg.effective_token_lease(),
                    sm_global_limit: cfg.sm_global_limit,
                    deferred_dispatch: true,
                    ..BackendConfig::default()
                }),
            );
            stores.insert(n, ModelStorageServer::new(DEFAULT_CTX_OVERHEAD));
        }
        let node_phase = nodes.iter().map(|_| NodePhase::Inactive).collect();
        let node_events = vec![0; nodes.len()];
        Engine {
            cfg,
            cluster,
            gateway: Gateway::new(),
            backends,
            stores,
            selector,
            funcs: IdArena::new(),
            pods: IdArena::new(),
            autoscale_db: None,
            next_func: 0,
            next_synth: 1 << 60,
            unschedulable: 0,
            killed: 0,
            faults_injected: 0,
            ff_bursts: 0,
            ff_coalesced_kernels: 0,
            burst_scratch: Vec::new(),
            started_scratch: Vec::new(),
            dispatch_pending: IdSet::new(),
            node_phase,
            node_events,
            ff_cluster_cycles: 0,
            ff_cluster_events_coalesced: 0,
            trace: Vec::new(),
        }
    }

    // ----- deployment -------------------------------------------------

    fn deploy(
        &mut self,
        now: SimTime,
        fc: &FunctionConfig,
        queue: &mut EventQueue<Event>,
    ) -> Result<FuncId, PlatformError> {
        let model = zoo::by_name(&fc.model)
            .ok_or_else(|| PlatformError::UnknownModel(fc.model.clone()))?;
        let (sm, q_req, q_lim) = fc.resources;
        let resources = ResourceSpec::new(sm, q_req, q_lim, model.memory.total());
        let id = FuncId(self.next_func);
        self.next_func += 1;
        self.gateway.register_func(id);
        if let Some(o) = &self.cfg.overload {
            self.gateway.set_queue_capacity(id, Some(o.queue_capacity));
        }
        self.funcs.insert(
            id,
            FuncRt {
                spec: FaSTFuncSpec::new(&fc.name, &fc.model, fc.slo),
                model: Arc::new(model),
                resources,
                slo: SloTracker::new(fc.slo),
                completions: RateMeter::new(),
                load: None,
                saturate: fc.saturate,
                replica_series: TimeSeries::new(),
                desired_replicas: fc.replicas,
                outage_since: None,
                backoff_exp: 0,
                backoff_until: SimTime::ZERO,
                recoveries: Vec::new(),
                service_est: BurstEstimator::new(BurstEstimator::default_alpha()),
                goodput: RateMeter::new(),
                wasted_service: SimTime::ZERO,
                browned_out: 0,
                breaker: CircuitBreaker::new(),
                arrival_token: None,
                normal_resources: resources,
            },
        );
        for _ in 0..fc.replicas {
            self.create_pod(now, id, resources, queue)?;
        }
        Ok(id)
    }

    /// Creates one pod: node selection, cluster/MPS/memory setup, model
    /// sharing attach, rectangle binding, backend registration, gateway
    /// routing, and (for saturating functions) the first request.
    fn create_pod(
        &mut self,
        now: SimTime,
        func: FuncId,
        resources: ResourceSpec,
        queue: &mut EventQueue<Event>,
    ) -> Result<PodId, PlatformError> {
        // A new pod changes routing and contention: replay every steady
        // node back onto the event queue before placement looks around.
        self.steady_exit_all(now, false, queue);
        let rt = self.funcs.get(func).ok_or(PlatformError::UnknownFunction)?;
        let sharing = self.cfg.model_sharing;
        let mem = &rt.model.memory;
        let model_name = rt.spec.model.clone();
        let pod_bytes = footprint::pod_reservation(mem, sharing);
        let weights = mem.weights_bytes;
        let saturate = rt.saturate;

        // Memory feasibility per node: the pod's private reservation plus,
        // if this node's store does not yet hold the model, the shared
        // weights + storage context.
        let mut extra_per_node: Vec<u64> = vec![0; self.node_events.len()];
        for n in self.cluster.node_ids() {
            if sharing && self.stores[n].model_bytes(&model_name) == 0 {
                extra_per_node[n.index()] =
                    footprint::server_reservation(mem, DEFAULT_CTX_OVERHEAD);
            }
        }
        let cluster_ref = &self.cluster;
        let mut mem_fits = |n: NodeId| {
            cluster_ref
                .node(n)
                .map(|node| {
                    node.gpu.memory().free_bytes()
                        >= pod_bytes + extra_per_node.get(n.index()).copied().unwrap_or(0)
                })
                .unwrap_or(false)
        };

        // Node selection: Algorithm 2 best fit, or least-loaded when
        // over-subscription is allowed.
        let node = if self.cfg.oversubscribe {
            self.cluster
                .node_ids()
                .into_iter()
                .filter(|&n| mem_fits(n))
                .min_by_key(|&n| (self.cluster.pods_on(n).len(), n))
        } else {
            self.selector.select_node(&resources, &mut mem_fits)
        };
        let Some(node) = node else {
            self.unschedulable += 1;
            return Err(PlatformError::NoNodeFits);
        };

        // Effective spec for MPS registration: policies without spatial
        // partitioning register at 100 % active threads.
        let eff_sm = if self.cfg.policy.uses_partitions() {
            resources.sm_partition
        } else {
            100.0
        };
        let eff = ResourceSpec::new(eff_sm, resources.quota_request, resources.quota_limit, resources.gpu_mem);
        let pod = self.cluster.create_pod(now, node, func, eff, pod_bytes)?;
        let client = self.cluster.pod(pod)?.client;

        // The new client's SM cap may push the node out of the capped
        // regime; fast-forwarded schedules are only exact inside it, so
        // any in-flight macro-event on this node must be invalidated
        // before the pod can contend.
        let regime_ok = self
            .cluster
            .node(node)
            .map(|n| n.gpu.ff_regime_ok())
            .unwrap_or(true);
        if !regime_ok {
            self.ff_break_node(now, node, queue);
        }

        // Model sharing: attach the weights through the store library.
        let storelib = if sharing && weights > 0 {
            let mut lib = StoreLib::new();
            let store = self
                .stores
                .get_mut(node)
                .ok_or(PlatformError::Internal("store missing for node"))?;
            let gpu_mem = self.cluster.node_mut(node)?.gpu.memory_mut();
            lib.attach(store, gpu_mem, &model_name, &[("weights", weights)])?;
            Some(lib)
        } else {
            None
        };

        // Spatio-temporal rectangle binding (admission already checked).
        let bound_rect = if self.cfg.oversubscribe {
            false
        } else {
            self.selector
                .bind(node, pod, &resources)
                .map(|_| true)
                .unwrap_or(false)
        };

        // Backend table row (the FaSTPod controller's spec sync). Under
        // the priority co-location policy, pods that burst past their
        // request (quota_request < quota_limit) run as best-effort.
        let class = if self.cfg.sched == SchedPolicy::PriorityColocate
            && resources.quota_request < resources.quota_limit - 1e-9
        {
            PodClass::BestEffort
        } else {
            PodClass::LatencyCritical
        };
        if let Some(backend) = self.backends.get_mut(node) {
            backend.register_class(pod, resources, class);
        } else {
            debug_assert!(false, "backend per node");
        }

        self.gateway.register_pod(func, pod);
        self.pods.insert(
            pod,
            PodRt {
                func,
                node,
                client,
                active: None,
                storelib,
                bound_rect,
                zombie: None,
            },
        );
        if saturate {
            let req = self.synth_request(now, func);
            self.assign_request(now, pod, req, queue);
        } else if let Some(req) = self.pull_next(now, func, pod) {
            // Backlog may have accumulated while no pod was routable
            // (e.g. every replica crashed); a new pod picks it up
            // immediately instead of waiting for an arrival.
            self.assign_request(now, pod, req, queue);
        }
        Ok(pod)
    }

    fn synth_request(&mut self, now: SimTime, func: FuncId) -> Request {
        let id = RequestId(self.next_synth);
        self.next_synth += 1;
        Request {
            id,
            func,
            arrived: now,
            deadline: SimTime::MAX,
        }
    }

    /// Starts draining a pod; deletes it immediately when idle.
    fn drain_pod(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        // Removing a replica changes routing: replay steady nodes first.
        self.steady_exit_all(now, false, queue);
        let Some(rt) = self.pods.get(pod) else {
            return;
        };
        if rt.zombie.is_some() {
            return; // already being torn down by the crash path
        }
        let func = rt.func;
        self.gateway.deregister_pod(func, pod);
        let _ = self.cluster.begin_terminate(pod);
        if self.pods[pod].active.is_none() {
            self.delete_pod(now, pod, queue);
        }
    }

    fn delete_pod(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        let Some(mut rt) = self.pods.remove(pod) else {
            return;
        };
        debug_assert!(rt.active.is_none(), "deleting pod with a request in flight");
        let node = rt.node;
        let grants = match self.backends.get_mut(node) {
            Some(b) => b.deregister(now, pod),
            None => {
                debug_assert!(false, "backend per node");
                Vec::new()
            }
        };
        if let Some(lib) = rt.storelib.as_mut() {
            if let (Some(store), Ok(n)) = (self.stores.get_mut(node), self.cluster.node_mut(node))
            {
                lib.detach(store, n.gpu.memory_mut());
            } else {
                debug_assert!(false, "store and node outlive their pods");
            }
        }
        if rt.bound_rect {
            self.selector.release(node, pod);
        }
        let deleted = self.cluster.delete_pod(pod);
        debug_assert!(deleted.is_ok(), "pod exists in cluster");
        self.process_grants(now, &grants, queue);
        self.poke_dispatch(now, node, queue);
    }

    /// Live FaSTPod spec sync (§3.2: resource configurations are filled
    /// by the profiler/scheduler and synchronized to the backend table):
    /// updates the function's default resources and re-applies partition,
    /// quotas, MPS limit and rectangle binding to every running pod.
    fn reconfigure(
        &mut self,
        now: SimTime,
        func: FuncId,
        resources: ResourceSpec,
        queue: &mut EventQueue<Event>,
    ) -> Result<(), PlatformError> {
        resources.validate();
        // Quota/partition changes alter cycle timing: no steady node may
        // coast through them.
        self.steady_exit_all(now, false, queue);
        let rt = self
            .funcs
            .get_mut(func)
            .ok_or(PlatformError::UnknownFunction)?;
        rt.resources = resources;
        let eff_sm = if self.cfg.policy.uses_partitions() {
            resources.sm_partition
        } else {
            100.0
        };
        // Repartitioning changes contention: every fast-forwarded burst
        // on an affected node (this function's or a neighbour's) falls
        // back to per-kernel stepping before MPS caps move.
        let mut touched: Vec<NodeId> = Vec::new();
        for pod in self.cluster.running_pods_of(func) {
            let node = self.pods[pod].node;
            if !touched.contains(&node) {
                touched.push(node);
            }
        }
        for node in touched {
            self.ff_break_node(now, node, queue);
        }
        for pod in self.cluster.running_pods_of(func) {
            let node = self.pods[pod].node;
            let (client, old) = self.cluster.pod(pod).map(|p| (p.client, p.resources))?;
            // MPS partition: applies from the pod's next kernel launch.
            let gpu = &mut self.cluster.node_mut(node)?.gpu;
            gpu.set_partition(client, eff_sm)?;
            self.cluster.pod_mut(pod)?.resources =
                ResourceSpec::new(eff_sm, resources.quota_request, resources.quota_limit, resources.gpu_mem);
            // Backend table row (quotas take effect within this window).
            self.backends
                .get_mut(node)
                .ok_or(PlatformError::Internal("backend missing for node"))?
                .update_spec(pod, resources);
            // Rectangle binding: swap to the new shape if it fits; keep
            // the old reservation otherwise (conservative).
            if self.pods[pod].bound_rect {
                self.selector.release(node, pod);
                if self.selector.bind(node, pod, &resources).is_none() {
                    let restored = self
                        .selector
                        .bind(node, pod, &old)
                        .is_some();
                    debug_assert!(restored, "freed rectangle must re-bind");
                }
            }
        }
        Ok(())
    }

    /// Failure injection: the pod crashes right now. Its in-flight
    /// request returns to the gateway (keeping its arrival time, so the
    /// retry latency hits the SLO accounting); kernels already resident
    /// on the GPU drain as a "zombie" before final teardown, exactly as a
    /// dead process's launched work completes on real hardware.
    fn kill_pod(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) -> bool {
        self.steady_exit_all(now, false, queue);
        let Some(rt) = self.pods.get_mut(pod) else {
            return false;
        };
        if rt.zombie.is_some() {
            return false; // already dying
        }
        let func = rt.func;
        let node = rt.node;
        self.killed += 1;
        // An in-flight fast-forwarded burst must be broken back to exact
        // per-kernel state before the corpse is inspected: the
        // materialized mid-flight kernel (and the requeued remainder)
        // drain as the zombie, and `outstanding` is reconciled first.
        self.ff_break_pod(now, pod, queue);
        self.gateway.deregister_pod(func, pod);
        // The cluster must stop counting the pod as Running right away —
        // otherwise reconciliation would refuse to create replacements
        // while the corpse's kernels drain.
        let _ = self.cluster.begin_terminate(pod);
        let grants = match self.backends.get_mut(node) {
            Some(b) => b.force_deregister(now, pod),
            None => {
                debug_assert!(false, "backend per node");
                Vec::new()
            }
        };
        // Salvage the request, remember how many kernels must drain.
        let mut release_rect = false;
        let (lost_req, outstanding) = match self.pods.get_mut(pod) {
            Some(rt) => {
                if rt.bound_rect {
                    rt.bound_rect = false;
                    release_rect = true;
                }
                let salvaged = match rt.active.take() {
                    Some(a) => (Some(a.req), a.outstanding),
                    None => (None, 0),
                };
                if salvaged.1 > 0 {
                    rt.zombie = Some(salvaged.1);
                }
                salvaged
            }
            None => (None, 0), // unreachable: presence checked above
        };
        if release_rect {
            self.selector.release(node, pod);
        }
        if outstanding == 0 {
            self.teardown_dead_pod(pod);
        }
        // Retry the lost request (synthetic saturating requests are just
        // dropped; a fresh one spawns on whichever pod serves next).
        if let Some(req) = lost_req {
            self.retry_or_shed(now, req, queue);
        }
        self.mark_outage(now, func);
        self.process_grants(now, &grants, queue);
        self.poke_dispatch(now, node, queue);
        true
    }

    /// Requeues a request lost to a crash, unless it is synthetic or its
    /// retry budget is spent (then the gateway sheds it).
    fn retry_or_shed(&mut self, now: SimTime, req: Request, queue: &mut EventQueue<Event>) {
        if req.id.0 >= 1 << 60 {
            return; // synthetic saturating request: just dropped
        }
        // Every call here is a crash-lost request: feed the breaker's
        // failure counter so a dying node fast-fails instead of queueing.
        if self.cfg.overload.is_some() {
            if let Some(frt) = self.funcs.get_mut(req.func) {
                frt.breaker.on_failure(req.id.0);
            }
        }
        if let Some(budget) = self.cfg.retry_budget {
            if self.gateway.retries_of(&req) >= budget {
                self.gateway.drop_request(&req);
                return;
            }
        }
        if let Some(next_pod) = self.gateway.requeue(req) {
            self.assign_request(now, next_pod, req, queue);
        }
    }

    /// Opens an outage window for the recovery controller when a function
    /// drops below its desired replica count.
    fn mark_outage(&mut self, now: SimTime, func: FuncId) {
        if !self.cfg.recovery {
            return;
        }
        let running = self.cluster.running_pods_of(func).len();
        if let Some(rt) = self.funcs.get_mut(func) {
            if running < rt.desired_replicas && rt.outage_since.is_none() {
                rt.outage_since = Some(now);
            }
        }
    }

    /// Final teardown of a crashed pod once no kernels remain resident.
    fn teardown_dead_pod(&mut self, pod: PodId) {
        let Some(mut rt) = self.pods.remove(pod) else {
            return;
        };
        let node = rt.node;
        if let Some(lib) = rt.storelib.as_mut() {
            if let (Some(store), Ok(n)) = (self.stores.get_mut(node), self.cluster.node_mut(node))
            {
                lib.detach(store, n.gpu.memory_mut());
            } else {
                debug_assert!(false, "store and node outlive their pods");
            }
        }
        let deleted = self.cluster.delete_pod(pod);
        debug_assert!(deleted.is_ok(), "pod exists in cluster");
    }

    // ----- fault injection & recovery ---------------------------------

    /// Node-level failure: the node powers off. Every pod on it dies
    /// immediately — resident kernels abort with the hardware, so unlike
    /// a pod crash there is no zombie drain. The node's backend and model
    /// store are replaced with fresh instances, its GPU leaves the
    /// placement pool, and each lost in-flight request retries on a
    /// surviving replica (or is shed once over its retry budget).
    fn crash_node(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<Event>) -> bool {
        if !matches!(self.cluster.node_state(node), Ok(s) if s != NodeState::Down) {
            return false;
        }
        self.steady_exit_all(now, false, queue);
        // Hardware teardown: marks the node Down, hard-resets its GPU and
        // removes all its pods from the cluster.
        let Ok(dead) = self.cluster.crash_node(now, node) else {
            debug_assert!(false, "node is up (state checked above)");
            return false;
        };
        let mut lost_reqs = Vec::new();
        let mut affected = Vec::new();
        for pod in &dead {
            self.gateway.deregister_pod(pod.func, pod.id);
            if let Some(mut rt) = self.pods.remove(pod.id) {
                if !affected.contains(&rt.func) {
                    affected.push(rt.func);
                }
                if let Some(a) = rt.active.take() {
                    // The device's hard reset already aborted any
                    // fast-forward timeline; only the macro-event in the
                    // queue is left to revoke.
                    if let Some(token) = a.ff {
                        queue.cancel(token);
                    }
                    lost_reqs.push(a.req);
                }
            }
            self.killed += 1;
        }
        // Control-plane teardown: rectangle bindings, backend table and
        // model store die with the node.
        self.selector.remove_gpu(node);
        self.backends.insert(
            node,
            FastBackend::new(BackendConfig {
                policy: self.cfg.policy,
                window: self.cfg.window,
                token_lease: self.cfg.effective_token_lease(),
                sm_global_limit: self.cfg.sm_global_limit,
                deferred_dispatch: true,
                ..BackendConfig::default()
            }),
        );
        self.stores
            .insert(node, ModelStorageServer::new(DEFAULT_CTX_OVERHEAD));
        for req in lost_reqs {
            self.retry_or_shed(now, req, queue);
        }
        for func in affected {
            self.mark_outage(now, func);
        }
        true
    }

    /// Fires entry `index` of the configured fault plan.
    fn on_fault(&mut self, now: SimTime, index: usize, queue: &mut EventQueue<Event>) {
        let Some(&ev) = self
            .cfg
            .fault_plan
            .as_ref()
            .and_then(|p| p.events().get(index))
        else {
            return;
        };
        // Faults change topology and timing: replay steady nodes first.
        self.steady_exit_all(now, false, queue);
        self.faults_injected += 1;
        match ev.kind {
            FaultKind::PodCrash { func_index } => {
                let ids: Vec<FuncId> = self.funcs.keys().collect();
                if ids.is_empty() {
                    return;
                }
                let func = ids[func_index % ids.len()];
                if let Some(&victim) = self.cluster.running_pods_of(func).first() {
                    self.kill_pod(now, victim, queue);
                }
            }
            FaultKind::NodeCrash { node_index } => {
                let ids = self.cluster.node_ids();
                if ids.is_empty() {
                    return;
                }
                self.crash_node(now, ids[node_index % ids.len()], queue);
            }
            FaultKind::NodeDegrade { node_index, factor } => {
                let ids = self.cluster.node_ids();
                if ids.is_empty() {
                    return;
                }
                let node = ids[node_index % ids.len()];
                // A clock change redraws every future kernel duration;
                // analytic schedules on the node are no longer exact.
                self.ff_break_node(now, node, queue);
                let _ = self.cluster.degrade_node(node, factor);
            }
            FaultKind::NodeRecover { node_index } => {
                let ids = self.cluster.node_ids();
                if ids.is_empty() {
                    return;
                }
                let node = ids[node_index % ids.len()];
                self.ff_break_node(now, node, queue);
                let _ = self.cluster.recover_node(node);
            }
        }
    }

    /// The recovery controller: one health check pass over every function.
    fn on_health_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        queue.schedule(now + self.cfg.health_interval, Event::HealthTick);
        let func_ids: Vec<FuncId> = self.funcs.keys().collect();
        for func in func_ids {
            self.heal_function(now, func, queue);
        }
    }

    /// Compares a function's running replicas against its desired count
    /// and reschedules the missing ones via the regular pod-creation path
    /// (Algorithm 2 node selection over surviving nodes). Placement
    /// failures back off exponentially; a fully restored function records
    /// its time-to-recovery.
    fn heal_function(&mut self, now: SimTime, func: FuncId, queue: &mut EventQueue<Event>) {
        let Some(rt) = self.funcs.get(func) else {
            debug_assert!(false, "function exists");
            return;
        };
        let desired = rt.desired_replicas;
        let resources = rt.resources;
        let backoff_until = rt.backoff_until;
        let running = self.cluster.running_pods_of(func).len();
        if running >= desired {
            let Some(rt) = self.funcs.get_mut(func) else {
                return;
            };
            if let Some(start) = rt.outage_since.take() {
                // Healed outside the controller (e.g. the auto-scaler
                // re-created capacity first): still an outage that ended.
                rt.recoveries.push(now.saturating_sub(start));
                rt.backoff_exp = 0;
                rt.backoff_until = SimTime::ZERO;
            }
            return;
        }
        let Some(rt) = self.funcs.get_mut(func) else {
            return;
        };
        let start = *rt.outage_since.get_or_insert(now);
        // Health probes have at least one interval of detection latency:
        // an outage observed the instant it happened is repaired on the
        // next tick, so time-to-recovery is never zero.
        if now <= start || now < backoff_until {
            return;
        }
        let missing = desired - running;
        let mut failed = false;
        for _ in 0..missing {
            if self.create_pod(now, func, resources, queue).is_err() {
                failed = true;
                break;
            }
        }
        let interval = self.cfg.health_interval;
        let Some(rt) = self.funcs.get_mut(func) else {
            return;
        };
        if failed {
            rt.backoff_exp = (rt.backoff_exp + 1).min(6);
            rt.backoff_until = now + interval * (1u64 << rt.backoff_exp);
        } else if let Some(start) = rt.outage_since.take() {
            rt.recoveries.push(now.saturating_sub(start));
            rt.backoff_exp = 0;
            rt.backoff_until = SimTime::ZERO;
        }
    }

    /// A request's queueing deadline passed: shed it if it is still in
    /// the gateway queue (in-flight requests are left to finish).
    fn on_request_timeout(&mut self, func: FuncId, id: RequestId) {
        if let Some(req) = self.gateway.cancel_queued(func, id) {
            self.gateway.drop_request(&req);
            if self.cfg.overload.is_some() {
                if let Some(frt) = self.funcs.get_mut(func) {
                    frt.breaker.on_shed(req.id.0);
                }
            }
        }
    }

    // ----- overload control plane -------------------------------------

    /// One breaker evaluation window: shed stale queue prefixes, advance
    /// every function's breaker, and apply brownout transitions through
    /// the regular `reconfigure` path (which breaks fast-forward state on
    /// touched nodes, so replay stays digest-exact).
    fn on_breaker_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let Some(o) = self.cfg.overload else {
            return; // overload control disabled after scheduling: disarm
        };
        queue.schedule(now + o.breaker_window, Event::BreakerTick);
        let func_ids: Vec<FuncId> = self.funcs.keys().collect();
        for func in func_ids {
            // Requests can outlive their deadline between dispatch
            // opportunities; sweep them each window so the shed counters
            // see overload even when no pod goes idle.
            self.shed_dead_prefix(now, func);
            let Some(frt) = self.funcs.get_mut(func) else {
                continue;
            };
            match frt.breaker.tick(now, &o) {
                BreakerAction::None => {}
                BreakerAction::EnterBrownout => self.enter_brownout(now, func, &o, queue),
                BreakerAction::ExitBrownout => self.exit_brownout(now, func, queue),
            }
        }
    }

    /// Brownout entry: snapshot full-quota resources and reconfigure
    /// every replica to a reduced quota request (elastic limit kept), so
    /// the function keeps serving degraded instead of hard-failing.
    fn enter_brownout(
        &mut self,
        now: SimTime,
        func: FuncId,
        o: &OverloadConfig,
        queue: &mut EventQueue<Event>,
    ) {
        let Some(frt) = self.funcs.get_mut(func) else {
            return;
        };
        let full = frt.resources;
        frt.normal_resources = full;
        let reduced = ResourceSpec::new(
            full.sm_partition,
            (full.quota_request * o.brownout_quota_factor).max(0.01),
            full.quota_limit,
            full.gpu_mem,
        );
        let applied = self.reconfigure(now, func, reduced, queue);
        debug_assert!(applied.is_ok(), "browning out a deployed function");
    }

    /// Brownout exit: restore the snapshot taken at entry.
    fn exit_brownout(&mut self, now: SimTime, func: FuncId, queue: &mut EventQueue<Event>) {
        let Some(frt) = self.funcs.get(func) else {
            return;
        };
        let full = frt.normal_resources;
        let applied = self.reconfigure(now, func, full, queue);
        debug_assert!(applied.is_ok(), "restoring a deployed function");
    }

    // ----- request lifecycle ------------------------------------------

    fn on_arrival(&mut self, now: SimTime, func: FuncId, queue: &mut EventQueue<Event>) {
        // Schedule the next arrival first (the process is self-timed).
        // Under cluster fast-forward the chain event is cancellable so a
        // node entering the steady regime can absorb it.
        let cff = self.cluster_ff_on();
        if let Some(frt) = self.funcs.get_mut(func) {
            match frt.load.as_mut().and_then(|l| l.next_after(now)) {
                Some(t) if cff => {
                    frt.arrival_token = Some(queue.schedule_cancellable(t, Event::Arrival(func)));
                }
                Some(t) => queue.schedule(t, Event::Arrival(func)),
                None => frt.arrival_token = None,
            }
        }
        let overload = self.cfg.overload;
        let slo = self.funcs.get(func).map(|f| f.slo.slo());
        // Breaker admission runs before the request touches the queue: an
        // Open breaker fast-fails (or serves browned-out) without burning
        // queue capacity. The probe id is the id the gateway will assign.
        let mut browned = false;
        if let (Some(o), Some(frt)) = (overload.as_ref(), self.funcs.get_mut(func)) {
            let next_id = self.gateway.next_request_id();
            if frt.breaker.admit(o, next_id) == AdmitDecision::Refuse {
                self.gateway.reject_arrival(now, func);
                return;
            }
            browned = frt.breaker.browned();
        }
        let deadline = match (overload.as_ref(), slo) {
            (Some(o), Some(slo)) => now
                .checked_add(slo.scale(o.deadline_factor))
                .unwrap_or(SimTime::MAX),
            _ => SimTime::MAX,
        };
        match self.gateway.on_arrival(now, func, deadline) {
            fastg_cluster::Admission::Overloaded(req) => {
                // Bounded queue full: counted as rejected by the gateway,
                // and as a shed signal for the breaker's trip ratio.
                if let Some(frt) = self.funcs.get_mut(func) {
                    frt.breaker.on_shed(req.id.0);
                }
            }
            fastg_cluster::Admission::Dispatch(req, pod) => {
                if browned {
                    if let Some(frt) = self.funcs.get_mut(func) {
                        frt.browned_out += 1;
                    }
                }
                self.schedule_request_timeout(now, func, req.id, queue);
                self.assign_request(now, pod, req, queue);
            }
            fastg_cluster::Admission::Queue(req) => {
                if browned {
                    if let Some(frt) = self.funcs.get_mut(func) {
                        frt.browned_out += 1;
                    }
                }
                self.schedule_request_timeout(now, func, req.id, queue);
            }
        }
    }

    fn schedule_request_timeout(
        &self,
        now: SimTime,
        func: FuncId,
        id: RequestId,
        queue: &mut EventQueue<Event>,
    ) {
        if let Some(factor) = self.cfg.request_timeout_factor {
            if let Some(frt) = self.funcs.get(func) {
                let deadline = now + frt.slo.slo().scale(factor);
                queue.schedule(deadline, Event::RequestTimeout(func, id));
            }
        }
    }

    fn assign_request(
        &mut self,
        now: SimTime,
        pod: PodId,
        req: Request,
        queue: &mut EventQueue<Event>,
    ) {
        let Some(rt) = self.pods.get_mut(pod) else {
            debug_assert!(false, "assigning to a live pod");
            return;
        };
        debug_assert!(rt.active.is_none(), "pod {pod:?} already busy");
        let model = Arc::clone(&self.funcs[rt.func].model);
        rt.active = Some(ActiveReq {
            req,
            started: now,
            run: InferenceRun::new(model),
            pending_stage: None,
            outstanding: 0,
            burst_gpu_time: SimTime::ZERO,
            waiting_token: false,
            ff: None,
        });
        self.step_pod(now, pod, queue);
    }

    /// Advances a pod's inference cursor to its next blocking operation
    /// (the cursor itself skips empty phases).
    fn step_pod(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        let Some(rt) = self.pods.get_mut(pod) else {
            debug_assert!(false, "stepping a live pod");
            return;
        };
        let Some(active) = rt.active.as_mut() else {
            debug_assert!(false, "stepping requires a request");
            return;
        };
        match active.run.advance_indexed() {
            StageOp::Host(d) => {
                queue.schedule(now + d, Event::HostDone(pod));
            }
            StageOp::Burst(stage) => {
                active.pending_stage = Some(stage);
                self.try_start_burst(now, pod, queue);
            }
            StageOp::Done => {
                self.complete_request(now, pod, queue);
            }
        }
    }

    fn try_start_burst(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        let node = self.pods[pod].node;
        let Some(backend) = self.backends.get_mut(node) else {
            debug_assert!(false, "backend per node");
            return;
        };
        let Ok((outcome, side_grants)) = backend.request(now, pod) else {
            // The pod's backend row is gone (crash teardown raced this
            // burst); the pod itself is being destroyed, so do nothing.
            return;
        };
        match outcome {
            // Lease expiry is enforced lazily, at the pod's own sync
            // points and re-requests: a real time-slice holder is not
            // preempted during sub-millisecond host gaps, which is
            // precisely why time sharing wastes the GPU on them.
            RequestOutcome::Granted(_) => {
                self.launch_burst(now, pod, queue);
            }
            RequestOutcome::Queued | RequestOutcome::BlockedUntilReset => {
                if let Some(active) = self.pods.get_mut(pod).and_then(|rt| rt.active.as_mut()) {
                    active.waiting_token = true;
                } else {
                    debug_assert!(false, "burst belongs to a request");
                }
                self.poke_dispatch(now, node, queue);
            }
        }
        // Capacity released by this request may have admitted other pods.
        self.process_grants(now, &side_grants, queue);
    }

    fn launch_burst(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        let node = self.pods[pod].node;
        let Some(backend) = self.backends.get_mut(node) else {
            debug_assert!(false, "backend per node");
            return;
        };
        if backend.begin_burst(pod).is_err() {
            // Crash teardown raced the grant; the pod is being destroyed.
            return;
        }
        let Some(rt) = self.pods.get_mut(pod) else {
            debug_assert!(false, "pod exists");
            return;
        };
        let Some(active) = rt.active.as_mut() else {
            debug_assert!(false, "burst belongs to a request");
            return;
        };
        active.waiting_token = false;
        let Some(stage) = active.pending_stage.take() else {
            debug_assert!(false, "launching an empty burst");
            return;
        };
        // The profile Arc keeps the kernel specs alive without cloning
        // the spec vector; the cursor guarantees the stage is non-empty.
        let profile = Arc::clone(active.run.profile());
        let kernels = &profile.stages[stage].kernels;
        active.outstanding = kernels.len();
        active.burst_gpu_time = SimTime::ZERO;
        let client = rt.client;
        let Ok(node_rt) = self.cluster.node_mut(node) else {
            debug_assert!(false, "node exists");
            return;
        };
        let gpu = &mut node_rt.gpu;

        // Fast-forward: an uncontended burst in the capped regime is
        // coalesced into one macro-event at its analytic end instead of
        // one KernelFinish per kernel. Any contention change cancels the
        // macro-event and reconstructs per-kernel state (`ff_break_pod`).
        if self.cfg.fastforward {
            let descs = kernels.iter().map(|k| KernelDesc {
                blocks: k.blocks,
                work_per_block: k.work_per_block,
                tag: pod.0,
            });
            if let Some(end) = gpu.fast_forward_burst(now, client, descs) {
                let token = queue.schedule_cancellable(end, Event::BurstFastForward(node, pod));
                if let Some(active) = self.pods.get_mut(pod).and_then(|rt| rt.active.as_mut()) {
                    active.ff = Some(token);
                } else {
                    debug_assert!(false, "burst belongs to a request");
                }
                self.ff_bursts += 1;
                self.ff_coalesced_kernels += u64::try_from(kernels.len()).unwrap_or(u64::MAX);
                return;
            }
        }

        let mut starts = std::mem::take(&mut self.burst_scratch);
        debug_assert!(starts.is_empty(), "scratch drained after each burst");
        for k in kernels {
            let desc = KernelDesc {
                blocks: k.blocks,
                work_per_block: k.work_per_block,
                tag: pod.0,
            };
            match gpu.launch(now, client, desc) {
                Ok(Some(start)) => {
                    starts.push((start.finish_at, Event::KernelFinish(node, start.kernel)));
                }
                Ok(None) => {}
                Err(e) => {
                    // An unlaunchable kernel (client torn down mid-grant)
                    // is dropped instead of crashing the whole run.
                    debug_assert!(false, "kernel launch failed: {e}");
                }
            }
        }
        queue.schedule_batch(starts.drain(..));
        self.burst_scratch = starts;
    }

    fn on_kernel_finish(
        &mut self,
        now: SimTime,
        node: NodeId,
        kernel: KernelId,
        queue: &mut EventQueue<Event>,
    ) {
        let Ok(node_rt) = self.cluster.node_mut(node) else {
            debug_assert!(false, "node exists");
            return;
        };
        // A finish scheduled before the node crashed: the kernel died with
        // the hardware and was already accounted as aborted.
        if node_rt.state == NodeState::Down {
            return;
        }
        let gpu = &mut node_rt.gpu;
        // A kernel the device no longer knows (double finish, or a stale
        // event surviving a hard reset) is dropped: the typed error says
        // there is nothing left to account for.
        let mut started = std::mem::take(&mut self.started_scratch);
        debug_assert!(started.is_empty(), "scratch drained after each finish");
        let finish = gpu.on_kernel_finish_into(now, kernel, &mut started);
        queue.schedule_batch(
            started
                .drain(..)
                .map(|s| (s.finish_at, Event::KernelFinish(node, s.kernel))),
        );
        self.started_scratch = started;
        let Ok(done) = finish else {
            return;
        };
        let pod = PodId(done.tag);
        let Some(rt) = self.pods.get_mut(pod) else {
            // The pod was deleted while its last kernels drained — cannot
            // happen by construction (deletion requires an idle pod and
            // crashed pods linger as zombies), so surface it loudly in
            // debug builds.
            debug_assert!(false, "kernel completion for unknown pod {pod:?}");
            return;
        };
        // A crashed pod's kernels drain without any request accounting.
        if let Some(outstanding) = rt.zombie.as_mut() {
            *outstanding -= 1;
            if *outstanding == 0 {
                self.teardown_dead_pod(pod);
            }
            return;
        }
        let Some(active) = rt.active.as_mut() else {
            debug_assert!(false, "kernel belongs to a request");
            return;
        };
        active.burst_gpu_time += done.gpu_time;
        active.outstanding -= 1;
        if active.outstanding == 0 {
            let gpu_time = active.burst_gpu_time;
            self.burst_sync_point(now, node, pod, gpu_time, queue);
        }
    }

    /// Synchronization point after a burst's last kernel: report usage to
    /// the backend (maybe losing the lease), admit whoever the released
    /// capacity unblocks, and advance the pod's inference cursor.
    fn burst_sync_point(
        &mut self,
        now: SimTime,
        node: NodeId,
        pod: PodId,
        gpu_time: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        let sync = self
            .backends
            .get_mut(node)
            .map(|b| b.sync_point(now, pod, gpu_time));
        debug_assert!(sync.is_some(), "backend per node");
        if let Some(Ok(out)) = sync {
            self.process_grants(now, &out.granted, queue);
            // A dropped lease freed SM budget: re-decide token holders at
            // the end of this instant.
            if !out.lease_valid {
                self.poke_dispatch(now, node, queue);
            }
        }
        self.step_pod(now, pod, queue);
    }

    /// Delivers a burst's coalesced macro-event: the analytic end of a
    /// fast-forwarded burst. Every invalidation path cancels the token
    /// first, so a delivered macro-event always finds its timeline.
    fn on_burst_ff(&mut self, now: SimTime, node: NodeId, pod: PodId, queue: &mut EventQueue<Event>) {
        let Some(rt) = self.pods.get_mut(pod) else {
            debug_assert!(false, "macro-event for a dead pod (token not cancelled)");
            return;
        };
        let Some(active) = rt.active.as_mut() else {
            debug_assert!(false, "macro-event without a request");
            return;
        };
        active.ff = None;
        let client = rt.client;
        let Ok(node_rt) = self.cluster.node_mut(node) else {
            debug_assert!(false, "node exists");
            return;
        };
        let Some(done) = node_rt.gpu.ff_complete(now, client) else {
            debug_assert!(false, "macro-event without a timeline (token not cancelled)");
            return;
        };
        let Some(active) = self.pods.get_mut(pod).and_then(|rt| rt.active.as_mut()) else {
            return;
        };
        debug_assert_eq!(
            usize::try_from(done.completed).ok(),
            Some(active.outstanding),
            "macro-event accounts the whole burst"
        );
        active.outstanding = 0;
        active.burst_gpu_time += done.gpu_time;
        let gpu_time = active.burst_gpu_time;
        self.burst_sync_point(now, node, pod, gpu_time, queue);
    }

    /// Invalidates a pod's fast-forwarded burst (if any): cancels its
    /// macro-event, has the device reconstruct exact per-kernel state, and
    /// resumes normal stepping from the materialized mid-flight kernel.
    fn ff_break_pod(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        let Some(rt) = self.pods.get_mut(pod) else {
            return;
        };
        let Some(active) = rt.active.as_mut() else {
            return;
        };
        let Some(token) = active.ff.take() else {
            return;
        };
        let cancelled = queue.cancel(token);
        debug_assert!(cancelled, "macro token is live until broken or delivered");
        let client = rt.client;
        let node = rt.node;
        let Ok(node_rt) = self.cluster.node_mut(node) else {
            debug_assert!(false, "node exists");
            return;
        };
        let Some(brk) = node_rt.gpu.ff_break(now, client) else {
            debug_assert!(false, "live token implies a timeline");
            return;
        };
        queue.schedule(
            brk.resumed.finish_at,
            Event::KernelFinish(node, brk.resumed.kernel),
        );
        if let Some(active) = self.pods.get_mut(pod).and_then(|rt| rt.active.as_mut()) {
            active.outstanding = active
                .outstanding
                .saturating_sub(usize::try_from(brk.completed).unwrap_or(usize::MAX));
            active.burst_gpu_time += brk.gpu_time;
        }
    }

    /// Invalidates every fast-forwarded burst on a node; called before any
    /// contention change (new client, repartition, clock change).
    fn ff_break_node(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<Event>) {
        let pods: Vec<PodId> = self
            .pods
            .iter()
            .filter(|(_, rt)| {
                rt.node == node && rt.active.as_ref().is_some_and(|a| a.ff.is_some())
            })
            .map(|(p, _)| p)
            .collect();
        for p in pods {
            self.ff_break_pod(now, p, queue);
        }
    }

    // ----- cluster-level fast-forward ---------------------------------
    //
    // A node serving exactly one pod of one single-replica function with a
    // constant arrival gap strictly above the service latency repeats the
    // same request cycle forever: same kernels, same latency, same counter
    // deltas, always returning to a fully idle node. The machinery below
    // detects that regime (`Armed` measures one template cycle between two
    // completions), then stops scheduling per-request events entirely
    // (`Steady`): whole cycles are credited in closed form at the next
    // control-plane touch, and the at-most-one in-flight request a touch
    // can observe is materialized by replaying real events through a local
    // queue. All credited quantities are exact integer arithmetic, so
    // reports stay byte-identical to the event-by-event run.

    /// Whether cluster fast-forward is active (requires the device layer).
    fn cluster_ff_on(&self) -> bool {
        self.cfg.fastforward && self.cfg.cluster_fastforward
    }

    /// The steady-regime eligibility gates. Returns the constant arrival
    /// gap when every gate passes. The gates deliberately exclude every
    /// feature whose bookkeeping has no exact closed form (overload
    /// control, timeouts, autoscaling, tracing) and every topology where
    /// routing is not a single fixed pod.
    fn steady_eligible(
        &self,
        now: SimTime,
        node: NodeId,
        pod: PodId,
        func: FuncId,
        arrived: SimTime,
    ) -> Option<SimTime> {
        if self.cfg.overload.is_some()
            || self.cfg.request_timeout_factor.is_some()
            || self.cfg.trace_events
            || self.autoscale_db.is_some()
        {
            return None;
        }
        let frt = self.funcs.get(func)?;
        if frt.saturate {
            return None;
        }
        let gap = frt.load.as_ref()?.constant_gap()?;
        // The node must be provably idle between cycles: service must end
        // strictly before the next arrival.
        if gap <= now - arrived {
            return None;
        }
        if !matches!(self.cluster.node_state(node), Ok(s) if s != NodeState::Down) {
            return None;
        }
        if self.cluster.pods_on(node).len() != 1 {
            return None;
        }
        let running = self.cluster.running_pods_of(func);
        if running.as_slice() != [pod] {
            return None;
        }
        if self.gateway.queue_len(func) != 0 {
            return None;
        }
        // Quota can never throttle the cycle: gpu time per window is below
        // the elapsed time, which is below the window.
        if self.cluster.pod(pod).ok()?.resources.quota_limit < 1.0 {
            return None;
        }
        Some(gap)
    }

    /// Observes a completion on an idle node: arms a cycle measurement,
    /// verifies an armed one (entering `Steady`), or re-enters `Steady`
    /// after a materialized catch-up request (`Resuming`).
    fn steady_observe(
        &mut self,
        now: SimTime,
        node: NodeId,
        pod: PodId,
        func: FuncId,
        arrived: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        let i = node.index();
        let Some(gap) = self.steady_eligible(now, node, pod, func, arrived) else {
            self.node_phase[i] = NodePhase::Inactive;
            return;
        };
        let client = self.pods[pod].client;
        let Ok(gpu_probe) = self
            .cluster
            .node(node)
            .map(|n| n.gpu.metrics().steady_probe(now, client))
        else {
            return;
        };
        let (busy, occ_raw, kernels, client_busy) = gpu_probe;
        let Some((q_used, epochs, tokens)) =
            self.backends.get(node).and_then(|b| b.steady_probe(pod))
        else {
            self.node_phase[i] = NodePhase::Inactive;
            return;
        };
        match std::mem::replace(&mut self.node_phase[i], NodePhase::Inactive) {
            NodePhase::Resuming { mut cycle, expect }
                if cycle.pod == pod
                    && cycle.gap == gap
                    && arrived == expect
                    && now == expect + cycle.latency =>
            {
                // The materialized request replayed the template cycle
                // exactly; resume crediting without re-measuring.
                if let Some(tok) = self.funcs.get_mut(func).and_then(|f| f.arrival_token.take())
                {
                    let cancelled = queue.cancel(tok);
                    debug_assert!(cancelled, "steady entry cancels a live arrival");
                    cycle.next_arrival = arrived + gap;
                    self.node_phase[i] = NodePhase::Steady(cycle);
                }
            }
            NodePhase::Armed(a)
                if a.pod == pod && now == a.completion + gap && arrived == a.arrival + gap =>
            {
                // One full cycle measured between two completions exactly
                // one gap apart: its deltas are the template.
                let latency = now - arrived;
                let met = self.funcs.get(func).is_some_and(|f| latency <= f.slo.slo());
                let Some(tok) = self.funcs.get_mut(func).and_then(|f| f.arrival_token.take())
                else {
                    return; // no pending arrival chain: nothing to coalesce
                };
                let cancelled = queue.cancel(tok);
                debug_assert!(cancelled, "steady entry cancels a live arrival");
                self.node_phase[i] = NodePhase::Steady(SteadyCycle {
                    func,
                    pod,
                    client,
                    gap,
                    latency,
                    next_arrival: arrived + gap,
                    met,
                    d_busy: busy - a.busy,
                    d_occ_raw: occ_raw - a.occ_raw,
                    d_kernels: kernels - a.kernels,
                    d_client_busy: client_busy - a.client_busy,
                    d_q_used: q_used - a.q_used,
                    d_epochs: epochs - a.epochs,
                    d_tokens: tokens - a.tokens,
                    cycle_events: (self.node_events[i] - a.events) + 1,
                });
            }
            _ => {
                // Fresh (or failed) measurement: this completion is C0.
                self.node_phase[i] = NodePhase::Armed(ArmedCycle {
                    pod,
                    arrival: arrived,
                    completion: now,
                    busy,
                    occ_raw,
                    kernels,
                    client_busy,
                    q_used,
                    epochs,
                    tokens,
                    events: self.node_events[i],
                });
            }
        }
    }

    /// Credits every steady cycle completing before `now` (`inclusive`
    /// bounds at `≤ now`, for Platform-API touches; control events that
    /// order before same-instant work use the strict `< now` bound) in
    /// closed form against the gateway, trackers, backend and GPU metrics.
    fn steady_credit(&mut self, now: SimTime, node: NodeId, inclusive: bool) {
        let Some(NodePhase::Steady(cycle)) = self.node_phase.get_mut(node.index()) else {
            return;
        };
        let c0 = cycle.next_arrival + cycle.latency;
        let gap_us = cycle.gap.as_micros().max(1);
        let k = if inclusive {
            if c0 <= now {
                (now.as_micros() - c0.as_micros()) / gap_us + 1
            } else {
                0
            }
        } else if c0 < now {
            (now.as_micros() - c0.as_micros() - 1) / gap_us + 1
        } else {
            0
        };
        if k == 0 {
            return;
        }
        let func = cycle.func;
        let pod = cycle.pod;
        let client = cycle.client;
        let gap = cycle.gap;
        let latency = cycle.latency;
        let met = cycle.met;
        let start = cycle.next_arrival;
        let (d_busy, d_occ_raw, d_kernels, d_client_busy) = (
            cycle.d_busy,
            cycle.d_occ_raw,
            cycle.d_kernels,
            cycle.d_client_busy,
        );
        let (d_q_used, d_epochs, d_tokens) = (cycle.d_q_used, cycle.d_epochs, cycle.d_tokens);
        let cycle_events = cycle.cycle_events;
        cycle.next_arrival = start + gap * k;
        self.ff_cluster_cycles += k;
        self.ff_cluster_events_coalesced += cycle_events * k;
        self.gateway.credit_arrival_run(func, start, gap, k);
        if let Some(frt) = self.funcs.get_mut(func) {
            frt.slo.record_n(latency, k);
            frt.completions.record_run(c0, gap, k);
            if met {
                frt.goodput.record_run(c0, gap, k);
            } else {
                // Queue wait is always zero in the steady regime, so
                // service time equals latency.
                frt.wasted_service += latency * k;
            }
        }
        if let Some(b) = self.backends.get_mut(node) {
            b.credit_steady_cycles(pod, k, d_q_used, d_epochs, d_tokens);
        }
        if let Ok(n) = self.cluster.node_mut(node) {
            n.gpu
                .metrics_mut()
                .credit_steady_cycles(client, k, d_busy, d_occ_raw, d_kernels, d_client_busy);
        }
    }

    /// Replays a steady node back onto the real event queue: credits
    /// cycles up to `now`, then either re-schedules the next (future)
    /// arrival or materializes the single in-flight request by replaying
    /// its events through a local queue — events beyond the bound drain to
    /// the real queue with their cancellation tokens re-homed. `resume`
    /// stashes the template for direct re-entry (only sound when nothing
    /// about the node's timing changed, i.e. metric-sample catch-ups).
    fn steady_exit(
        &mut self,
        now: SimTime,
        node: NodeId,
        inclusive: bool,
        resume: bool,
        queue: &mut EventQueue<Event>,
    ) {
        let i = node.index();
        match self.node_phase.get(i) {
            None | Some(NodePhase::Inactive) => return,
            Some(NodePhase::Armed(_) | NodePhase::Resuming { .. }) => {
                // Already running real events; drop the measurement.
                self.node_phase[i] = NodePhase::Inactive;
                return;
            }
            Some(NodePhase::Steady(_)) => {}
        }
        self.steady_credit(now, node, inclusive);
        let NodePhase::Steady(mut cycle) =
            std::mem::replace(&mut self.node_phase[i], NodePhase::Inactive)
        else {
            return;
        };
        let expect = cycle.next_arrival;
        let in_flight = if inclusive { expect <= now } else { expect < now };
        if !in_flight {
            // The next arrival is still in the future: hand the chain
            // back to the real queue.
            let tok = queue.schedule_cancellable(expect, Event::Arrival(cycle.func));
            if let Some(frt) = self.funcs.get_mut(cycle.func) {
                debug_assert!(frt.arrival_token.is_none(), "one pending arrival per chain");
                frt.arrival_token = Some(tok);
            }
            if resume {
                self.node_phase[i] = NodePhase::Resuming { cycle, expect };
            }
            return;
        }
        // Exactly one request is in flight at the bound: it arrived at
        // `expect ≤/< now`, completes at `expect + latency ≥/> now` (the
        // credit loop stopped), and the following arrival is beyond the
        // bound because `gap > latency`. Replay it through a local queue
        // with the same tie-break and class order; whatever lands beyond
        // the bound drains to the real queue (heap order guarantees the
        // remainder is all beyond the bound once one event is).
        let func = cycle.func;
        let mut local = EventQueue::new();
        local.set_tiebreak(queue.tiebreak());
        local.set_classifier(|e: &Event| e.class());
        self.handle(expect, Event::Arrival(func), &mut local);
        while let Some((t, ev)) = local.pop() {
            let within = if inclusive { t <= now } else { t < now };
            if within {
                self.handle(t, ev, &mut local);
                continue;
            }
            match ev {
                Event::Arrival(f) => {
                    // Re-home the chain's cancellation token: the local
                    // token stored by `on_arrival` dies with the local
                    // queue.
                    let tok = queue.schedule_cancellable(t, ev);
                    if let Some(frt) = self.funcs.get_mut(f) {
                        frt.arrival_token = Some(tok);
                    }
                }
                Event::BurstFastForward(_, p) => {
                    let tok = queue.schedule_cancellable(t, ev);
                    if let Some(a) = self.pods.get_mut(p).and_then(|rt| rt.active.as_mut()) {
                        a.ff = Some(tok);
                    }
                }
                Event::HostDone(_)
                | Event::KernelFinish(_, _)
                | Event::WindowReset(_)
                | Event::ScaleTick
                | Event::MetricsSample
                | Event::Fault(_)
                | Event::HealthTick
                | Event::RequestTimeout(_, _)
                | Event::BreakerTick
                | Event::Dispatch(_) => queue.schedule(t, ev),
            }
        }
        if resume {
            cycle.next_arrival = expect + cycle.gap;
            self.node_phase[i] = NodePhase::Resuming { cycle, expect };
        }
    }

    /// Exits every node from the steady regime (control-plane touches
    /// whose effects are not provably cycle-neutral).
    fn steady_exit_all(&mut self, now: SimTime, inclusive: bool, queue: &mut EventQueue<Event>) {
        if !self.cluster_ff_on() {
            return;
        }
        for i in 0..self.node_phase.len() {
            self.steady_exit(now, NodeId::from_index(i), inclusive, false, queue);
        }
    }

    /// Sheds the provably dead queue prefix, then pulls the next request
    /// for an idle pod. With overload control off (or a cold estimator)
    /// this is exactly `gateway.on_pod_idle`.
    fn pull_next(&mut self, now: SimTime, func: FuncId, pod: PodId) -> Option<Request> {
        self.shed_dead_prefix(now, func);
        self.gateway.on_pod_idle(func, pod)
    }

    /// Deadline-aware shedding: drops every queued request whose deadline
    /// is unmeetable even if service started right now, per the EWMA
    /// service-time estimate. Each shed feeds the breaker.
    fn shed_dead_prefix(&mut self, now: SimTime, func: FuncId) {
        if self.cfg.overload.is_none() {
            return;
        }
        let Some(est) = self.funcs.get(func).and_then(|f| f.service_est.mean()) else {
            return; // no completions yet: nothing to estimate with
        };
        let shed = self.gateway.shed_unmeetable(now, func, est);
        if shed.is_empty() {
            return;
        }
        if let Some(frt) = self.funcs.get_mut(func) {
            for r in &shed {
                frt.breaker.on_shed(r.id.0);
            }
        }
    }

    fn complete_request(&mut self, now: SimTime, pod: PodId, queue: &mut EventQueue<Event>) {
        let Some(rt) = self.pods.get_mut(pod) else {
            debug_assert!(false, "completing on a live pod");
            return;
        };
        let Some(active) = rt.active.take() else {
            debug_assert!(false, "completing a request");
            return;
        };
        let func = rt.func;
        let node = rt.node;
        let arrived = active.req.arrived;
        let latency = now - arrived;
        // Terminal state: the gateway drops its retry bookkeeping for
        // this request (a leak otherwise — retry entries must not outlive
        // the requests they describe).
        self.gateway.complete_request(&active.req);
        let Some(frt) = self.funcs.get_mut(func) else {
            debug_assert!(false, "function exists");
            return;
        };
        frt.slo.record(latency);
        frt.completions.record(now);
        let met = latency <= frt.slo.slo();
        let service = now.saturating_sub(active.started);
        frt.service_est.observe(service);
        if met {
            frt.goodput.record(now);
        } else {
            // Capacity burned on a request that was already over its SLO:
            // the wasted work overload control exists to avoid.
            frt.wasted_service += service;
        }
        if self.cfg.overload.is_some() && active.req.id.0 < 1 << 60 {
            frt.breaker.on_completion(active.req.id.0, met);
        }
        let saturate = frt.saturate;

        // Terminating pods are deleted as soon as their request finishes.
        if self.cluster.pod(pod).map(|p| p.state) == Ok(PodState::Terminating) {
            let grants = match self.backends.get_mut(node) {
                Some(b) => b.release_idle(now, pod),
                None => {
                    debug_assert!(false, "backend per node");
                    Vec::new()
                }
            };
            self.process_grants(now, &grants, queue);
            self.poke_dispatch(now, node, queue);
            self.delete_pod(now, pod, queue);
            return;
        }
        // Pull the next request, or park idle.
        match self.pull_next(now, func, pod) {
            Some(req) => self.assign_request(now, pod, req, queue),
            None if saturate => {
                let req = self.synth_request(now, func);
                self.assign_request(now, pod, req, queue);
            }
            None => {
                let grants = match self.backends.get_mut(node) {
                    Some(b) => b.release_idle(now, pod),
                    None => {
                        debug_assert!(false, "backend per node");
                        Vec::new()
                    }
                };
                self.process_grants(now, &grants, queue);
                self.poke_dispatch(now, node, queue);
                // The node just went fully idle — the observation point of
                // the steady-regime detector.
                if self.cluster_ff_on() {
                    self.steady_observe(now, node, pod, func, arrived, queue);
                }
            }
        }
    }

    /// Schedules (at most once per node per instant) the batched
    /// end-of-instant dispatch pass. Called by every operation that may
    /// change who should hold a token: queueing a waiter, releasing a
    /// lease, resetting a window, tearing down a pod. Grant decisions
    /// are thereby a function of the instant's final backend state, not
    /// of same-instant event delivery order.
    fn poke_dispatch(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<Event>) {
        if !self.cfg.policy.uses_tokens() {
            return;
        }
        if self.dispatch_pending.insert(node) {
            queue.schedule(now, Event::Dispatch(node));
        }
    }

    /// Delivers a node's batched dispatch pass: one canonical-order walk
    /// of the ready queue, granting tokens until the SM budget stops it.
    fn on_dispatch(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<Event>) {
        self.dispatch_pending.remove(node);
        let grants = match self.backends.get_mut(node) {
            Some(b) => b.dispatch_pass(now),
            None => Vec::new(),
        };
        self.process_grants(now, &grants, queue);
    }

    fn process_grants(
        &mut self,
        now: SimTime,
        grants: &[crate::manager::Grant],
        queue: &mut EventQueue<Event>,
    ) {
        for g in grants {
            let has_burst = self
                .pods
                .get(g.pod)
                .and_then(|rt| rt.active.as_ref())
                .is_some_and(|a| a.waiting_token && a.pending_stage.is_some());
            if has_burst {
                self.launch_burst(now, g.pod, queue);
            }
        }
    }

    fn on_window_reset(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<Event>) {
        // Quota windows die with the node (and stop rescheduling).
        if matches!(self.cluster.node_state(node), Ok(NodeState::Down)) {
            return;
        }
        if self.cluster_ff_on() {
            // An armed measurement cannot span the reset: the window
            // zeroes quota usage, so the q_used delta would underflow.
            // A steady node just credits up to here (strictly before: a
            // control event orders ahead of same-instant work) — the
            // reset itself is cycle-neutral under the `quota_limit = 1`
            // eligibility gate.
            if matches!(self.node_phase.get(node.index()), Some(NodePhase::Armed(_))) {
                self.node_phase[node.index()] = NodePhase::Inactive;
            }
            self.steady_credit(now, node, false);
        }
        let grants = match self.backends.get_mut(node) {
            Some(b) => b.on_window_reset(now),
            None => {
                debug_assert!(false, "backend per node");
                Vec::new()
            }
        };
        self.process_grants(now, &grants, queue);
        self.poke_dispatch(now, node, queue);
        queue.schedule(now + self.cfg.window, Event::WindowReset(node));
    }

    fn on_metrics_sample(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        if self.cluster_ff_on() {
            // Samples observe instantaneous GPU state, so a steady node
            // with a request in flight at the sample instant must
            // materialize it (replaying its kernel events) before the
            // probes below run. `resume = true`: sampling is
            // cycle-neutral, so the template re-enters Steady when the
            // materialized request completes on schedule.
            for i in 0..self.node_phase.len() {
                let node = NodeId::from_index(i);
                // An armed measurement cannot span the sample: it resets
                // the utilization and occupancy windows, so busy/occ
                // deltas across it would be meaningless (or underflow).
                if matches!(self.node_phase.get(i), Some(NodePhase::Armed(_))) {
                    self.node_phase[i] = NodePhase::Inactive;
                }
                self.steady_credit(now, node, false);
                let in_flight = matches!(
                    self.node_phase.get(i),
                    Some(NodePhase::Steady(c)) if c.next_arrival < now
                );
                if in_flight {
                    self.steady_exit(now, node, false, true, queue);
                }
            }
        }
        for node in self.cluster.node_ids() {
            if let Ok(n) = self.cluster.node_mut(node) {
                // Land deferred fast-forward boundaries (strictly before
                // `now`; same-instant finishes order after the sample,
                // exactly as their per-kernel events would).
                n.gpu.ff_sync(now);
                n.gpu.metrics_mut().sample(now);
            }
        }
        let counts: Vec<(FuncId, usize)> = self
            .funcs
            .keys()
            .map(|f| (f, self.cluster.running_pods_of(f).len()))
            .collect();
        for (f, n) in counts {
            if let Some(rt) = self.funcs.get_mut(f) {
                rt.replica_series.push(now, n as f64);
            }
        }
        queue.schedule(now + self.cfg.sample_interval, Event::MetricsSample);
    }

    // ----- auto-scaling ------------------------------------------------

    fn on_scale_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        queue.schedule(now + self.cfg.autoscale_interval, Event::ScaleTick);
        let Some(db) = self.autoscale_db.take() else {
            return;
        };
        let func_ids: Vec<FuncId> = self.funcs.keys().collect();
        for func in func_ids {
            self.scale_function(now, func, &db, queue);
        }
        self.autoscale_db = Some(db);
    }

    fn scale_function(
        &mut self,
        now: SimTime,
        func: FuncId,
        db: &ProfileDb,
        queue: &mut EventQueue<Event>,
    ) {
        let model_name = &self.funcs[func].spec.model;
        let profile = db.config_points(model_name);
        if profile.is_empty() {
            return;
        }
        let predicted = self
            .gateway
            .predicted_rate(func, now, self.cfg.predict_window)
            * self.cfg.autoscale_headroom;
        let running: Vec<RunningPod> = self
            .cluster
            .running_pods_of(func)
            .into_iter()
            .filter_map(|p| {
                let pod = self.cluster.pod(p).ok()?;
                let sm = pod.resources.sm_partition;
                // Capacity accounting uses the guaranteed share; elastic
                // headroom above the request is a bonus, not a promise.
                let quota = pod.resources.quota_request;
                let rps = db.throughput_of(model_name, sm, quota)?;
                Some(RunningPod {
                    pod: p,
                    config: ConfigPoint { sm, quota, rps },
                })
            })
            .collect();
        let capacity: f64 = running.iter().map(|r| r.config.rps).sum();
        let delta = predicted - capacity;
        let actions = heuristic_scale(delta, &profile, &running);
        let mut remaining = running.len();
        for action in actions {
            match action {
                ScaleAction::Up(p) => {
                    let mem = self.funcs[func].model.memory.total();
                    // Guaranteed share = the profiled quota; the limit is
                    // elastic (the paper's Kubernetes-style allocation:
                    // idle GPU time may be used beyond the request).
                    let spec = ResourceSpec::new(p.sm, p.quota, 1.0, mem);
                    // Placement failure is counted inside create_pod.
                    if self.create_pod(now, func, spec, queue).is_ok() {
                        if let Some(rt) = self.funcs.get_mut(func) {
                            rt.desired_replicas += 1;
                        }
                    }
                }
                ScaleAction::Down(pod) => {
                    if remaining > self.cfg.min_replicas {
                        self.drain_pod(now, pod, queue);
                        remaining -= 1;
                        let min = self.cfg.min_replicas;
                        if let Some(rt) = self.funcs.get_mut(func) {
                            rt.desired_replicas = rt.desired_replicas.saturating_sub(1).max(min);
                        }
                    }
                }
            }
        }
    }

    // ----- reporting ----------------------------------------------------

    fn build_report(&mut self, now: SimTime) -> PlatformReport {
        // Retry-table leak check: every terminal state clears its entry,
        // so the table can never exceed the live request population.
        if cfg!(debug_assertions) {
            let queued: u64 = self
                .funcs
                .keys()
                .map(|f| u64::try_from(self.gateway.queue_len(f)).unwrap_or(u64::MAX))
                .sum();
            let in_flight =
                u64::try_from(self.pods.values().filter(|p| p.active.is_some()).count())
                    .unwrap_or(u64::MAX);
            debug_assert!(
                self.gateway.retries_total() <= queued + in_flight,
                "gateway retry table leaked: {} entries, {queued} queued, {in_flight} in flight",
                self.gateway.retries_total(),
            );
        }
        // Flush a final metric sample so short runs have data. The report
        // boundary is inclusive: a per-kernel run would have delivered
        // finish events at exactly `now` before the caller could report,
        // so deferred fast-forward boundaries at `now` land first too.
        for node in self.cluster.node_ids() {
            if let Ok(n) = self.cluster.node_mut(node) {
                n.gpu.ff_sync_inclusive(now);
                n.gpu.metrics_mut().sample(now);
            }
        }
        let warmup = self.cfg.warmup;
        // fastg-lint: allow(no-btreemap-hot-path)
        let mut functions = BTreeMap::new();
        for (id, rt) in self.funcs.iter() {
            let hist = rt.slo.histogram();
            let steady_rps = rt.completions.rate_between(warmup, now);
            functions.insert(
                id,
                FunctionReport {
                    name: rt.spec.name.clone(),
                    model: rt.spec.model.clone(),
                    arrivals: self.gateway.total_arrivals(id),
                    completed: rt.completions.count(),
                    throughput_rps: steady_rps,
                    p50: hist.quantile(0.5),
                    p95: hist.quantile(0.95),
                    p99: hist.quantile(0.99),
                    max_latency: hist.max(),
                    mean_latency: hist.mean(),
                    slo: rt.slo.slo(),
                    slo_violations: rt.slo.violations(),
                    violation_ratio: rt.slo.violation_ratio(),
                    replicas: self.cluster.running_pods_of(id).len(),
                    replica_series: rt.replica_series.clone(),
                    dropped: self.gateway.dropped(id),
                    rejected: self.gateway.rejected(id),
                    shed_deadline: self.gateway.shed_deadline(id),
                    browned_out: rt.browned_out,
                    breaker_trips: rt.breaker.trips(),
                    good_completions: rt.goodput.count(),
                    goodput_rps: rt.goodput.rate_between(warmup, now),
                    wasted_service: rt.wasted_service,
                    time_to_recovery: rt.recoveries.clone(),
                },
            );
        }
        let mut nodes = Vec::new();
        for id in self.cluster.node_ids() {
            let Ok(node) = self.cluster.node(id) else {
                continue;
            };
            let m = node.gpu.metrics();
            let series_mean = |s: &TimeSeries| {
                let vals: Vec<f64> = s
                    .points()
                    .iter()
                    .filter(|&&(t, _)| t > warmup)
                    .map(|&(_, v)| v)
                    .collect();
                if vals.is_empty() {
                    s.mean()
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            };
            nodes.push(NodeReport {
                name: node.name.clone(),
                gpu: node.gpu.spec().name.clone(),
                utilization: series_mean(m.utilization_series()),
                sm_occupancy: series_mean(m.occupancy_series()),
                kernels: m.total_kernels(),
                pods: self.cluster.pods_on(id).len(),
                up: !matches!(self.cluster.node_state(id), Ok(NodeState::Down)),
                memory_used: node.gpu.memory().used(),
                utilization_series: m.utilization_series().clone(),
                occupancy_series: m.occupancy_series().clone(),
            });
        }
        if sanitizer::active() {
            self.sanitize_conservation(&functions);
        }
        PlatformReport {
            duration: now,
            warmup,
            functions,
            nodes,
            unschedulable_pods: self.unschedulable,
            faults_injected: self.faults_injected,
        }
    }

    /// Shadow-check (`FASTG_SANITIZE=1`): the overload conservation
    /// identity at every report flush — every real arrival is accounted
    /// for exactly once across terminal and pending states. Saturating
    /// functions are excluded (their synthetic requests bypass the
    /// gateway's arrival accounting).
    // fastg-lint: allow(no-btreemap-hot-path)
    fn sanitize_conservation(&self, functions: &BTreeMap<FuncId, FunctionReport>) {
        for (&id, fr) in functions {
            if self.funcs.get(id).map_or(true, |rt| rt.saturate) {
                continue;
            }
            let queued = u64::try_from(self.gateway.queue_len(id)).unwrap_or(u64::MAX);
            let in_flight = u64::try_from(
                self.pods
                    .values()
                    .filter(|p| p.func == id)
                    .filter_map(|p| p.active.as_ref())
                    .filter(|a| a.req.id.0 < 1 << 60)
                    .count(),
            )
            .unwrap_or(u64::MAX);
            let accounted = fr.completed
                + fr.rejected
                + fr.shed_deadline
                + fr.dropped
                + queued
                + in_flight;
            sanitizer::check(fr.arrivals == accounted, "overload-conservation", || {
                format!(
                    "function {:?} ({}): arrivals {} != completed {} + rejected {} + shed {} \
                     + dropped {} + queued {} + in_flight {} = {}",
                    id,
                    fr.name,
                    fr.arrivals,
                    fr.completed,
                    fr.rejected,
                    fr.shed_deadline,
                    fr.dropped,
                    queued,
                    in_flight,
                    accounted
                )
            });
        }
    }
}

impl World for Engine {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        if self.cfg.trace_events {
            self.trace.push(format!("{now:?} {event:?}"));
        }
        if self.cfg.cluster_fastforward {
            // Per-node event tally: the cycle-event count an armed
            // measurement captures, and thus the coalescing credit per
            // steady cycle. Arrivals are counted by the observer (+1)
            // since they carry no node.
            let touched = match event {
                Event::HostDone(pod) => self.pods.get(pod).map(|rt| rt.node),
                Event::KernelFinish(node, _)
                | Event::BurstFastForward(node, _)
                | Event::WindowReset(node)
                | Event::Dispatch(node) => Some(node),
                Event::Arrival(_)
                | Event::ScaleTick
                | Event::MetricsSample
                | Event::Fault(_)
                | Event::HealthTick
                | Event::RequestTimeout(_, _)
                | Event::BreakerTick => None,
            };
            if let Some(n) = touched {
                if let Some(c) = self.node_events.get_mut(n.index()) {
                    *c += 1;
                }
            }
        }
        match event {
            Event::Arrival(func) => self.on_arrival(now, func, queue),
            // A host phase may complete for a pod that crashed meanwhile.
            Event::HostDone(pod) => {
                let alive = self
                    .pods
                    .get(pod)
                    .is_some_and(|rt| rt.zombie.is_none() && rt.active.is_some());
                if alive {
                    self.step_pod(now, pod, queue);
                }
            }
            Event::KernelFinish(node, kernel) => self.on_kernel_finish(now, node, kernel, queue),
            Event::BurstFastForward(node, pod) => self.on_burst_ff(now, node, pod, queue),
            Event::WindowReset(node) => self.on_window_reset(now, node, queue),
            Event::ScaleTick => self.on_scale_tick(now, queue),
            Event::MetricsSample => self.on_metrics_sample(now, queue),
            Event::Fault(index) => self.on_fault(now, index, queue),
            Event::HealthTick => self.on_health_tick(now, queue),
            Event::RequestTimeout(func, id) => self.on_request_timeout(func, id),
            Event::BreakerTick => self.on_breaker_tick(now, queue),
            Event::Dispatch(node) => self.on_dispatch(now, node, queue),
        }
    }
}

/// The user-facing platform façade. See the crate-level example.
pub struct Platform {
    sim: Simulation<Engine>,
}

impl Platform {
    /// Builds a platform: `node_count` worker nodes, each with one GPU, an
    /// MPS server (policy permitting), a FaST Backend and a model storage
    /// server. Metric sampling and (for token policies) quota windows are
    /// armed immediately.
    pub fn new(cfg: PlatformConfig) -> Self {
        // A node-less platform is a configuration bug worth failing fast
        // on at construction, before any simulation state exists.
        assert!( // fastg-lint: allow(no-panic-in-lib)
            !cfg.effective_gpus().is_empty(),
            "a platform needs at least one node"
        );
        let uses_tokens = cfg.policy.uses_tokens();
        let window = cfg.window;
        let sample = cfg.sample_interval;
        // Shuffle permutations are drawn from the scenario seed so two
        // seeds never share an adversarial ordering.
        let tiebreak = cfg.tiebreak.derive(cfg.seed);
        if sanitizer::active() {
            sanitizer::set_run_context(sanitizer::RunContext {
                seed: cfg.seed,
                tiebreak,
                fastforward: cfg.fastforward,
            });
        }
        let engine = Engine::new(cfg);
        let mut sim = Simulation::new(engine);
        {
            let (world, queue, _) = sim.parts_mut();
            queue.set_tiebreak(tiebreak);
            queue.set_classifier(|e: &Event| e.class());
            if uses_tokens {
                for node in world.cluster.node_ids() {
                    queue.schedule(window, Event::WindowReset(node));
                }
            }
            queue.schedule(sample, Event::MetricsSample);
            if let Some(plan) = &world.cfg.fault_plan {
                for (i, e) in plan.events().iter().enumerate() {
                    queue.schedule(e.at, Event::Fault(i));
                }
            }
            if world.cfg.recovery {
                queue.schedule(world.cfg.health_interval, Event::HealthTick);
            }
            if let Some(o) = &world.cfg.overload {
                queue.schedule(o.breaker_window, Event::BreakerTick);
            }
            if let Some(cap) = world.cfg.event_capacity {
                queue.reserve(cap);
            }
        }
        Platform { sim }
    }

    /// Deploys a function (FaSTFunc CRD): creates its initial replicas via
    /// node selection and registers them with the gateway and backends.
    pub fn deploy(&mut self, fc: FunctionConfig) -> Result<FuncId, PlatformError> {
        let (world, queue, now) = self.sim.parts_mut();
        // Platform-API touches observe state inclusive of `now`: replay
        // any steady node up to and including this instant first.
        world.steady_exit_all(now, true, queue);
        world.deploy(now, &fc, queue)
    }

    /// Attaches an open-loop arrival process to a function.
    pub fn set_load(&mut self, func: FuncId, mut load: ArrivalProcess) {
        let (world, queue, now) = self.sim.parts_mut();
        world.steady_exit_all(now, true, queue);
        let cff = world.cluster_ff_on();
        // Retire the previous chain's pending event (if cancellable) so
        // two arrival chains never run concurrently.
        if let Some(tok) = world.funcs.get_mut(func).and_then(|f| f.arrival_token.take()) {
            queue.cancel(tok);
        }
        if let Some(t) = load.next_after(now) {
            if cff {
                let tok = queue.schedule_cancellable(t, Event::Arrival(func));
                if let Some(rt) = world.funcs.get_mut(func) {
                    rt.arrival_token = Some(tok);
                }
            } else {
                queue.schedule(t, Event::Arrival(func));
            }
        }
        if let Some(rt) = world.funcs.get_mut(func) {
            rt.load = Some(load);
        } else {
            debug_assert!(false, "unknown function");
        }
    }

    /// Enables the auto-scaler with the given profile database.
    pub fn enable_autoscaler(&mut self, db: ProfileDb) {
        let (world, queue, now) = self.sim.parts_mut();
        world.steady_exit_all(now, true, queue);
        let interval = world.cfg.autoscale_interval;
        world.autoscale_db = Some(db);
        queue.schedule(now + interval, Event::ScaleTick);
    }

    /// Manually reconciles a function to `replicas` pods (scale up with
    /// the function's deploy-time resources, drain newest-first).
    pub fn scale_to(&mut self, func: FuncId, replicas: usize) {
        use fastg_cluster::cluster::ReconcileAction;
        let (world, queue, now) = self.sim.parts_mut();
        world.steady_exit_all(now, true, queue);
        if let Some(rt) = world.funcs.get_mut(func) {
            rt.desired_replicas = replicas;
        }
        match world.cluster.reconcile(func, replicas) {
            ReconcileAction::Create(n) => {
                let resources = world.funcs[func].resources;
                for _ in 0..n {
                    let _ = world.create_pod(now, func, resources, queue);
                }
            }
            ReconcileAction::Drain(pods) => {
                for p in pods {
                    world.drain_pod(now, p, queue);
                }
            }
            ReconcileAction::Steady => {}
        }
    }

    /// Runs for `duration` of simulated time and reports.
    pub fn run_for(&mut self, duration: SimTime) -> PlatformReport {
        if sanitizer::active() {
            // Re-register this platform's replay recipe: another platform
            // built later on this thread may have overwritten it.
            let (world, queue, _) = self.sim.parts_mut();
            sanitizer::set_run_context(sanitizer::RunContext {
                seed: world.cfg.seed,
                tiebreak: queue.tiebreak(),
                fastforward: world.cfg.fastforward,
            });
        }
        let deadline = self.sim.now() + duration;
        self.sim.run_until(deadline);
        {
            // The report boundary is inclusive of `now`: steady nodes
            // replay up to and including it before counters are read.
            let (world, queue, now) = self.sim.parts_mut();
            world.steady_exit_all(now, true, queue);
        }
        let now = self.sim.now();
        self.sim.world_mut().build_report(now)
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Events processed so far (determinism fingerprinting).
    pub fn events_handled(&self) -> u64 {
        self.sim.events_handled()
    }

    /// Pods that could not be placed.
    pub fn unschedulable_pods(&self) -> u64 {
        self.sim.world().unschedulable
    }

    /// Live resource reconfiguration for a function (FaSTPod spec sync):
    /// new `(sm %, quota_request, quota_limit)` applied to every running
    /// pod — MPS partition from the next launch, quotas within the
    /// current window — and to future replicas.
    pub fn reconfigure(
        &mut self,
        func: FuncId,
        sm_partition: f64,
        quota_request: f64,
        quota_limit: f64,
    ) -> Result<(), PlatformError> {
        let mem = self
            .sim
            .world()
            .funcs
            .get(func)
            .ok_or(PlatformError::UnknownFunction)?
            .resources
            .gpu_mem;
        let spec = ResourceSpec::new(sm_partition, quota_request, quota_limit, mem);
        let (world, queue, now) = self.sim.parts_mut();
        world.steady_exit_all(now, true, queue);
        world.reconfigure(now, func, spec, queue)
    }

    /// Failure injection: crash a pod immediately. Its in-flight request
    /// retries through the gateway; resident kernels drain before
    /// teardown. Returns whether a live pod was killed.
    pub fn kill_pod(&mut self, pod: fastg_cluster::PodId) -> bool {
        let (world, queue, now) = self.sim.parts_mut();
        world.steady_exit_all(now, true, queue);
        world.kill_pod(now, pod, queue)
    }

    /// Running pod ids of a function (targets for [`Self::kill_pod`]).
    pub fn pods_of(&self, func: FuncId) -> Vec<fastg_cluster::PodId> {
        self.sim.world().cluster.running_pods_of(func)
    }

    /// Pods crashed via failure injection so far.
    pub fn killed_pods(&self) -> u64 {
        self.sim.world().killed
    }

    /// Failure injection: power off node `node_index` immediately (same
    /// path the plan's `NodeCrash` takes). Returns whether the node was up.
    pub fn crash_node(&mut self, node_index: usize) -> bool {
        let (world, queue, now) = self.sim.parts_mut();
        world.steady_exit_all(now, true, queue);
        let ids = world.cluster.node_ids();
        if node_index >= ids.len() {
            return false;
        }
        world.crash_node(now, ids[node_index], queue)
    }

    /// Whether node `node_index` is still up.
    pub fn node_up(&self, node_index: usize) -> bool {
        let ids = self.sim.world().cluster.node_ids();
        ids.get(node_index)
            .map(|&n| !matches!(self.sim.world().cluster.node_state(n), Ok(NodeState::Down)))
            .unwrap_or(false)
    }

    /// SMs not granted to any resident kernel on a node.
    pub fn node_free_sms(&self, node_index: usize) -> u32 {
        let ids = self.sim.world().cluster.node_ids();
        ids.get(node_index)
            .and_then(|&n| self.sim.world().cluster.node(n).ok())
            .map(|n| n.gpu.free_sms())
            .unwrap_or(0)
    }

    /// Faults fired from the configured plan so far.
    pub fn faults_injected(&self) -> u64 {
        self.sim.world().faults_injected
    }

    /// Bursts the fast-forward layer coalesced into one macro-event.
    pub fn ff_bursts(&self) -> u64 {
        self.sim.world().ff_bursts
    }

    /// Kernel completions covered by coalesced macro-events (per-kernel
    /// events the simulation never had to schedule).
    pub fn coalesced_kernels(&self) -> u64 {
        self.sim.world().ff_coalesced_kernels
    }

    /// Steady request cycles the cluster fast-forward credited in closed
    /// form (each one a full request served without any scheduled event).
    pub fn ff_cluster_cycles(&self) -> u64 {
        self.sim.world().ff_cluster_cycles
    }

    /// Events the cluster fast-forward never had to schedule: the
    /// per-cycle event count times the cycles credited analytically.
    pub fn ff_cluster_coalesced_events(&self) -> u64 {
        self.sim.world().ff_cluster_events_coalesced
    }

    /// Requests of a function waiting in the gateway queue.
    pub fn queued_requests(&self, func: FuncId) -> usize {
        self.sim.world().gateway.queue_len(func)
    }

    /// Requests of a function shed by the gateway so far.
    pub fn dropped_requests(&self, func: FuncId) -> u64 {
        self.sim.world().gateway.dropped(func)
    }

    /// Requests refused at admission (bounded queue full or breaker
    /// fast-fail).
    pub fn rejected_requests(&self, func: FuncId) -> u64 {
        self.sim.world().gateway.rejected(func)
    }

    /// Requests shed because their deadline was provably unmeetable.
    pub fn shed_requests(&self, func: FuncId) -> u64 {
        self.sim.world().gateway.shed_deadline(func)
    }

    /// The function's circuit-breaker state (`None` if the function is
    /// unknown).
    pub fn breaker_state(&self, func: FuncId) -> Option<BreakerState> {
        self.sim.world().funcs.get(func).map(|f| f.breaker.state())
    }

    /// Times the function's breaker has tripped to Open.
    pub fn breaker_trips(&self, func: FuncId) -> u64 {
        self.sim
            .world()
            .funcs
            .get(func)
            .map(|f| f.breaker.trips())
            .unwrap_or(0)
    }

    /// Whether the function is currently serving browned-out (reduced
    /// quota).
    pub fn brownout_active(&self, func: FuncId) -> bool {
        self.sim
            .world()
            .funcs
            .get(func)
            .is_some_and(|f| f.breaker.browned())
    }

    /// Real (gateway-arrived) requests currently executing on a pod;
    /// synthetic saturating work is excluded.
    pub fn in_flight_requests(&self) -> usize {
        self.sim
            .world()
            .pods
            .values()
            .filter_map(|rt| rt.active.as_ref())
            .filter(|a| a.req.id.0 < 1 << 60)
            .count()
    }

    /// Running replica count of a function.
    pub fn replicas(&self, func: FuncId) -> usize {
        self.sim.world().cluster.running_pods_of(func).len()
    }

    /// Number of GPUs with at least one pod bound.
    pub fn gpus_in_use(&self) -> usize {
        self.sim.world().selector.gpus_in_use()
    }

    /// Name of the active placement policy (e.g. `"paper-algo1"`,
    /// `"fast-path"`).
    pub fn scheduler_name(&self) -> &'static str {
        self.sim.world().selector.name()
    }

    /// Lifetime placement counters of the active scheduler.
    pub fn scheduler_stats(&self) -> SchedStats {
        self.sim.world().selector.stats()
    }

    /// Mean spatial fragmentation across GPUs with at least one pod.
    pub fn mean_fragmentation(&self) -> f64 {
        self.sim.world().selector.mean_fragmentation()
    }

    /// Builds a report at the current instant without advancing time.
    pub fn report(&mut self) -> PlatformReport {
        {
            let (world, queue, now) = self.sim.parts_mut();
            world.steady_exit_all(now, true, queue);
        }
        let now = self.sim.now();
        self.sim.world_mut().build_report(now)
    }

    /// The per-event delivery trace (`{time} {event}` lines), recorded
    /// only when [`PlatformConfig::trace_events`] is set. The race
    /// detector diffs two traces to find the first divergent event.
    pub fn event_trace(&self) -> &[String] {
        &self.sim.world().trace
    }

    /// Device memory in use on a node (bytes).
    pub fn node_memory_used(&self, node_index: usize) -> u64 {
        let ids = self.sim.world().cluster.node_ids();
        ids.get(node_index)
            .and_then(|&n| self.sim.world().cluster.node(n).ok())
            .map(|n| n.gpu.memory().used())
            .unwrap_or(0)
    }
}

// ----- checkpoint / fork ------------------------------------------------
//
// Everything below serializes engine state for `Platform::checkpoint`.
// Every `snap`/`unsnap` body destructures its struct exhaustively (no
// `..` rest patterns) so adding a field without deciding its snapshot
// story is a compile error, and the `exhaustive-snapshot-fields` lint
// rule keeps it that way.

impl Snap for Event {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Event::Arrival(func) => {
                w.u8(0);
                func.snap(w);
            }
            Event::HostDone(pod) => {
                w.u8(1);
                pod.snap(w);
            }
            Event::KernelFinish(node, kernel) => {
                w.u8(2);
                node.snap(w);
                kernel.snap(w);
            }
            Event::BurstFastForward(node, pod) => {
                w.u8(3);
                node.snap(w);
                pod.snap(w);
            }
            Event::WindowReset(node) => {
                w.u8(4);
                node.snap(w);
            }
            Event::ScaleTick => w.u8(5),
            Event::MetricsSample => w.u8(6),
            Event::Fault(index) => {
                w.u8(7);
                w.len_prefix(*index);
            }
            Event::HealthTick => w.u8(8),
            Event::RequestTimeout(func, id) => {
                w.u8(9);
                func.snap(w);
                id.snap(w);
            }
            Event::BreakerTick => w.u8(10),
            Event::Dispatch(node) => {
                w.u8(11);
                node.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Event::Arrival(FuncId::unsnap(r)?),
            1 => Event::HostDone(PodId::unsnap(r)?),
            2 => Event::KernelFinish(NodeId::unsnap(r)?, KernelId::unsnap(r)?),
            3 => Event::BurstFastForward(NodeId::unsnap(r)?, PodId::unsnap(r)?),
            4 => Event::WindowReset(NodeId::unsnap(r)?),
            5 => Event::ScaleTick,
            6 => Event::MetricsSample,
            7 => Event::Fault(r.len_prefix()?),
            8 => Event::HealthTick,
            9 => Event::RequestTimeout(FuncId::unsnap(r)?, RequestId::unsnap(r)?),
            10 => Event::BreakerTick,
            11 => Event::Dispatch(NodeId::unsnap(r)?),
            // A match over the wire tag, not over `Event`: the wildcard
            // is the mandatory invalid-byte error path.
            // fastg-lint: allow(exhaustive-event-match)
            _ => return Err(SnapError::new("event tag")),
        })
    }
}

impl Snap for FuncRt {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            spec,
            model,
            resources,
            slo,
            completions,
            load,
            saturate,
            replica_series,
            desired_replicas,
            outage_since,
            backoff_exp,
            backoff_until,
            recoveries,
            service_est,
            goodput,
            wasted_service,
            browned_out,
            breaker,
            arrival_token,
            normal_resources,
        } = self;
        spec.snap(w);
        model.snap(w);
        resources.snap(w);
        slo.snap(w);
        completions.snap(w);
        load.snap(w);
        w.bool(*saturate);
        replica_series.snap(w);
        w.len_prefix(*desired_replicas);
        outage_since.snap(w);
        w.u32(*backoff_exp);
        backoff_until.snap(w);
        recoveries.snap(w);
        service_est.snap(w);
        goodput.snap(w);
        wasted_service.snap(w);
        w.u64(*browned_out);
        breaker.snap(w);
        arrival_token.snap(w);
        normal_resources.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FuncRt {
            spec: FaSTFuncSpec::unsnap(r)?,
            model: Arc::unsnap(r)?,
            resources: ResourceSpec::unsnap(r)?,
            slo: SloTracker::unsnap(r)?,
            completions: RateMeter::unsnap(r)?,
            load: Option::unsnap(r)?,
            saturate: r.bool()?,
            replica_series: TimeSeries::unsnap(r)?,
            desired_replicas: r.len_prefix()?,
            outage_since: Option::unsnap(r)?,
            backoff_exp: r.u32()?,
            backoff_until: SimTime::unsnap(r)?,
            recoveries: Vec::unsnap(r)?,
            service_est: BurstEstimator::unsnap(r)?,
            goodput: RateMeter::unsnap(r)?,
            wasted_service: SimTime::unsnap(r)?,
            browned_out: r.u64()?,
            breaker: CircuitBreaker::unsnap(r)?,
            arrival_token: Option::unsnap(r)?,
            normal_resources: ResourceSpec::unsnap(r)?,
        })
    }
}

impl Snap for ArmedCycle {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            pod,
            arrival,
            completion,
            busy,
            occ_raw,
            kernels,
            client_busy,
            q_used,
            epochs,
            tokens,
            events,
        } = self;
        pod.snap(w);
        arrival.snap(w);
        completion.snap(w);
        busy.snap(w);
        w.f64(*occ_raw);
        w.u64(*kernels);
        client_busy.snap(w);
        q_used.snap(w);
        w.u64(*epochs);
        w.u64(*tokens);
        w.u64(*events);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ArmedCycle {
            pod: PodId::unsnap(r)?,
            arrival: SimTime::unsnap(r)?,
            completion: SimTime::unsnap(r)?,
            busy: SimTime::unsnap(r)?,
            occ_raw: r.f64()?,
            kernels: r.u64()?,
            client_busy: SimTime::unsnap(r)?,
            q_used: SimTime::unsnap(r)?,
            epochs: r.u64()?,
            tokens: r.u64()?,
            events: r.u64()?,
        })
    }
}

impl Snap for SteadyCycle {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            func,
            pod,
            client,
            gap,
            latency,
            next_arrival,
            met,
            d_busy,
            d_occ_raw,
            d_kernels,
            d_client_busy,
            d_q_used,
            d_epochs,
            d_tokens,
            cycle_events,
        } = self;
        func.snap(w);
        pod.snap(w);
        client.snap(w);
        gap.snap(w);
        latency.snap(w);
        next_arrival.snap(w);
        w.bool(*met);
        d_busy.snap(w);
        w.f64(*d_occ_raw);
        w.u64(*d_kernels);
        d_client_busy.snap(w);
        d_q_used.snap(w);
        w.u64(*d_epochs);
        w.u64(*d_tokens);
        w.u64(*cycle_events);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cycle = SteadyCycle {
            func: FuncId::unsnap(r)?,
            pod: PodId::unsnap(r)?,
            client: ClientId::unsnap(r)?,
            gap: SimTime::unsnap(r)?,
            latency: SimTime::unsnap(r)?,
            next_arrival: SimTime::unsnap(r)?,
            met: r.bool()?,
            d_busy: SimTime::unsnap(r)?,
            d_occ_raw: r.f64()?,
            d_kernels: r.u64()?,
            d_client_busy: SimTime::unsnap(r)?,
            d_q_used: SimTime::unsnap(r)?,
            d_epochs: r.u64()?,
            d_tokens: r.u64()?,
            cycle_events: r.u64()?,
        };
        // A steady template requires gap > latency (the queue is provably
        // always empty); an encoding violating that is corrupt.
        if cycle.gap <= cycle.latency {
            return Err(SnapError::new("steady cycle gap"));
        }
        Ok(cycle)
    }
}

impl Snap for NodePhase {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            NodePhase::Inactive => w.u8(0),
            NodePhase::Armed(cycle) => {
                w.u8(1);
                cycle.snap(w);
            }
            NodePhase::Steady(cycle) => {
                w.u8(2);
                cycle.snap(w);
            }
            NodePhase::Resuming { cycle, expect } => {
                w.u8(3);
                cycle.snap(w);
                expect.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => NodePhase::Inactive,
            1 => NodePhase::Armed(ArmedCycle::unsnap(r)?),
            2 => NodePhase::Steady(SteadyCycle::unsnap(r)?),
            3 => NodePhase::Resuming {
                cycle: SteadyCycle::unsnap(r)?,
                expect: SimTime::unsnap(r)?,
            },
            _ => return Err(SnapError::new("node phase tag")),
        })
    }
}

impl ActiveReq {
    /// Encodes the request plus its inference cursor. The model profile
    /// itself is *not* written — checkpoints of a fleet hold one profile
    /// copy per function, not one per in-flight request — so decode takes
    /// the owning function's profile as context.
    fn snap_state(&self, w: &mut SnapWriter) {
        let Self {
            req,
            started,
            run,
            pending_stage,
            outstanding,
            burst_gpu_time,
            waiting_token,
            ff,
        } = self;
        req.snap(w);
        started.snap(w);
        run.snap_cursor(w);
        pending_stage.snap(w);
        w.len_prefix(*outstanding);
        burst_gpu_time.snap(w);
        w.bool(*waiting_token);
        ff.snap(w);
    }

    fn unsnap_state(
        r: &mut SnapReader<'_>,
        profile: &Arc<ModelProfile>,
    ) -> Result<Self, SnapError> {
        let req = Request::unsnap(r)?;
        let started = SimTime::unsnap(r)?;
        let run = InferenceRun::unsnap_cursor(r, Arc::clone(profile))?;
        let pending_stage = Option::unsnap(r)?;
        if pending_stage.is_some_and(|s: usize| s >= profile.stages.len()) {
            return Err(SnapError::new("active request pending stage"));
        }
        Ok(ActiveReq {
            req,
            started,
            run,
            pending_stage,
            outstanding: r.len_prefix()?,
            burst_gpu_time: SimTime::unsnap(r)?,
            waiting_token: r.bool()?,
            ff: Option::unsnap(r)?,
        })
    }
}

impl PodRt {
    fn snap_state(&self, w: &mut SnapWriter) {
        let Self {
            func,
            node,
            client,
            active,
            storelib,
            bound_rect,
            zombie,
        } = self;
        func.snap(w);
        node.snap(w);
        client.snap(w);
        match active {
            Some(a) => {
                w.u8(1);
                a.snap_state(w);
            }
            None => w.u8(0),
        }
        storelib.snap(w);
        w.bool(*bound_rect);
        zombie.snap(w);
    }

    /// Decodes one pod, resolving its active request's model profile
    /// through the (already decoded) function table.
    fn unsnap_state(
        r: &mut SnapReader<'_>,
        funcs: &IdArena<FuncId, FuncRt>,
    ) -> Result<Self, SnapError> {
        let func = FuncId::unsnap(r)?;
        let node = NodeId::unsnap(r)?;
        let client = ClientId::unsnap(r)?;
        let active = match r.u8()? {
            0 => None,
            1 => {
                let profile = funcs
                    .get(func)
                    .map(|f| Arc::clone(&f.model))
                    .ok_or(SnapError::new("pod function binding"))?;
                Some(ActiveReq::unsnap_state(r, &profile)?)
            }
            _ => return Err(SnapError::new("pod active tag")),
        };
        Ok(PodRt {
            func,
            node,
            client,
            active,
            storelib: Option::unsnap(r)?,
            bound_rect: r.bool()?,
            zombie: Option::unsnap(r)?,
        })
    }
}

impl Engine {
    /// Serializes the complete engine state. Scratch buffers
    /// (`burst_scratch`, `started_scratch`) are recycling caches with no
    /// semantic content between events; they restore empty.
    fn snap_state(&self, w: &mut SnapWriter) {
        let Self {
            cfg,
            cluster,
            gateway,
            backends,
            stores,
            selector,
            funcs,
            pods,
            autoscale_db,
            next_func,
            next_synth,
            unschedulable,
            killed,
            faults_injected,
            ff_bursts,
            ff_coalesced_kernels,
            burst_scratch: _,
            started_scratch: _,
            dispatch_pending,
            node_phase,
            node_events,
            ff_cluster_cycles,
            ff_cluster_events_coalesced,
            trace,
        } = self;
        cfg.snap(w);
        cluster.snap(w);
        gateway.snap(w);
        backends.snap(w);
        stores.snap(w);
        selector.snap_state(w);
        funcs.snap(w);
        pods.snap_with(w, |pod, w| pod.snap_state(w));
        autoscale_db.snap(w);
        w.u32(*next_func);
        w.u64(*next_synth);
        w.u64(*unschedulable);
        w.u64(*killed);
        w.u64(*faults_injected);
        w.u64(*ff_bursts);
        w.u64(*ff_coalesced_kernels);
        dispatch_pending.snap(w);
        node_phase.snap(w);
        node_events.snap(w);
        w.u64(*ff_cluster_cycles);
        w.u64(*ff_cluster_events_coalesced);
        trace.snap(w);
    }

    /// Rebuilds an engine from [`Self::snap_state`] output. The scheduler
    /// is reconstructed from the decoded config (policy identity is not
    /// part of the payload) and then handed its captured planes.
    fn unsnap_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = PlatformConfig::unsnap(r)?;
        let cluster = Cluster::unsnap(r)?;
        let gateway = Gateway::unsnap(r)?;
        let backends: IdArena<NodeId, FastBackend> = IdArena::unsnap(r)?;
        let stores: IdArena<NodeId, ModelStorageServer> = IdArena::unsnap(r)?;
        let mut selector = make_selector(&cfg);
        selector.restore_state(r)?;
        let funcs: IdArena<FuncId, FuncRt> = IdArena::unsnap(r)?;
        let pods = IdArena::unsnap_with(r, |_, r| PodRt::unsnap_state(r, &funcs))?;
        let autoscale_db = Option::unsnap(r)?;
        let next_func = r.u32()?;
        let next_synth = r.u64()?;
        let unschedulable = r.u64()?;
        let killed = r.u64()?;
        let faults_injected = r.u64()?;
        let ff_bursts = r.u64()?;
        let ff_coalesced_kernels = r.u64()?;
        let dispatch_pending = IdSet::unsnap(r)?;
        let node_phase: Vec<NodePhase> = Vec::unsnap(r)?;
        let node_events: Vec<u64> = Vec::unsnap(r)?;
        let ff_cluster_cycles = r.u64()?;
        let ff_cluster_events_coalesced = r.u64()?;
        let trace = Vec::unsnap(r)?;
        let nodes = cluster.node_ids().len();
        if node_phase.len() != nodes || node_events.len() != nodes {
            return Err(SnapError::new("engine node tables"));
        }
        if backends.len() != nodes || stores.len() != nodes {
            return Err(SnapError::new("engine per-node services"));
        }
        Ok(Engine {
            cfg,
            cluster,
            gateway,
            backends,
            stores,
            selector,
            funcs,
            pods,
            autoscale_db,
            next_func,
            next_synth,
            unschedulable,
            killed,
            faults_injected,
            ff_bursts,
            ff_coalesced_kernels,
            burst_scratch: Vec::new(),
            started_scratch: Vec::new(),
            dispatch_pending,
            node_phase,
            node_events,
            ff_cluster_cycles,
            ff_cluster_events_coalesced,
            trace,
        })
    }
}

impl Platform {
    /// Captures the complete platform — driver clock, engine state, event
    /// queue — as a versioned, immutable [`Snapshot`].
    ///
    /// The capture is exact, not a quiesced approximation: steady
    /// fast-forward phases, in-flight requests, pending cancellable
    /// events and RNG states are all carried verbatim, so a platform
    /// restored from the snapshot replays the future byte-identically
    /// (equal [`PlatformReport::digest`]) to this one running on.
    pub fn checkpoint(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        self.sim.now().snap(&mut w);
        w.u64(self.sim.events_handled());
        self.sim.world().snap_state(&mut w);
        self.sim.queue().snap_state(&mut w);
        Snapshot::seal(w.finish())
    }

    /// Builds a platform from a [`Snapshot`], the warm-resume entry point
    /// of prefix-shared sweeps: simulate common warmup once, checkpoint,
    /// then fan every treatment cell out from the shared snapshot.
    ///
    /// The snapshot carries the resolved [`PlatformConfig`], so restore
    /// is environment-independent: `FASTG_*` variables set at restore
    /// time do not alter a snapshot taken under different ones.
    pub fn from_snapshot(snapshot: &Snapshot) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(snapshot.payload()?);
        let now = SimTime::unsnap(&mut r)?;
        let handled = r.u64()?;
        let engine = Engine::unsnap_state(&mut r)?;
        let mut sim = Simulation::new(engine);
        {
            let (world, queue, _) = sim.parts_mut();
            // The classifier is a function pointer (not serializable);
            // reinstall it before the queue refills. The tie-break policy
            // and sequence counter come from the snapshot itself.
            queue.set_classifier(|e: &Event| e.class());
            queue.restore_state(&mut r)?;
            if let Some(cap) = world.cfg.event_capacity {
                queue.reserve(cap);
            }
        }
        r.expect_done()?;
        sim.restore_clock(now, handled);
        if sanitizer::active() {
            let (world, queue, _) = sim.parts_mut();
            sanitizer::set_run_context(sanitizer::RunContext {
                seed: world.cfg.seed,
                tiebreak: queue.tiebreak(),
                fastforward: world.cfg.fastforward,
            });
        }
        Ok(Platform { sim })
    }

    /// Replaces this platform's entire state with the snapshot's
    /// (successive-halving rewinds survivors this way in place).
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapError> {
        *self = Self::from_snapshot(snapshot)?;
        Ok(())
    }

    /// A deep, independent copy of this platform, cloned through the
    /// snapshot path: the fork shares nothing with the original, so
    /// dropping either frees its arenas outright — eliminated sweep
    /// branches actually return their memory.
    pub fn fork(&self) -> Result<Self, SnapError> {
        Self::from_snapshot(&self.checkpoint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_platform(policy: SharingPolicy) -> (Platform, FuncId) {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(policy)
                .seed(1),
        );
        let f = p
            .deploy(
                FunctionConfig::new("fastsvc-resnet", "resnet50")
                    .slo_ms(200)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .unwrap();
        (p, f)
    }

    #[test]
    fn checkpoint_restore_digest_parity() {
        // Straight-through run.
        let (mut straight, f) = resnet_platform(SharingPolicy::FaST);
        straight.set_load(f, ArrivalProcess::poisson(30.0, 3));
        straight.run_for(SimTime::from_secs(2));
        let baseline = straight.run_for(SimTime::from_secs(3));

        // Same scenario, checkpointed mid-run and resumed in a fresh
        // platform: the tail must be byte-identical.
        let (mut p, f) = resnet_platform(SharingPolicy::FaST);
        p.set_load(f, ArrivalProcess::poisson(30.0, 3));
        p.run_for(SimTime::from_secs(2));
        let snap = p.checkpoint();
        let mut resumed = Platform::from_snapshot(&snap).unwrap();
        assert_eq!(resumed.now(), p.now());
        assert_eq!(resumed.events_handled(), p.events_handled());
        let replayed = resumed.run_for(SimTime::from_secs(3));
        assert_eq!(replayed.digest(), baseline.digest());

        // The checkpointed original, running on, agrees too.
        let continued = p.run_for(SimTime::from_secs(3));
        assert_eq!(continued.digest(), baseline.digest());
    }

    #[test]
    fn fork_is_independent() {
        let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(9));
        let f = p
            .deploy(
                FunctionConfig::new("forked", "resnet50")
                    .slo_ms(200)
                    .replicas(1)
                    .resources(25.0, 0.25, 0.25),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(25.0, 9));
        p.run_for(SimTime::from_secs(1));
        let mut fork = p.fork().unwrap();
        // Diverge the fork; the original must not notice.
        fork.scale_to(f, 3);
        fork.run_for(SimTime::from_secs(1));
        let before = p.events_handled();
        let r1 = p.run_for(SimTime::from_secs(1));
        assert!(p.events_handled() > before);
        assert_eq!(p.replicas(f), 1);
        assert_eq!(fork.replicas(f), 3);
        assert!(r1.functions[&f].completed > 0);
    }

    #[test]
    fn snapshot_bytes_round_trip_through_container() {
        let (mut p, f) = resnet_platform(SharingPolicy::FaST);
        p.set_load(f, ArrivalProcess::constant(20.0));
        p.run_for(SimTime::from_secs(1));
        let snap = p.checkpoint();
        let reopened = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        let a = Platform::from_snapshot(&snap).unwrap().run_for(SimTime::from_secs(2));
        let b = Platform::from_snapshot(&reopened)
            .unwrap()
            .run_for(SimTime::from_secs(2));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn single_pod_serves_requests_end_to_end() {
        let (mut p, f) = resnet_platform(SharingPolicy::FaST);
        p.set_load(f, ArrivalProcess::poisson(30.0, 3));
        let report = p.run_for(SimTime::from_secs(5));
        let fr = &report.functions[&f];
        assert!(fr.completed > 100, "completed {}", fr.completed);
        // At 30 rps offered and ~71 rps capacity, all requests complete.
        assert!((fr.throughput_rps - 30.0).abs() < 4.0, "rps {}", fr.throughput_rps);
        assert!(fr.p50 >= SimTime::from_millis(13), "p50 {}", fr.p50);
        assert!(fr.p99 < SimTime::from_millis(100), "p99 {}", fr.p99);
    }

    #[test]
    fn saturating_function_reaches_model_capacity() {
        let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(2));
        let f = p
            .deploy(
                FunctionConfig::new("sat", "resnet50")
                    .resources(100.0, 1.0, 1.0)
                    .saturating(),
            )
            .unwrap();
        let report = p.run_for(SimTime::from_secs(5));
        let fr = &report.functions[&f];
        // Racing single-pod capacity is ~71 rps; token leases cost a
        // little.
        assert!(fr.throughput_rps > 60.0, "rps {}", fr.throughput_rps);
        assert!(fr.throughput_rps < 80.0, "rps {}", fr.throughput_rps);
    }

    #[test]
    fn quota_limits_throughput_proportionally() {
        let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(3));
        let f = p
            .deploy(
                FunctionConfig::new("q40", "resnet50")
                    .resources(100.0, 0.4, 0.4)
                    .saturating(),
            )
            .unwrap();
        let report = p.run_for(SimTime::from_secs(5));
        let fr = &report.functions[&f];
        // ideal: 0.4 / 10ms device = 40 rps.
        assert!(
            (fr.throughput_rps - 40.0).abs() < 6.0,
            "rps {}",
            fr.throughput_rps
        );
    }

    #[test]
    fn exclusive_policy_runs_one_pod() {
        let (mut p, f) = resnet_platform(SharingPolicy::Exclusive);
        p.set_load(f, ArrivalProcess::constant(20.0));
        let report = p.run_for(SimTime::from_secs(3));
        assert!(report.functions[&f].completed > 40);
        // A second pod cannot be deployed on the exclusive node.
        let err = p.deploy(FunctionConfig::new("second", "resnet50"));
        assert!(err.is_err());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut p, f) = resnet_platform(SharingPolicy::FaST);
            p.set_load(f, ArrivalProcess::poisson(50.0, 9));
            let r = p.run_for(SimTime::from_secs(3));
            (
                p.events_handled(),
                r.functions[&f].completed,
                r.functions[&f].p99,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scale_to_adds_and_drains_pods() {
        let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(1));
        let f = p
            .deploy(
                FunctionConfig::new("fastsvc-resnet", "resnet50")
                    .slo_ms(200)
                    .replicas(1)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        p.scale_to(f, 3);
        assert_eq!(p.replicas(f), 3);
        p.set_load(f, ArrivalProcess::constant(100.0));
        p.run_for(SimTime::from_secs(1));
        p.scale_to(f, 1);
        p.run_for(SimTime::from_secs(2));
        assert_eq!(p.replicas(f), 1);
    }

    #[test]
    fn unknown_model_rejected() {
        let mut p = Platform::new(PlatformConfig::default());
        assert!(p.deploy(FunctionConfig::new("x", "not-a-model")).is_err());
    }
}
