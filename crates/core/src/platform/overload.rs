//! Overload control plane: bounded admission, deadline-aware shedding,
//! per-function circuit breaking and brownout serving.
//!
//! FaST-GShare's SLO machinery (Algorithms 1–2) holds only while the
//! auto-scaler can keep up. During a flash crowd — or while a node from
//! the fault plan is down — the platform needs to *refuse, shed or
//! degrade* work instead of queueing it without limit. This module holds
//! the pure state machines; the engine drives them from DES events so the
//! whole plane replays digest-identically at any thread count, with
//! fast-forward on or off, clean or under chaos.
//!
//! Control loop, per function:
//!
//! * the gateway bounds the admission queue
//!   ([`queue_capacity`](OverloadConfig::queue_capacity)) and refuses the
//!   excess (`Admission::Overloaded`);
//! * every admitted request carries an absolute deadline
//!   (`arrival + deadline_factor × SLO`); at each dispatch opportunity the
//!   queue prefix whose deadlines are provably unmeetable — queue wait
//!   plus the smoothed service-time estimate exceeds the deadline — is
//!   shed before any capacity is burned on it;
//! * a [`CircuitBreaker`] watches per-window shed and failure ratios and
//!   trips Closed → Open; Open transitions to HalfOpen on a deterministic
//!   timer and lets a bounded number of probe requests through; probes
//!   must stay healthy for a hysteresis streak before the breaker closes;
//! * a shed-rate trip enters **brownout**: the engine reconfigures the
//!   function's replicas to a reduced quota request (serving degraded
//!   instead of hard-failing) and restores full quota only after a
//!   recovery-hysteresis streak of healthy windows; a failure-rate trip
//!   (node crash) fast-fails new arrivals until probes succeed.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;
use std::collections::BTreeSet;

/// Tuning for the overload control plane. Attached to
/// [`PlatformConfig`](super::PlatformConfig) via
/// [`overload`](super::PlatformConfig::overload); `None` disables the
/// whole plane (legacy unbounded queueing).
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Bound on each function's admission queue; arrivals beyond it are
    /// rejected with `Admission::Overloaded`.
    pub queue_capacity: usize,
    /// Absolute deadline as a multiple of the function's SLO
    /// (deadline = arrival + factor × SLO). 1.0 sheds everything that
    /// cannot meet the SLO itself.
    pub deadline_factor: f64,
    /// Breaker evaluation period (one `BreakerTick` per window).
    pub breaker_window: SimTime,
    /// Closed → Open when `(shed + rejected) / arrivals` in a window
    /// reaches this ratio (with at least `min_window_arrivals` arrivals).
    pub trip_shed_ratio: f64,
    /// Closed → Open when `failures / (failures + successes)` in a window
    /// reaches this ratio (with at least `min_failures` failures).
    /// Failures are crash-lost requests — this is the fast-fail path for
    /// node crashes.
    pub trip_failure_ratio: f64,
    /// Minimum arrivals in a window before the shed ratio can trip.
    pub min_window_arrivals: u64,
    /// Minimum failures in a window before the failure ratio can trip.
    pub min_failures: u64,
    /// How long the breaker stays Open before probing (Open → HalfOpen).
    pub open_duration: SimTime,
    /// Probe admissions allowed per window while HalfOpen.
    pub half_open_probes: u64,
    /// Consecutive all-healthy HalfOpen windows required to close.
    pub close_healthy_windows: u32,
    /// Serve degraded instead of hard-failing on shed-rate trips.
    pub brownout: bool,
    /// Quota-request multiplier applied to replicas while browned out.
    pub brownout_quota_factor: f64,
    /// Consecutive healthy Closed windows before full quota is restored.
    pub recover_healthy_windows: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_capacity: 64,
            deadline_factor: 1.0,
            breaker_window: SimTime::from_millis(250),
            trip_shed_ratio: 0.5,
            trip_failure_ratio: 0.5,
            min_window_arrivals: 10,
            min_failures: 2,
            open_duration: SimTime::from_millis(500),
            half_open_probes: 4,
            close_healthy_windows: 2,
            brownout: true,
            brownout_quota_factor: 0.5,
            recover_healthy_windows: 3,
        }
    }
}

impl OverloadConfig {
    /// Sets the admission-queue bound.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the deadline as a multiple of the SLO.
    pub fn deadline_factor(mut self, f: f64) -> Self {
        debug_assert!(f > 0.0, "non-positive deadline factor");
        if f.is_finite() && f > 0.0 {
            self.deadline_factor = f;
        }
        self
    }

    /// Sets the breaker evaluation window.
    pub fn breaker_window(mut self, w: SimTime) -> Self {
        debug_assert!(w > SimTime::ZERO, "zero breaker window");
        self.breaker_window = w.max(SimTime::from_micros(1));
        self
    }

    /// Sets the Open dwell time before probing.
    pub fn open_duration(mut self, d: SimTime) -> Self {
        self.open_duration = d;
        self
    }

    /// Enables/disables brownout serving on shed-rate trips.
    pub fn brownout(mut self, on: bool) -> Self {
        self.brownout = on;
        self
    }

    /// Sets the browned-out quota-request multiplier, clamped to (0, 1].
    pub fn brownout_quota_factor(mut self, f: f64) -> Self {
        debug_assert!(f > 0.0 && f <= 1.0, "brownout factor out of (0, 1]");
        if f.is_finite() {
            self.brownout_quota_factor = f.clamp(0.05, 1.0);
        }
        self
    }
}

/// Circuit-breaker states (the classic three-state machine, driven by
/// deterministic DES timers instead of wall clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal admission; window ratios are watched for trips.
    Closed,
    /// Tripped: arrivals fast-fail (or serve browned-out after a
    /// shed-rate trip) until `open_duration` elapses.
    Open,
    /// Probing: a bounded number of requests per window are admitted and
    /// their outcomes decide between re-opening and closing.
    HalfOpen,
}

impl BreakerState {
    /// Canonical lowercase name (used in reports and displays).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Why the breaker last tripped — decides Open-state behaviour (brownout
/// serving for overload, fast-fail for crash-driven failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCause {
    /// Shed/reject ratio over threshold (flash crowd).
    Shed,
    /// Failure ratio over threshold (crash-lost requests).
    Failure,
}

/// What the engine must do after a breaker tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAction {
    /// Nothing beyond internal state bookkeeping.
    None,
    /// The breaker tripped on shed rate with brownout enabled: degrade
    /// the function's replicas to the brownout quota.
    EnterBrownout,
    /// Recovery hysteresis satisfied: restore full quota.
    ExitBrownout,
}

/// Per-arrival admission decision from [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admit normally.
    Admit,
    /// Admit as a HalfOpen probe (outcome feeds the close decision).
    Probe,
    /// Fast-fail without queueing.
    Refuse,
}

/// Per-function circuit breaker. All state is integer counters, BTree
/// collections and `SimTime`s — replay is digest-exact by construction.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    cause: TripCause,
    opened_at: SimTime,
    trips: u64,
    /// Current-window counters, reset every tick.
    arrivals: u64,
    sheds: u64,
    failures: u64,
    successes: u64,
    /// HalfOpen probe bookkeeping (ids survive across windows until their
    /// outcome arrives).
    probe_ids: BTreeSet<u64>,
    probes_admitted: u64,
    probe_successes: u64,
    probe_failures: u64,
    healthy_windows: u32,
    /// Brownout latch: set on a shed trip, cleared by recovery hysteresis.
    browned: bool,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBreaker {
    /// A closed breaker with no history.
    pub fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            cause: TripCause::Shed,
            opened_at: SimTime::ZERO,
            trips: 0,
            arrivals: 0,
            sheds: 0,
            failures: 0,
            successes: 0,
            probe_ids: BTreeSet::new(),
            probes_admitted: 0,
            probe_successes: 0,
            probe_failures: 0,
            healthy_windows: 0,
            browned: false,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Why the breaker last tripped.
    pub fn cause(&self) -> TripCause {
        self.cause
    }

    /// Times the breaker has tripped Closed/HalfOpen → Open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the function is currently serving browned-out.
    pub fn browned(&self) -> bool {
        self.browned
    }

    /// Decides admission for one arrival. Counts the arrival; a refusal
    /// also counts as a shed in the current window.
    pub fn admit(&mut self, cfg: &OverloadConfig, id: u64) -> AdmitDecision {
        self.arrivals += 1;
        match self.state {
            BreakerState::Closed => AdmitDecision::Admit,
            BreakerState::Open => self.degraded_admit(cfg),
            BreakerState::HalfOpen => {
                if self.probes_admitted < cfg.half_open_probes {
                    self.probes_admitted += 1;
                    self.probe_ids.insert(id);
                    AdmitDecision::Probe
                } else {
                    self.degraded_admit(cfg)
                }
            }
        }
    }

    /// Open-state policy: brownout serving after a shed trip (if
    /// enabled), otherwise fast-fail.
    fn degraded_admit(&mut self, cfg: &OverloadConfig) -> AdmitDecision {
        if cfg.brownout && self.cause == TripCause::Shed {
            AdmitDecision::Admit
        } else {
            self.sheds += 1;
            AdmitDecision::Refuse
        }
    }

    /// Records a request shed or rejected after admission (queue full,
    /// deadline unmeetable, queue timeout).
    pub fn on_shed(&mut self, id: u64) {
        self.sheds += 1;
        if self.probe_ids.remove(&id) {
            self.probe_failures += 1;
        }
    }

    /// Records a request lost to a pod/node crash.
    pub fn on_failure(&mut self, id: u64) {
        self.failures += 1;
        if self.probe_ids.remove(&id) {
            self.probe_failures += 1;
        }
    }

    /// Records a completion; `met_slo` decides probe health.
    pub fn on_completion(&mut self, id: u64, met_slo: bool) {
        self.successes += 1;
        if self.probe_ids.remove(&id) {
            if met_slo {
                self.probe_successes += 1;
            } else {
                self.probe_failures += 1;
            }
        }
    }

    /// One deterministic evaluation tick at `now`. Advances the state
    /// machine, resets window counters and tells the engine what (if
    /// anything) to reconfigure.
    pub fn tick(&mut self, now: SimTime, cfg: &OverloadConfig) -> BreakerAction {
        let action = match self.state {
            BreakerState::Closed => self.tick_closed(now, cfg),
            BreakerState::Open => {
                if now.saturating_sub(self.opened_at) >= cfg.open_duration {
                    self.state = BreakerState::HalfOpen;
                    self.reset_probes();
                    self.healthy_windows = 0;
                }
                BreakerAction::None
            }
            BreakerState::HalfOpen => {
                if self.probe_failures > 0 {
                    // A probe died: re-open and wait another full dwell.
                    self.trip(now, self.cause, cfg)
                } else if self.probe_successes > 0 {
                    // Every resolved probe this window was healthy.
                    self.healthy_windows += 1;
                    if self.healthy_windows >= cfg.close_healthy_windows {
                        self.state = BreakerState::Closed;
                        self.healthy_windows = 0;
                        self.probe_ids.clear();
                    } else {
                        self.reset_probes();
                    }
                    BreakerAction::None
                } else {
                    // No probe outcomes yet: keep waiting (idle functions
                    // stay HalfOpen until traffic probes them).
                    BreakerAction::None
                }
            }
        };
        self.arrivals = 0;
        self.sheds = 0;
        self.failures = 0;
        self.successes = 0;
        action
    }

    fn tick_closed(&mut self, now: SimTime, cfg: &OverloadConfig) -> BreakerAction {
        let shed_trip = self.arrivals >= cfg.min_window_arrivals
            && self.sheds as f64 >= cfg.trip_shed_ratio * self.arrivals as f64;
        let outcomes = self.failures + self.successes;
        let failure_trip = self.failures >= cfg.min_failures
            && outcomes > 0
            && self.failures as f64 >= cfg.trip_failure_ratio * outcomes as f64;
        if failure_trip || shed_trip {
            // Failure trips dominate: a crashed node must fast-fail even
            // if the dead capacity also inflates the shed ratio.
            let cause = if failure_trip {
                TripCause::Failure
            } else {
                TripCause::Shed
            };
            return self.trip(now, cause, cfg);
        }
        // Healthy Closed window: advance brownout-recovery hysteresis.
        if self.browned {
            let unhealthy = self.sheds > 0 || self.failures > 0;
            if unhealthy {
                self.healthy_windows = 0;
            } else {
                self.healthy_windows += 1;
                if self.healthy_windows >= cfg.recover_healthy_windows {
                    self.browned = false;
                    self.healthy_windows = 0;
                    return BreakerAction::ExitBrownout;
                }
            }
        }
        BreakerAction::None
    }

    fn trip(&mut self, now: SimTime, cause: TripCause, cfg: &OverloadConfig) -> BreakerAction {
        self.state = BreakerState::Open;
        self.cause = cause;
        self.opened_at = now;
        self.trips += 1;
        self.healthy_windows = 0;
        self.probe_ids.clear();
        if cause == TripCause::Shed && cfg.brownout && !self.browned {
            self.browned = true;
            BreakerAction::EnterBrownout
        } else {
            BreakerAction::None
        }
    }

    fn reset_probes(&mut self) {
        self.probes_admitted = 0;
        self.probe_successes = 0;
        self.probe_failures = 0;
        self.probe_ids.clear();
    }
}

impl Snap for OverloadConfig {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            queue_capacity,
            deadline_factor,
            breaker_window,
            trip_shed_ratio,
            trip_failure_ratio,
            min_window_arrivals,
            min_failures,
            open_duration,
            half_open_probes,
            close_healthy_windows,
            brownout,
            brownout_quota_factor,
            recover_healthy_windows,
        } = self;
        w.len_prefix(*queue_capacity);
        deadline_factor.snap(w);
        breaker_window.snap(w);
        trip_shed_ratio.snap(w);
        trip_failure_ratio.snap(w);
        w.u64(*min_window_arrivals);
        w.u64(*min_failures);
        open_duration.snap(w);
        w.u64(*half_open_probes);
        w.u32(*close_healthy_windows);
        brownout.snap(w);
        brownout_quota_factor.snap(w);
        w.u32(*recover_healthy_windows);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = OverloadConfig {
            queue_capacity: r.len_prefix()?,
            deadline_factor: f64::unsnap(r)?,
            breaker_window: SimTime::unsnap(r)?,
            trip_shed_ratio: f64::unsnap(r)?,
            trip_failure_ratio: f64::unsnap(r)?,
            min_window_arrivals: r.u64()?,
            min_failures: r.u64()?,
            open_duration: SimTime::unsnap(r)?,
            half_open_probes: r.u64()?,
            close_healthy_windows: r.u32()?,
            brownout: bool::unsnap(r)?,
            brownout_quota_factor: f64::unsnap(r)?,
            recover_healthy_windows: r.u32()?,
        };
        if cfg.queue_capacity == 0
            || cfg.breaker_window == SimTime::ZERO
            || !(cfg.deadline_factor.is_finite() && cfg.deadline_factor > 0.0)
        {
            return Err(SnapError::new("overload config bounds"));
        }
        Ok(cfg)
    }
}

impl Snap for BreakerState {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => return Err(SnapError::new("breaker state tag")),
        })
    }
}

impl Snap for TripCause {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            TripCause::Shed => 0,
            TripCause::Failure => 1,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => TripCause::Shed,
            1 => TripCause::Failure,
            _ => return Err(SnapError::new("trip cause tag")),
        })
    }
}

impl Snap for CircuitBreaker {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            state,
            cause,
            opened_at,
            trips,
            arrivals,
            sheds,
            failures,
            successes,
            probe_ids,
            probes_admitted,
            probe_successes,
            probe_failures,
            healthy_windows,
            browned,
        } = self;
        state.snap(w);
        cause.snap(w);
        opened_at.snap(w);
        w.u64(*trips);
        w.u64(*arrivals);
        w.u64(*sheds);
        w.u64(*failures);
        w.u64(*successes);
        probe_ids.snap(w);
        w.u64(*probes_admitted);
        w.u64(*probe_successes);
        w.u64(*probe_failures);
        w.u32(*healthy_windows);
        browned.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let b = CircuitBreaker {
            state: BreakerState::unsnap(r)?,
            cause: TripCause::unsnap(r)?,
            opened_at: SimTime::unsnap(r)?,
            trips: r.u64()?,
            arrivals: r.u64()?,
            sheds: r.u64()?,
            failures: r.u64()?,
            successes: r.u64()?,
            probe_ids: BTreeSet::unsnap(r)?,
            probes_admitted: r.u64()?,
            probe_successes: r.u64()?,
            probe_failures: r.u64()?,
            healthy_windows: r.u32()?,
            browned: bool::unsnap(r)?,
        };
        let probe_count =
            u64::try_from(b.probe_ids.len()).map_err(|_| SnapError::new("breaker probe count"))?;
        if probe_count > b.probes_admitted {
            return Err(SnapError::new("breaker probe accounting"));
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        OverloadConfig::default()
            .breaker_window(SimTime::from_millis(100))
            .open_duration(SimTime::from_millis(200))
    }

    /// Drives `n` arrivals, shedding `shed` of them.
    fn window(b: &mut CircuitBreaker, cfg: &OverloadConfig, n: u64, shed: u64) {
        for i in 0..n {
            b.admit(cfg, 1000 + i);
            if i < shed {
                b.on_shed(1000 + i);
            } else {
                b.on_completion(1000 + i, true);
            }
        }
    }

    #[test]
    fn shed_ratio_trips_into_brownout() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        window(&mut b, &c, 20, 4); // 20 % shed: below threshold
        assert_eq!(b.tick(SimTime::from_millis(100), &c), BreakerAction::None);
        assert_eq!(b.state(), BreakerState::Closed);
        window(&mut b, &c, 20, 15); // 75 % shed: trip
        let act = b.tick(SimTime::from_millis(200), &c);
        assert_eq!(act, BreakerAction::EnterBrownout);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.cause(), TripCause::Shed);
        assert_eq!(b.trips(), 1);
        assert!(b.browned());
        // Brownout serving: Open still admits.
        assert_eq!(b.admit(&c, 1), AdmitDecision::Admit);
    }

    #[test]
    fn failure_trip_fast_fails() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        for id in 0..6u64 {
            b.admit(&c, id);
            b.on_failure(id);
        }
        assert_eq!(b.tick(SimTime::from_millis(100), &c), BreakerAction::None);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.cause(), TripCause::Failure);
        assert!(!b.browned(), "failure trips never brown out");
        // Fast-fail, not brownout serving.
        assert_eq!(b.admit(&c, 99), AdmitDecision::Refuse);
    }

    #[test]
    fn open_probes_then_closes_with_hysteresis() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        for id in 0..6u64 {
            b.admit(&c, id);
            b.on_failure(id);
        }
        b.tick(SimTime::from_millis(100), &c);
        assert_eq!(b.state(), BreakerState::Open);
        // Dwell not yet over.
        b.tick(SimTime::from_millis(200), &c);
        assert_eq!(b.state(), BreakerState::Open);
        // Dwell over: HalfOpen, probes admitted.
        b.tick(SimTime::from_millis(300), &c);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(&c, 50), AdmitDecision::Probe);
        b.on_completion(50, true);
        b.tick(SimTime::from_millis(400), &c);
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 healthy windows");
        assert_eq!(b.admit(&c, 51), AdmitDecision::Probe);
        b.on_completion(51, true);
        b.tick(SimTime::from_millis(500), &c);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        for id in 0..6u64 {
            b.admit(&c, id);
            b.on_failure(id);
        }
        b.tick(SimTime::from_millis(100), &c);
        b.tick(SimTime::from_millis(300), &c);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(&c, 50), AdmitDecision::Probe);
        b.on_failure(50);
        b.tick(SimTime::from_millis(400), &c);
        assert_eq!(b.state(), BreakerState::Open, "dead probe must re-open");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn probe_budget_is_bounded() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        for id in 0..6u64 {
            b.admit(&c, id);
            b.on_failure(id);
        }
        b.tick(SimTime::from_millis(100), &c);
        b.tick(SimTime::from_millis(300), &c);
        let mut probes = 0;
        let mut refused = 0;
        for id in 100..120u64 {
            match b.admit(&c, id) {
                AdmitDecision::Probe => probes += 1,
                AdmitDecision::Refuse => refused += 1,
                AdmitDecision::Admit => panic!("failure-cause HalfOpen must not admit freely"),
            }
        }
        assert_eq!(probes, c.half_open_probes);
        assert_eq!(refused, 20 - c.half_open_probes);
    }

    #[test]
    fn brownout_recovery_needs_consecutive_healthy_windows() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        window(&mut b, &c, 20, 15);
        assert_eq!(
            b.tick(SimTime::from_millis(100), &c),
            BreakerAction::EnterBrownout
        );
        // Probe back to Closed.
        b.tick(SimTime::from_millis(300), &c); // HalfOpen
        for t in [400u64, 500] {
            let id = t;
            assert_eq!(b.admit(&c, id), AdmitDecision::Probe);
            b.on_completion(id, true);
            b.tick(SimTime::from_millis(t), &c);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.browned(), "quota stays degraded until hysteresis clears");
        // One unhealthy window resets the streak.
        window(&mut b, &c, 10, 1);
        assert_eq!(b.tick(SimTime::from_millis(600), &c), BreakerAction::None);
        // Three clean windows restore full quota.
        for t in [700u64, 800] {
            window(&mut b, &c, 10, 0);
            assert_eq!(b.tick(SimTime::from_millis(t), &c), BreakerAction::None);
        }
        window(&mut b, &c, 10, 0);
        assert_eq!(
            b.tick(SimTime::from_millis(900), &c),
            BreakerAction::ExitBrownout
        );
        assert!(!b.browned());
    }
}
