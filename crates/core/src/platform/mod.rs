//! The end-to-end FaST-GShare platform: substrates + policies composed
//! into one deterministic discrete-event simulation.
//!
//! [`Platform`] is the user-facing façade (the "OpenFaaS cluster"): deploy
//! functions, attach load, run simulated time, read reports. Internally it
//! drives an [`engine::Engine`] — the [`fastg_des::World`] implementation
//! that wires together:
//!
//! * the cluster substrate (nodes, pods, gateway),
//! * one simulated GPU per node with an MPS server,
//! * one [FaST Backend](crate::manager::FastBackend) per node (token
//!   protocol, quota windows, SM Allocation Adapter),
//! * one [model storage server](crate::modelshare::ModelStorageServer)
//!   per node,
//! * the [FaST-Scheduler](crate::scheduler) (node selection at deploy
//!   time, Heuristic Scaling in the control loop),
//! * per-function load generators, SLO trackers and throughput meters.

pub mod checkpoint;
pub mod config;
pub mod csv;
pub mod engine;
pub mod error;
pub mod faults;
pub mod overload;
pub mod policy_compare;
pub mod report;
pub mod sweep;

pub use checkpoint::{Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use config::{FunctionConfig, PlatformConfig};
pub use fastg_des::TieBreak;
pub use engine::Platform;
pub use error::PlatformError;
pub use overload::{BreakerState, CircuitBreaker, OverloadConfig};
pub use policy_compare::{
    run_policy_cell, run_policy_grid, standard_grid, CompareReport, CompareScenario, PolicyCell,
};
pub use sweep::{
    run_sweep, run_sweep_stats, run_sweep_unshared, Scenario, SweepStats, TreatmentAction,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use report::{FunctionReport, NodeReport, PlatformReport};
