//! Deterministic fault-injection plans.
//!
//! Chaos testing for the simulated cluster: a [`FaultPlan`] is a fixed
//! schedule of failures decided *before* the run starts. Each entry is
//! injected through the discrete-event queue (as an engine `Fault` event),
//! so a run with a given plan and seed is reproducible event-for-event —
//! replaying the same configuration yields the same report, byte for byte.
//!
//! Targets are *indices*, not ids: `node_index` / `func_index` are resolved
//! modulo the number of nodes / deployed functions at injection time. This
//! keeps plans portable across topologies (and keeps the plan independent
//! of id-assignment order), at the cost of a plan never being able to miss:
//! a fault always hits *something* as long as the cluster is non-empty.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The kind of failure to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Kill one running replica of a function (the container OOM / segfault
    /// analogue). The victim is the function's lowest-numbered running pod;
    /// launched kernels drain before teardown (zombie-pod semantics).
    PodCrash {
        /// Index into deploy order, taken modulo the number of deployed
        /// functions at injection time.
        func_index: usize,
    },
    /// Power-fail a node: every pod on it dies immediately, in-flight
    /// kernels abort, the MPS server and rectangle bindings are torn down
    /// and device memory returns. Node crashes are permanent for the run.
    NodeCrash {
        /// Index into the node list, taken modulo the number of nodes.
        node_index: usize,
    },
    /// Degrade a node (thermal-throttling analogue): kernels *started*
    /// there from now on take `factor ×` their nominal duration.
    NodeDegrade {
        /// Index into the node list, taken modulo the number of nodes.
        node_index: usize,
        /// Kernel-duration multiplier, > 1.0 for a slowdown.
        factor: f64,
    },
    /// Restore a degraded node to full clock speed.
    NodeRecover {
        /// Index into the node list, taken modulo the number of nodes.
        node_index: usize,
    },
}

/// One scheduled failure: a [`FaultKind`] at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection time.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of failures for one run.
///
/// ```
/// use fastgshare::platform::{FaultKind, FaultPlan};
/// use fastg_des::SimTime;
///
/// let plan = FaultPlan::new()
///     .at(SimTime::from_secs(30), FaultKind::NodeCrash { node_index: 0 })
///     .at(SimTime::from_secs(10), FaultKind::PodCrash { func_index: 0 });
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `at` (builder style). Entries may be added in any
    /// order; the event queue delivers them in time order.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a seeded random plan of `n` faults over `(0, horizon)`.
    ///
    /// The mix leans toward survivable faults — pod crashes and degrade /
    /// recover cycles — with an occasional node crash, so that a random
    /// plan exercises the recovery controller without reliably killing the
    /// whole cluster. Identical `(seed, n, horizon)` always produce the
    /// identical plan.
    pub fn random(seed: u64, n: usize, horizon: SimTime) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA57_6A5E);
        let mut events = Vec::with_capacity(n);
        let span = horizon.as_micros().max(2);
        for _ in 0..n {
            let at = SimTime::from_micros(rng.gen_range(1..span));
            let roll: f64 = rng.gen_range(0.0..1.0);
            let target = rng.gen_range(0usize..64);
            let kind = if roll < 0.45 {
                FaultKind::PodCrash { func_index: target }
            } else if roll < 0.60 {
                FaultKind::NodeCrash { node_index: target }
            } else if roll < 0.85 {
                FaultKind::NodeDegrade {
                    node_index: target,
                    factor: rng.gen_range(1.25..4.0),
                }
            } else {
                FaultKind::NodeRecover { node_index: target }
            };
            events.push(FaultEvent { at, kind });
        }
        FaultPlan { events }
    }
}

impl Snap for FaultKind {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            FaultKind::PodCrash { func_index } => {
                w.u8(0);
                w.len_prefix(*func_index);
            }
            FaultKind::NodeCrash { node_index } => {
                w.u8(1);
                w.len_prefix(*node_index);
            }
            FaultKind::NodeDegrade { node_index, factor } => {
                w.u8(2);
                w.len_prefix(*node_index);
                w.f64(*factor);
            }
            FaultKind::NodeRecover { node_index } => {
                w.u8(3);
                w.len_prefix(*node_index);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FaultKind::PodCrash {
                func_index: r.len_prefix()?,
            },
            1 => FaultKind::NodeCrash {
                node_index: r.len_prefix()?,
            },
            2 => {
                let node_index = r.len_prefix()?;
                let factor = r.f64()?;
                if !factor.is_finite() {
                    return Err(SnapError::new("fault degrade factor"));
                }
                FaultKind::NodeDegrade { node_index, factor }
            }
            3 => FaultKind::NodeRecover {
                node_index: r.len_prefix()?,
            },
            _ => return Err(SnapError::new("fault kind tag")),
        })
    }
}

impl Snap for FaultEvent {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { at, kind } = self;
        at.snap(w);
        kind.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultEvent {
            at: SimTime::unsnap(r)?,
            kind: FaultKind::unsnap(r)?,
        })
    }
}

impl Snap for FaultPlan {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { events } = self;
        events.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultPlan {
            events: Vec::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_entries() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(1), FaultKind::PodCrash { func_index: 2 })
            .at(
                SimTime::from_secs(2),
                FaultKind::NodeDegrade {
                    node_index: 1,
                    factor: 2.0,
                },
            );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(7, 20, SimTime::from_secs(60));
        let b = FaultPlan::random(7, 20, SimTime::from_secs(60));
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let c = FaultPlan::random(8, 20, SimTime::from_secs(60));
        assert_ne!(a, c, "different seeds should differ");
        for e in a.events() {
            assert!(e.at > SimTime::ZERO && e.at < SimTime::from_secs(60));
            if let FaultKind::NodeDegrade { factor, .. } = e.kind {
                assert!(factor > 1.0);
            }
        }
    }
}
