//! Model Sharing (paper §3.5): IPC-based single-copy weight storage.
//!
//! Fine-grained sharing packs many instances of the same function onto one
//! GPU, multiplying the memory cost of duplicate model weights. The
//! mechanism here keeps exactly one copy per model:
//!
//! * [`ModelStorageServer`] — the Plasma-object-store analogue running on
//!   each node. `STORE` allocates device memory for a tensor
//!   (`cuMemAlloc`), exports an IPC handle (`cuIpcGetMemHandle`) and
//!   tracks refcounts; `GET` returns the existing handle (triggering the
//!   store path when the tensor is absent). The server pays a fixed
//!   storage-process context overhead per model (300 MB on a V100 —
//!   Figure 13's hatched area).
//! * [`StoreLib`] — the client library linked into each function
//!   instance: it opens handles (`cuIpcOpenMemHandle`) and wraps the raw
//!   device pointers in zero-copy tensor objects, so PyTorch-style
//!   frameworks construct the model without copying.
//! * [`footprint`] — the memory-accounting helpers the scheduler's
//!   node-selection uses: with sharing, a pod reserves only its private
//!   runtime/activation memory while weights live once in the store.

mod server;

pub use server::{
    footprint, ModelStorageServer, ShareError, StoreLib, TensorHandle, DEFAULT_CTX_OVERHEAD,
};
