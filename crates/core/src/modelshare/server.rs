//! The model storage server and its client library.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_gpu::{DevicePtr, GpuMemory, IpcHandle};
use std::collections::BTreeMap;

/// Storage-process context overhead per model: 300 MB on a V100 (paper
/// §5.5, the hatched area of Figure 13).
pub const DEFAULT_CTX_OVERHEAD: u64 = 300 * 1024 * 1024;

/// Errors from the model-sharing protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ShareError {
    /// Device memory exhausted while storing.
    OutOfMemory(String),
    /// Releasing a tensor that is not stored (or already fully released).
    UnknownTensor {
        /// Model name.
        model: String,
        /// Tensor id.
        tensor: String,
    },
}

impl std::fmt::Display for ShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareError::OutOfMemory(e) => write!(f, "model store out of memory: {e}"),
            ShareError::UnknownTensor { model, tensor } => {
                write!(f, "unknown tensor {model}/{tensor}")
            }
        }
    }
}

impl std::error::Error for ShareError {}

/// A handle to a shared tensor: the IPC handle plus the opened pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorHandle {
    /// The exported IPC handle.
    pub ipc: IpcHandle,
    /// The device pointer it resolves to (the same bytes in every
    /// process — zero copies).
    pub ptr: DevicePtr,
}

#[derive(Debug)]
struct StoredTensor {
    ptr: DevicePtr,
    ipc: IpcHandle,
    refs: u32,
}

#[derive(Debug)]
struct ModelEntry {
    ctx: DevicePtr,
    tensors: BTreeMap<String, StoredTensor>,
}

/// The per-node model storage server (Plasma analogue).
#[derive(Debug)]
pub struct ModelStorageServer {
    ctx_overhead: u64,
    models: BTreeMap<String, ModelEntry>,
}

impl Default for ModelStorageServer {
    fn default() -> Self {
        Self::new(DEFAULT_CTX_OVERHEAD)
    }
}

impl ModelStorageServer {
    /// Creates a server with the given per-model context overhead.
    pub fn new(ctx_overhead: u64) -> Self {
        ModelStorageServer {
            ctx_overhead,
            models: BTreeMap::new(),
        }
    }

    /// The GET/STORE entry point: returns the tensor's handle, storing it
    /// first (allocating `size` bytes plus, for a model's first tensor,
    /// the storage context) when absent. The caller's reference is
    /// counted; pair with [`Self::release`].
    pub fn get_or_store(
        &mut self,
        mem: &mut GpuMemory,
        model: &str,
        tensor: &str,
        size: u64,
    ) -> Result<(TensorHandle, bool), ShareError> {
        // Ensure the model's storage-process context exists.
        if !self.models.contains_key(model) {
            let ctx = if self.ctx_overhead > 0 {
                mem.alloc(self.ctx_overhead)
                    .map_err(|e| ShareError::OutOfMemory(e.to_string()))?
            } else {
                DevicePtr { offset: 0, len: 0 }
            };
            self.models.insert(
                model.to_string(),
                ModelEntry {
                    ctx,
                    tensors: BTreeMap::new(),
                },
            );
        }
        let had = self
            .models
            .get(model)
            .is_some_and(|e| e.tensors.contains_key(tensor));
        if !had {
            // STORE: cuMemAlloc + cuIpcGetMemHandle.
            let ptr = match mem.alloc(size) {
                Ok(p) => p,
                Err(e) => {
                    self.gc_model(mem, model);
                    return Err(ShareError::OutOfMemory(e.to_string()));
                }
            };
            let Ok(ipc) = mem.ipc_get_handle(ptr) else {
                debug_assert!(false, "fresh allocation exports a handle");
                let _ = mem.free(ptr);
                self.gc_model(mem, model);
                return Err(ShareError::OutOfMemory("ipc handle export failed".into()));
            };
            if let Some(e) = self.models.get_mut(model) {
                e.tensors
                    .insert(tensor.to_string(), StoredTensor { ptr, ipc, refs: 0 });
            } else {
                debug_assert!(false, "model entry created above");
            }
        }
        let Some(entry) = self
            .models
            .get_mut(model)
            .and_then(|e| e.tensors.get_mut(tensor))
        else {
            debug_assert!(false, "tensor stored above");
            return Err(ShareError::UnknownTensor {
                model: model.to_string(),
                tensor: tensor.to_string(),
            });
        };
        entry.refs += 1;
        Ok((
            TensorHandle {
                ipc: entry.ipc,
                ptr: entry.ptr,
            },
            had,
        ))
    }

    /// Drops one reference to a tensor; the last release frees the device
    /// memory, and freeing a model's last tensor also frees its context.
    pub fn release(
        &mut self,
        mem: &mut GpuMemory,
        model: &str,
        tensor: &str,
    ) -> Result<(), ShareError> {
        let entry = self
            .models
            .get_mut(model)
            .ok_or_else(|| ShareError::UnknownTensor {
                model: model.to_string(),
                tensor: tensor.to_string(),
            })?;
        let t = entry
            .tensors
            .get_mut(tensor)
            .ok_or_else(|| ShareError::UnknownTensor {
                model: model.to_string(),
                tensor: tensor.to_string(),
            })?;
        debug_assert!(t.refs > 0, "release without matching get ({model}/{tensor})");
        t.refs = t.refs.saturating_sub(1);
        if t.refs == 0 {
            let ptr = t.ptr;
            entry.tensors.remove(tensor);
            let freed = mem.free(ptr);
            debug_assert!(freed.is_ok(), "stored tensor pointer is live");
        }
        self.gc_model(mem, model);
        Ok(())
    }

    /// Frees a model's context when it stores no tensors.
    fn gc_model(&mut self, mem: &mut GpuMemory, model: &str) {
        let empty = self
            .models
            .get(model)
            .is_some_and(|e| e.tensors.is_empty());
        if empty {
            let Some(e) = self.models.remove(model) else {
                return; // unreachable: presence checked above
            };
            if e.ctx.len > 0 {
                let freed = mem.free(e.ctx);
                debug_assert!(freed.is_ok(), "context pointer is live");
            }
        }
    }

    /// Device bytes the server holds for `model` (context + stored
    /// tensors).
    pub fn model_bytes(&self, model: &str) -> u64 {
        self.models.get(model).map_or(0, |e| {
            let ctx = if e.ctx.len > 0 { e.ctx.len } else { 0 };
            ctx + e.tensors.values().map(|t| t.ptr.len).sum::<u64>()
        })
    }

    /// Total device bytes held by the server.
    pub fn total_bytes(&self) -> u64 {
        self.models
            .keys()
            .map(|m| self.model_bytes(m))
            .sum()
    }

    /// Reference count of a tensor (0 when absent).
    pub fn refs(&self, model: &str, tensor: &str) -> u32 {
        self.models
            .get(model)
            .and_then(|e| e.tensors.get(tensor))
            .map_or(0, |t| t.refs)
    }

    /// Number of models with live storage.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }
}

impl Snap for StoredTensor {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { ptr, ipc, refs } = self;
        ptr.snap(w);
        ipc.snap(w);
        w.u32(*refs);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let ptr = DevicePtr::unsnap(r)?;
        let ipc = IpcHandle::unsnap(r)?;
        let refs = r.u32()?;
        if refs == 0 {
            // A zero-ref tensor is freed eagerly by `release`; it can
            // never appear in a live server.
            return Err(SnapError::new("model store zero-ref tensor"));
        }
        Ok(StoredTensor { ptr, ipc, refs })
    }
}

impl Snap for ModelEntry {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { ctx, tensors } = self;
        ctx.snap(w);
        tensors.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ModelEntry {
            ctx: DevicePtr::unsnap(r)?,
            tensors: BTreeMap::unsnap(r)?,
        })
    }
}

impl Snap for ModelStorageServer {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            ctx_overhead,
            models,
        } = self;
        w.u64(*ctx_overhead);
        models.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let ctx_overhead = r.u64()?;
        let models: BTreeMap<String, ModelEntry> = BTreeMap::unsnap(r)?;
        // `gc_model` removes a model the moment its last tensor is
        // released, so every entry holds at least one tensor.
        if models.values().any(|e| e.tensors.is_empty()) {
            return Err(SnapError::new("model store empty model"));
        }
        Ok(ModelStorageServer {
            ctx_overhead,
            models,
        })
    }
}

impl Snap for StoreLib {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { attached } = self;
        attached.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(StoreLib {
            attached: Vec::unsnap(r)?,
        })
    }
}

/// The client-side store library: what the PyTorch C++ extension exposes
/// to a function instance.
#[derive(Debug, Default)]
pub struct StoreLib {
    attached: Vec<(String, String)>,
}

impl StoreLib {
    /// Creates an unattached client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the instance's weights: a GET/STORE for each tensor,
    /// returning zero-copy handles in order.
    pub fn attach(
        &mut self,
        server: &mut ModelStorageServer,
        mem: &mut GpuMemory,
        model: &str,
        tensors: &[(&str, u64)],
    ) -> Result<Vec<TensorHandle>, ShareError> {
        let mut out = Vec::with_capacity(tensors.len());
        for &(name, size) in tensors {
            let (h, _) = server.get_or_store(mem, model, name, size)?;
            self.attached.push((model.to_string(), name.to_string()));
            out.push(h);
        }
        Ok(out)
    }

    /// Releases every attached tensor (instance teardown).
    pub fn detach(&mut self, server: &mut ModelStorageServer, mem: &mut GpuMemory) {
        for (model, tensor) in self.attached.drain(..) {
            let released = server.release(mem, &model, &tensor);
            debug_assert!(released.is_ok(), "attached tensor releases cleanly");
        }
    }

    /// Number of attached tensors.
    pub fn attached_count(&self) -> usize {
        self.attached.len()
    }
}

/// Memory-footprint accounting used by node selection (Figure 13 math).
pub mod footprint {
    use fastg_models::MemoryFootprint;

    /// Device bytes a new pod must reserve privately.
    pub fn pod_reservation(m: &MemoryFootprint, sharing: bool) -> u64 {
        if sharing {
            m.shared_instance()
        } else {
            m.total()
        }
    }

    /// Device bytes the storage server holds for the model once any pod
    /// is up (weights + context).
    pub fn server_reservation(m: &MemoryFootprint, ctx_overhead: u64) -> u64 {
        m.weights_bytes + ctx_overhead
    }

    /// Total node footprint for `n` pods of a model.
    pub fn total_for(m: &MemoryFootprint, n: u64, sharing: bool, ctx_overhead: u64) -> u64 {
        if n == 0 {
            0
        } else if sharing {
            server_reservation(m, ctx_overhead) + n * m.shared_instance()
        } else {
            n * m.total()
        }
    }

    /// How many pods of a model fit in `capacity` bytes.
    pub fn max_pods(m: &MemoryFootprint, capacity: u64, sharing: bool, ctx_overhead: u64) -> u64 {
        if sharing {
            let fixed = server_reservation(m, ctx_overhead);
            if capacity <= fixed || m.shared_instance() == 0 {
                return 0;
            }
            (capacity - fixed) / m.shared_instance()
        } else if m.total() == 0 {
            0
        } else {
            capacity / m.total()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastg_models::MemoryFootprint;

    const MB: u64 = 1024 * 1024;

    fn mem() -> GpuMemory {
        GpuMemory::new(16 * 1024 * MB) // 16 GiB V100
    }

    #[test]
    fn store_then_get_shares_one_copy() {
        let mut m = mem();
        let mut s = ModelStorageServer::new(300 * MB);
        let (h1, present) = s.get_or_store(&mut m, "resnet50", "weights", 98 * MB).unwrap();
        assert!(!present);
        let (h2, present) = s.get_or_store(&mut m, "resnet50", "weights", 98 * MB).unwrap();
        assert!(present);
        assert_eq!(h1.ptr, h2.ptr, "zero-copy: same device pointer");
        assert_eq!(s.refs("resnet50", "weights"), 2);
        // One context + one weight copy.
        assert_eq!(s.model_bytes("resnet50"), 398 * MB);
        assert_eq!(m.used(), 398 * MB);
    }

    #[test]
    fn release_frees_on_last_reference() {
        let mut m = mem();
        let mut s = ModelStorageServer::new(300 * MB);
        s.get_or_store(&mut m, "m", "w", 10 * MB).unwrap();
        s.get_or_store(&mut m, "m", "w", 10 * MB).unwrap();
        s.release(&mut m, "m", "w").unwrap();
        assert_eq!(s.refs("m", "w"), 1);
        assert_eq!(m.used(), 310 * MB);
        s.release(&mut m, "m", "w").unwrap();
        // Tensor and context both freed.
        assert_eq!(m.used(), 0);
        assert_eq!(s.model_count(), 0);
    }

    #[test]
    fn context_charged_once_per_model() {
        let mut m = mem();
        let mut s = ModelStorageServer::new(300 * MB);
        s.get_or_store(&mut m, "m", "w1", 10 * MB).unwrap();
        s.get_or_store(&mut m, "m", "w2", 20 * MB).unwrap();
        s.get_or_store(&mut m, "other", "w1", 5 * MB).unwrap();
        assert_eq!(s.model_bytes("m"), 330 * MB);
        assert_eq!(s.model_bytes("other"), 305 * MB);
        assert_eq!(s.total_bytes(), 635 * MB);
        assert_eq!(s.model_count(), 2);
    }

    #[test]
    fn oom_during_store_leaves_no_leak() {
        let mut m = GpuMemory::new(350 * MB);
        let mut s = ModelStorageServer::new(300 * MB);
        let err = s.get_or_store(&mut m, "big", "w", 100 * MB);
        assert!(matches!(err, Err(ShareError::OutOfMemory(_))));
        // The speculative context allocation was rolled back.
        assert_eq!(m.used(), 0);
        assert_eq!(s.model_count(), 0);
    }

    #[test]
    fn release_unknown_errors() {
        let mut m = mem();
        let mut s = ModelStorageServer::default();
        assert!(matches!(
            s.release(&mut m, "x", "y"),
            Err(ShareError::UnknownTensor { .. })
        ));
    }

    #[test]
    fn store_lib_attach_detach() {
        let mut m = mem();
        let mut s = ModelStorageServer::new(300 * MB);
        let mut lib_a = StoreLib::new();
        let mut lib_b = StoreLib::new();
        let h_a = lib_a
            .attach(&mut s, &mut m, "vit", &[("w", 2634 * MB)])
            .unwrap();
        let h_b = lib_b
            .attach(&mut s, &mut m, "vit", &[("w", 2634 * MB)])
            .unwrap();
        assert_eq!(h_a[0].ptr, h_b[0].ptr);
        assert_eq!(m.used(), (2634 + 300) * MB);
        lib_a.detach(&mut s, &mut m);
        assert_eq!(m.used(), (2634 + 300) * MB, "b still holds it");
        lib_b.detach(&mut s, &mut m);
        assert_eq!(m.used(), 0);
        assert_eq!(lib_b.attached_count(), 0);
    }

    /// Figure 13: 3 ViT-Huge pods = 2934 (server) + 3 × 2101 with sharing
    /// vs 3 × 4735 without; ~4.8 GB saved.
    #[test]
    fn fig13_vit_huge_three_pods() {
        let vit = MemoryFootprint::from_mib(2101, 2634);
        let shared = footprint::total_for(&vit, 3, true, 300 * MB);
        let unshared = footprint::total_for(&vit, 3, false, 300 * MB);
        assert_eq!(shared / MB, 2934 + 3 * 2101); // 9237 MiB (paper: 9282)
        assert_eq!(unshared / MB, 3 * 4735); // 14205 MiB
        let saved_gb = (unshared - shared) as f64 / (1024.0 * MB as f64);
        assert!((saved_gb - 4.85).abs() < 0.15, "saved {saved_gb} GB");
    }

    /// Figure 13: a 16 GB V100 fits 7 shared vs 4 unshared ResNeXt pods.
    #[test]
    fn fig13_resnext_capacity() {
        let rx = MemoryFootprint::from_mib(1800, 2100);
        let cap = 16 * 1024 * MB;
        assert_eq!(footprint::max_pods(&rx, cap, true, 300 * MB), 7);
        assert_eq!(footprint::max_pods(&rx, cap, false, 300 * MB), 4);
    }

    /// Figure 13: single-pod deployments pay a small sharing penalty.
    #[test]
    fn fig13_single_pod_overhead() {
        let vit = MemoryFootprint::from_mib(2101, 2634);
        let shared_1 = footprint::total_for(&vit, 1, true, 300 * MB);
        let unshared_1 = footprint::total_for(&vit, 1, false, 300 * MB);
        assert!(shared_1 > unshared_1);
        assert_eq!((shared_1 - unshared_1) / MB, 300);
    }

    #[test]
    fn footprint_edge_cases() {
        let m0 = MemoryFootprint::from_mib(0, 0);
        assert_eq!(footprint::max_pods(&m0, 1024 * MB, true, 300 * MB), 0);
        assert_eq!(footprint::max_pods(&m0, 1024 * MB, false, 300 * MB), 0);
        assert_eq!(footprint::total_for(&m0, 0, true, 300 * MB), 0);
        let tiny_cap = MemoryFootprint::from_mib(100, 100);
        assert_eq!(footprint::max_pods(&tiny_cap, 100 * MB, true, 300 * MB), 0);
    }
}
