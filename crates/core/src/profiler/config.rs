//! The configuration server: sampling plans over the (spatial × temporal)
//! resource space.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How the configuration space is sampled.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplePlan {
    /// Full cartesian grid of the given spatial (%) and temporal
    /// (fraction) points.
    Grid {
        /// SM-partition percentages.
        spatial: Vec<f64>,
        /// Quota fractions.
        temporal: Vec<f64>,
    },
    /// `n` uniform random points (spatial in `[min_sm, 100]`, temporal in
    /// `[0.05, 1.0]`), seeded for reproducibility.
    Random {
        /// Number of samples.
        n: usize,
        /// Smallest SM percentage to consider.
        min_sm: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// The configuration server: yields the `(sm_partition, quota)` pairs an
/// experiment profiles.
#[derive(Debug, Clone)]
pub struct ConfigServer {
    plan: SamplePlan,
}

impl ConfigServer {
    /// Creates a server with the given plan.
    pub fn new(plan: SamplePlan) -> Self {
        ConfigServer { plan }
    }

    /// The paper's §5.2 profiling grid:
    /// temporal 20/40/60/80/100 %, spatial 6/12/24/50/60/80/100 %.
    pub fn paper_grid() -> Self {
        Self::new(SamplePlan::Grid {
            spatial: vec![6.0, 12.0, 24.0, 50.0, 60.0, 80.0, 100.0],
            temporal: vec![0.2, 0.4, 0.6, 0.8, 1.0],
        })
    }

    /// A reduced grid for fast trials in tests and examples.
    pub fn coarse_grid() -> Self {
        Self::new(SamplePlan::Grid {
            spatial: vec![12.0, 24.0, 50.0, 100.0],
            temporal: vec![0.4, 1.0],
        })
    }

    /// Materializes the sample list, deterministic for a given plan.
    pub fn sample(&self) -> Vec<(f64, f64)> {
        match &self.plan {
            SamplePlan::Grid { spatial, temporal } => {
                let mut out = Vec::with_capacity(spatial.len() * temporal.len());
                for &s in spatial {
                    for &q in temporal {
                        debug_assert!(s > 0.0 && s <= 100.0, "spatial point {s} out of range");
                        debug_assert!(q > 0.0 && q <= 1.0, "temporal point {q} out of range");
                        let s = s.clamp(f64::MIN_POSITIVE, 100.0);
                        let q = q.clamp(f64::MIN_POSITIVE, 1.0);
                        out.push((s, q));
                    }
                }
                out
            }
            SamplePlan::Random { n, min_sm, seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                (0..*n)
                    .map(|_| {
                        let s: f64 = rng.gen_range(*min_sm..=100.0);
                        let q: f64 = rng.gen_range(0.05..=1.0);
                        // Quantize to the rectangle units the scheduler
                        // uses (1 % / 1 %).
                        ((s.round()).max(1.0), (q * 100.0).round() / 100.0)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_35_points() {
        let pts = ConfigServer::paper_grid().sample();
        assert_eq!(pts.len(), 35);
        assert!(pts.contains(&(6.0, 0.2)));
        assert!(pts.contains(&(100.0, 1.0)));
    }

    #[test]
    fn random_plan_is_seeded() {
        let a = ConfigServer::new(SamplePlan::Random {
            n: 10,
            min_sm: 5.0,
            seed: 3,
        })
        .sample();
        let b = ConfigServer::new(SamplePlan::Random {
            n: 10,
            min_sm: 5.0,
            seed: 3,
        })
        .sample();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&(s, q)| (5.0..=100.0).contains(&s) && q > 0.0 && q <= 1.0));
    }

    #[test]
    #[should_panic(expected = "temporal point")]
    fn invalid_grid_point_panics() {
        ConfigServer::new(SamplePlan::Grid {
            spatial: vec![10.0],
            temporal: vec![1.5],
        })
        .sample();
    }
}
