//! The profile database.

use crate::scheduler::ConfigPoint;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;
use std::collections::BTreeMap;

/// A resource configuration key: fixed-point to make it orderable and
/// hashable without float pitfalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProfileKey {
    /// SM partition in hundredths of a percent.
    pub sm_centi: u32,
    /// Quota in hundredths (percent of the window).
    pub quota_centi: u32,
}

/// Quantizes a small non-negative ratio to integer centi-units.
fn centi(x: f64) -> u32 {
    // f64→u32 `as` saturates; profile inputs are small and non-negative.
    // fastg-lint: allow(no-lossy-cast)
    (x * 100.0).round() as u32
}

impl ProfileKey {
    /// Quantizes a `(sm %, quota fraction)` configuration.
    pub fn new(sm_partition: f64, quota: f64) -> Self {
        ProfileKey {
            sm_centi: centi(sm_partition),
            quota_centi: centi(quota),
        }
    }

    /// SM partition percentage.
    pub fn sm(&self) -> f64 {
        self.sm_centi as f64 / 100.0
    }

    /// Quota fraction.
    pub fn quota(&self) -> f64 {
        self.quota_centi as f64 / 100.0
    }
}

/// One trial's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileRecord {
    /// Sustained throughput (requests/second).
    pub rps: f64,
    /// Median latency.
    pub p50: SimTime,
    /// Tail latency.
    pub p99: SimTime,
    /// Mean GPU utilization during the trial.
    pub utilization: f64,
    /// Mean SM occupancy during the trial.
    pub sm_occupancy: f64,
}

/// The profiling database: `(function, configuration) → measurements`.
#[derive(Debug, Clone, Default)]
pub struct ProfileDb {
    records: BTreeMap<String, BTreeMap<ProfileKey, ProfileRecord>>,
}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) a trial result.
    pub fn insert(&mut self, func: &str, key: ProfileKey, rec: ProfileRecord) {
        self.records.entry(func.to_string()).or_default().insert(key, rec);
    }

    /// Looks up one configuration.
    pub fn get(&self, func: &str, key: ProfileKey) -> Option<&ProfileRecord> {
        self.records.get(func)?.get(&key)
    }

    /// All records for a function, in key order.
    pub fn records_of(&self, func: &str) -> Vec<(ProfileKey, ProfileRecord)> {
        self.records
            .get(func)
            .map(|m| m.iter().map(|(&k, &r)| (k, r)).collect())
            .unwrap_or_default()
    }

    /// The function's profile as Algorithm 1 input points.
    pub fn config_points(&self, func: &str) -> Vec<ConfigPoint> {
        self.records_of(func)
            .into_iter()
            .map(|(k, r)| ConfigPoint {
                sm: k.sm(),
                quota: k.quota(),
                rps: r.rps,
            })
            .collect()
    }

    /// Throughput of a specific configuration (the scheduler's capacity
    /// lookup for a running pod). Falls back to the nearest profiled key
    /// when the exact configuration was not profiled.
    pub fn throughput_of(&self, func: &str, sm: f64, quota: f64) -> Option<f64> {
        let key = ProfileKey::new(sm, quota);
        if let Some(r) = self.get(func, key) {
            return Some(r.rps);
        }
        // Nearest by squared distance in (sm, quota×100) space.
        self.records_of(func)
            .into_iter()
            .min_by(|(a, _), (b, _)| {
                let d = |k: &ProfileKey| {
                    let ds = k.sm() - sm;
                    let dq = (k.quota() - quota) * 100.0;
                    ds * ds + dq * dq
                };
                d(a).partial_cmp(&d(b)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(_, r)| r.rps)
    }

    /// Functions with profiles.
    pub fn functions(&self) -> Vec<&str> {
        self.records.keys().map(String::as_str).collect()
    }

    /// Serializes to JSON (the "database" the profiler persists).
    ///
    /// JSON object keys must be strings, so records are flattened to
    /// entry lists on disk:
    /// `{"functions": [{"name": ..., "records": [{...}, ...]}, ...]}`.
    pub fn to_json(&self) -> String {
        use fastg_json::{ObjectBuilder, Value};
        let functions: Vec<Value> = self
            .records
            .iter()
            .map(|(f, m)| {
                let records: Vec<Value> = m
                    .iter()
                    .map(|(&k, &r)| {
                        ObjectBuilder::new()
                            .field("sm_centi", k.sm_centi)
                            .field("quota_centi", k.quota_centi)
                            .field("rps", r.rps)
                            .field("p50_us", r.p50.as_micros())
                            .field("p99_us", r.p99.as_micros())
                            .field("utilization", r.utilization)
                            .field("sm_occupancy", r.sm_occupancy)
                            .build()
                    })
                    .collect();
                ObjectBuilder::new()
                    .field("name", f.as_str())
                    .field("records", Value::Array(records))
                    .build()
            })
            .collect();
        ObjectBuilder::new()
            .field("functions", Value::Array(functions))
            .build()
            .to_string_pretty()
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = fastg_json::Value::parse(s).map_err(|e| format!("invalid JSON: {e}"))?;
        let mut db = ProfileDb::new();
        let functions = v["functions"].as_array().ok_or("functions missing")?;
        for func in functions {
            let name = func["name"].as_str().ok_or("function name missing")?;
            let records = func["records"].as_array().ok_or("records missing")?;
            for rec in records {
                let num = |field: &str| -> Result<f64, String> {
                    rec[field]
                        .as_f64()
                        .ok_or_else(|| format!("{field} missing for {name}"))
                };
                let int = |field: &str| -> Result<u64, String> {
                    rec[field]
                        .as_u64()
                        .ok_or_else(|| format!("{field} missing for {name}"))
                };
                let key = ProfileKey {
                    sm_centi: u32::try_from(int("sm_centi")?).unwrap_or(u32::MAX),
                    quota_centi: u32::try_from(int("quota_centi")?).unwrap_or(u32::MAX),
                };
                let record = ProfileRecord {
                    rps: num("rps")?,
                    p50: SimTime::from_micros(int("p50_us")?),
                    p99: SimTime::from_micros(int("p99_us")?),
                    utilization: num("utilization")?,
                    sm_occupancy: num("sm_occupancy")?,
                };
                db.insert(name, key, record);
            }
        }
        Ok(db)
    }
}

impl Snap for ProfileKey {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            sm_centi,
            quota_centi,
        } = self;
        w.u32(*sm_centi);
        w.u32(*quota_centi);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ProfileKey {
            sm_centi: r.u32()?,
            quota_centi: r.u32()?,
        })
    }
}

impl Snap for ProfileRecord {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            rps,
            p50,
            p99,
            utilization,
            sm_occupancy,
        } = self;
        w.f64(*rps);
        p50.snap(w);
        p99.snap(w);
        w.f64(*utilization);
        w.f64(*sm_occupancy);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ProfileRecord {
            rps: r.f64()?,
            p50: SimTime::unsnap(r)?,
            p99: SimTime::unsnap(r)?,
            utilization: r.f64()?,
            sm_occupancy: r.f64()?,
        })
    }
}

impl Snap for ProfileDb {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { records } = self;
        records.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ProfileDb {
            records: BTreeMap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rps: f64) -> ProfileRecord {
        ProfileRecord {
            rps,
            p50: SimTime::from_millis(10),
            p99: SimTime::from_millis(30),
            utilization: 0.5,
            sm_occupancy: 0.1,
        }
    }

    #[test]
    fn insert_get_round_trip() {
        let mut db = ProfileDb::new();
        let k = ProfileKey::new(12.0, 0.4);
        db.insert("resnet50", k, rec(40.0));
        assert_eq!(db.get("resnet50", k).unwrap().rps, 40.0);
        assert!(db.get("resnet50", ProfileKey::new(24.0, 0.4)).is_none());
        assert!(db.get("bert", k).is_none());
        assert_eq!(db.functions(), vec!["resnet50"]);
    }

    #[test]
    fn key_quantization() {
        let k = ProfileKey::new(12.0, 0.4);
        assert_eq!(k.sm_centi, 1200);
        assert_eq!(k.quota_centi, 40);
        assert!((k.sm() - 12.0).abs() < 1e-9);
        assert!((k.quota() - 0.4).abs() < 1e-9);
        // Same logical config maps to the same key despite float noise.
        assert_eq!(ProfileKey::new(12.000001, 0.4000001), k);
    }

    #[test]
    fn config_points_feed_algorithm_1() {
        let mut db = ProfileDb::new();
        db.insert("f", ProfileKey::new(12.0, 0.4), rec(40.0));
        db.insert("f", ProfileKey::new(24.0, 0.4), rec(55.0));
        let pts = db.config_points("f");
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().any(|p| p.sm == 12.0 && p.rps == 40.0));
    }

    #[test]
    fn throughput_falls_back_to_nearest() {
        let mut db = ProfileDb::new();
        db.insert("f", ProfileKey::new(12.0, 0.4), rec(40.0));
        db.insert("f", ProfileKey::new(50.0, 1.0), rec(70.0));
        // Exact hit.
        assert_eq!(db.throughput_of("f", 12.0, 0.4), Some(40.0));
        // Nearest: (13 %, 0.38) is closest to (12 %, 0.4).
        assert_eq!(db.throughput_of("f", 13.0, 0.38), Some(40.0));
        assert_eq!(db.throughput_of("f", 60.0, 0.9), Some(70.0));
        assert_eq!(db.throughput_of("ghost", 12.0, 0.4), None);
    }

    #[test]
    fn json_round_trip() {
        let mut db = ProfileDb::new();
        db.insert("f", ProfileKey::new(6.0, 0.2), rec(12.0));
        let j = db.to_json();
        let back = ProfileDb::from_json(&j).unwrap();
        assert_eq!(back.get("f", ProfileKey::new(6.0, 0.2)).unwrap().rps, 12.0);
    }
}
