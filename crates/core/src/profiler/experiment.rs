//! The Experiment→Trial workflow: one trial per sampled configuration.

use super::config::ConfigServer;
use super::db::{ProfileDb, ProfileKey, ProfileRecord};
use crate::manager::SharingPolicy;
use crate::platform::{FunctionConfig, Platform, PlatformConfig};
use fastg_des::SimTime;

/// One trial's collected metrics (what the Client stores in the DB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// The profiled configuration.
    pub key: ProfileKey,
    /// Its measurements.
    pub record: ProfileRecord,
}

/// An automatic profiling experiment for one function image.
///
/// Each trial deploys a fresh single-pod FaSTPod with
/// `quota_request == quota_limit` (§3.3.2) on a dedicated one-GPU
/// cluster, drives it with a closed-loop saturating client, discards a
/// warm-up period, and records throughput, latency percentiles, GPU
/// utilization and SM occupancy.
#[derive(Debug, Clone)]
pub struct Experiment {
    model: String,
    server: ConfigServer,
    /// Simulated measurement duration per trial.
    pub trial_duration: SimTime,
    /// Warm-up discarded at the start of each trial.
    pub warmup: SimTime,
    /// Seed for the trial platforms.
    pub seed: u64,
}

impl Experiment {
    /// Creates an experiment over the given model with a configuration
    /// server.
    pub fn new(model: &str, server: ConfigServer) -> Self {
        Experiment {
            model: model.to_string(),
            server,
            trial_duration: SimTime::from_secs(3),
            warmup: SimTime::from_millis(500),
            seed: 1,
        }
    }

    /// Sets the per-trial measurement duration.
    pub fn trial_duration(mut self, d: SimTime) -> Self {
        self.trial_duration = d;
        self
    }

    /// The model under profiling.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Runs one trial at `(sm %, quota)`.
    pub fn run_trial(&self, sm: f64, quota: f64) -> Result<TrialResult, String> {
        let mut platform = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(SharingPolicy::FaST)
                .warmup(self.warmup)
                .seed(self.seed),
        );
        let func = platform.deploy(
            FunctionConfig::new(&format!("profile-{}-p{sm}-q{quota}", self.model), &self.model)
                .resources(sm, quota, quota)
                .saturating(),
        )?;
        let report = platform.run_for(self.warmup + self.trial_duration);
        let f = &report.functions[&func];
        let node = &report.nodes[0];
        Ok(TrialResult {
            key: ProfileKey::new(sm, quota),
            record: ProfileRecord {
                rps: f.throughput_rps,
                p50: f.p50,
                p99: f.p99,
                utilization: node.utilization,
                sm_occupancy: node.sm_occupancy,
            },
        })
    }

    /// Runs the whole experiment, inserting every trial into `db` under
    /// the model's name. Returns the trials in sampling order.
    pub fn run(&self, db: &mut ProfileDb) -> Result<Vec<TrialResult>, String> {
        let mut out = Vec::new();
        for (sm, quota) in self.server.sample() {
            let trial = self.run_trial(sm, quota)?;
            db.insert(&self.model, trial.key, trial.record);
            out.push(trial);
        }
        Ok(out)
    }

    /// Runs the experiment with trials spread over `threads` OS threads.
    ///
    /// Each trial is a fully independent simulation (own platform, own
    /// seed), so this is embarrassingly parallel; results are returned in
    /// sampling order and the database content is identical to
    /// [`Self::run`] — parallelism changes wall-clock time only, never
    /// results.
    pub fn run_parallel(
        &self,
        db: &mut ProfileDb,
        threads: usize,
    ) -> Result<Vec<TrialResult>, String> {
        debug_assert!(threads > 0, "zero worker threads");
        let threads = threads.max(1);
        let points = self.server.sample();
        let mut results: Vec<Option<Result<TrialResult, String>>> = Vec::new();
        results.resize_with(points.len(), || None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<Result<TrialResult, String>>>> =
            (0..points.len()).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(points.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(sm, quota)) = points.get(i) else {
                        break;
                    };
                    let r = self.run_trial(sm, quota);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(r);
                    }
                });
            }
        });
        for (i, slot) in slots.into_iter().enumerate() {
            results[i] = slot.into_inner().unwrap_or(None);
        }
        let mut out = Vec::with_capacity(points.len());
        for r in results {
            // A missing slot means a worker died (poisoned lock): surface
            // it as a trial error instead of panicking the whole search.
            let trial = r.ok_or("profiling trial did not complete")??;
            db.insert(&self.model, trial.key, trial.record);
            out.push(trial);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::config::SamplePlan;

    fn quick_experiment(spatial: Vec<f64>, temporal: Vec<f64>) -> Experiment {
        Experiment::new(
            "resnet50",
            ConfigServer::new(SamplePlan::Grid { spatial, temporal }),
        )
        .trial_duration(SimTime::from_secs(2))
    }

    #[test]
    fn trial_measures_quota_proportional_throughput() {
        let e = quick_experiment(vec![100.0], vec![0.2, 0.4]);
        let mut db = ProfileDb::new();
        let trials = e.run(&mut db).unwrap();
        assert_eq!(trials.len(), 2);
        let r20 = db
            .get("resnet50", ProfileKey::new(100.0, 0.2))
            .unwrap()
            .rps;
        let r40 = db
            .get("resnet50", ProfileKey::new(100.0, 0.4))
            .unwrap()
            .rps;
        // Figure 8's temporal proportionality.
        let ratio = r40 / r20;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio} (r20={r20}, r40={r40})");
    }

    #[test]
    fn trial_measures_spatial_saturation() {
        let e = quick_experiment(vec![12.0, 24.0, 50.0], vec![1.0]);
        let mut db = ProfileDb::new();
        e.run(&mut db).unwrap();
        let r12 = db.get("resnet50", ProfileKey::new(12.0, 1.0)).unwrap().rps;
        let r24 = db.get("resnet50", ProfileKey::new(24.0, 1.0)).unwrap().rps;
        let r50 = db.get("resnet50", ProfileKey::new(50.0, 1.0)).unwrap().rps;
        // ResNet saturates at ~24 %: a visible jump 12→24, a negligible
        // one 24→50.
        assert!(r24 > r12 * 1.3, "r12={r12} r24={r24}");
        assert!((r50 - r24).abs() / r24 < 0.1, "r24={r24} r50={r50}");
    }

    #[test]
    fn unknown_model_fails_cleanly() {
        let e = Experiment::new("nope", ConfigServer::coarse_grid());
        let mut db = ProfileDb::new();
        assert!(e.run(&mut db).is_err());
        assert!(e.run_parallel(&mut db, 4).is_err());
    }

    /// Parallel execution is a pure wall-clock optimization: identical
    /// trials, identical database.
    #[test]
    fn parallel_run_matches_serial() {
        let e = quick_experiment(vec![12.0, 24.0], vec![0.4, 1.0]);
        let mut serial = ProfileDb::new();
        let a = e.run(&mut serial).unwrap();
        let mut parallel = ProfileDb::new();
        let b = e.run_parallel(&mut parallel, 4).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.record, y.record);
        }
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}
