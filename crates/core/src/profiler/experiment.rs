//! The Experiment→Trial workflow: one trial per sampled configuration.

use super::config::ConfigServer;
use super::db::{ProfileDb, ProfileKey, ProfileRecord};
use crate::manager::SharingPolicy;
use crate::platform::{FunctionConfig, Platform, PlatformConfig, PlatformError, Snapshot};
use fastg_cluster::FuncId;
use fastg_des::SimTime;

/// One trial's collected metrics (what the Client stores in the DB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// The profiled configuration.
    pub key: ProfileKey,
    /// Its measurements.
    pub record: ProfileRecord,
}

/// An automatic profiling experiment for one function image.
///
/// Each trial deploys a fresh single-pod FaSTPod with
/// `quota_request == quota_limit` (§3.3.2) on a dedicated one-GPU
/// cluster, drives it with a closed-loop saturating client, discards a
/// warm-up period, and records throughput, latency percentiles, GPU
/// utilization and SM occupancy.
#[derive(Debug, Clone)]
pub struct Experiment {
    model: String,
    server: ConfigServer,
    /// Simulated measurement duration per trial.
    pub trial_duration: SimTime,
    /// Warm-up discarded at the start of each trial.
    pub warmup: SimTime,
    /// Seed for the trial platforms.
    pub seed: u64,
}

impl Experiment {
    /// Creates an experiment over the given model with a configuration
    /// server.
    pub fn new(model: &str, server: ConfigServer) -> Self {
        Experiment {
            model: model.to_string(),
            server,
            trial_duration: SimTime::from_secs(3),
            warmup: SimTime::from_millis(500),
            seed: 1,
        }
    }

    /// Sets the per-trial measurement duration.
    pub fn trial_duration(mut self, d: SimTime) -> Self {
        self.trial_duration = d;
        self
    }

    /// The model under profiling.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Starts a trial at `(sm %, quota)` without running any simulated
    /// time: builds the dedicated one-GPU platform and deploys the
    /// saturating pod. Drive it with [`TrialRun::extend_to`].
    pub fn start_trial(&self, sm: f64, quota: f64) -> Result<TrialRun, PlatformError> {
        let mut platform = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(SharingPolicy::FaST)
                .warmup(self.warmup)
                .seed(self.seed),
        );
        let func = platform.deploy(
            FunctionConfig::new(&format!("profile-{}-p{sm}-q{quota}", self.model), &self.model)
                .resources(sm, quota, quota)
                .saturating(),
        )?;
        Ok(TrialRun {
            platform,
            func,
            key: ProfileKey::new(sm, quota),
            warmup: self.warmup,
        })
    }

    /// Runs one trial at `(sm %, quota)` for the experiment's
    /// `trial_duration`.
    pub fn run_trial(&self, sm: f64, quota: f64) -> Result<TrialResult, PlatformError> {
        Ok(self.start_trial(sm, quota)?.extend_to(self.trial_duration))
    }

    /// Runs the whole experiment, inserting every trial into `db` under
    /// the model's name. Returns the trials in sampling order.
    pub fn run(&self, db: &mut ProfileDb) -> Result<Vec<TrialResult>, PlatformError> {
        let mut out = Vec::new();
        for (sm, quota) in self.server.sample() {
            let trial = self.run_trial(sm, quota)?;
            db.insert(&self.model, trial.key, trial.record);
            out.push(trial);
        }
        Ok(out)
    }

    /// Runs the experiment with trials spread over `threads` worker
    /// threads via `fastg-par`.
    ///
    /// Each trial is a fully independent simulation (own platform, own
    /// seed), so this is embarrassingly parallel; results are returned in
    /// sampling order and the database content is identical to
    /// [`Self::run`] — parallelism changes wall-clock time only, never
    /// results. A panicking trial surfaces as [`PlatformError::Worker`].
    pub fn run_parallel(
        &self,
        db: &mut ProfileDb,
        threads: usize,
    ) -> Result<Vec<TrialResult>, PlatformError> {
        let points = self.server.sample();
        let out = fastg_par::try_par_map(points, threads, |_, (sm, quota)| {
            self.run_trial(sm, quota)
        })?;
        for trial in &out {
            db.insert(&self.model, trial.key, trial.record);
        }
        Ok(out)
    }
}

/// A live, resumable trial: the platform keeps its simulated state
/// between measurements, so a search round that doubles the trial
/// duration only pays the *incremental* simulated time instead of
/// re-running the survivor's configuration from scratch.
pub struct TrialRun {
    platform: Platform,
    func: FuncId,
    key: ProfileKey,
    warmup: SimTime,
}

impl TrialRun {
    /// The configuration under measurement.
    pub fn key(&self) -> ProfileKey {
        self.key
    }

    /// Suspends the trial into a compact checkpoint. The live platform —
    /// arenas, event queue, GPU state — can then be dropped; resuming
    /// later replays byte-identically from the snapshot. Search rounds
    /// hold survivors this way between rounds, so eliminated trials
    /// release their simulation memory instead of parking live
    /// platforms until the search ends.
    pub fn suspend(&self) -> TrialSnapshot {
        TrialSnapshot {
            snap: self.platform.checkpoint(),
            func: self.func,
            key: self.key,
            warmup: self.warmup,
        }
    }

    /// Post-warmup simulated time this trial has already measured.
    pub fn measured(&self) -> SimTime {
        self.platform.now().saturating_sub(self.warmup)
    }

    /// Advances the trial until `trial_duration` of post-warmup time has
    /// been measured (a no-op if already there) and reports the
    /// cumulative measurement.
    pub fn extend_to(&mut self, trial_duration: SimTime) -> TrialResult {
        let deadline = self.warmup + trial_duration;
        let delta = deadline.saturating_sub(self.platform.now());
        let report = self.platform.run_for(delta);
        let f = &report.functions[&self.func];
        let node = &report.nodes[0];
        TrialResult {
            key: self.key,
            record: ProfileRecord {
                rps: f.throughput_rps,
                p50: f.p50,
                p99: f.p99,
                utilization: node.utilization,
                sm_occupancy: node.sm_occupancy,
            },
        }
    }
}

/// A suspended [`TrialRun`]: the checkpointed platform plus the
/// measurement context needed to resume it. Holds plain bytes — no
/// arenas, queues or caches — so carrying many of these between search
/// rounds is cheap, and dropping an eliminated one frees everything.
#[derive(Debug, Clone)]
pub struct TrialSnapshot {
    snap: Snapshot,
    func: FuncId,
    key: ProfileKey,
    warmup: SimTime,
}

impl TrialSnapshot {
    /// The configuration under measurement.
    pub fn key(&self) -> ProfileKey {
        self.key
    }

    /// Encoded size of the suspended state.
    pub fn size_bytes(&self) -> usize {
        self.snap.size_bytes()
    }

    /// Rebuilds the live trial from the checkpoint. The resumed run
    /// continues exactly where [`TrialRun::suspend`] left off —
    /// [`TrialRun::extend_to`] produces the same measurements the
    /// never-suspended run would have.
    pub fn resume(&self) -> Result<TrialRun, PlatformError> {
        Ok(TrialRun {
            platform: Platform::from_snapshot(&self.snap)?,
            func: self.func,
            key: self.key,
            warmup: self.warmup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::config::SamplePlan;

    fn quick_experiment(spatial: Vec<f64>, temporal: Vec<f64>) -> Experiment {
        Experiment::new(
            "resnet50",
            ConfigServer::new(SamplePlan::Grid { spatial, temporal }),
        )
        .trial_duration(SimTime::from_secs(2))
    }

    #[test]
    fn trial_measures_quota_proportional_throughput() {
        let e = quick_experiment(vec![100.0], vec![0.2, 0.4]);
        let mut db = ProfileDb::new();
        let trials = e.run(&mut db).unwrap();
        assert_eq!(trials.len(), 2);
        let r20 = db
            .get("resnet50", ProfileKey::new(100.0, 0.2))
            .unwrap()
            .rps;
        let r40 = db
            .get("resnet50", ProfileKey::new(100.0, 0.4))
            .unwrap()
            .rps;
        // Figure 8's temporal proportionality.
        let ratio = r40 / r20;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio} (r20={r20}, r40={r40})");
    }

    #[test]
    fn trial_measures_spatial_saturation() {
        let e = quick_experiment(vec![12.0, 24.0, 50.0], vec![1.0]);
        let mut db = ProfileDb::new();
        e.run(&mut db).unwrap();
        let r12 = db.get("resnet50", ProfileKey::new(12.0, 1.0)).unwrap().rps;
        let r24 = db.get("resnet50", ProfileKey::new(24.0, 1.0)).unwrap().rps;
        let r50 = db.get("resnet50", ProfileKey::new(50.0, 1.0)).unwrap().rps;
        // ResNet saturates at ~24 %: a visible jump 12→24, a negligible
        // one 24→50.
        assert!(r24 > r12 * 1.3, "r12={r12} r24={r24}");
        assert!((r50 - r24).abs() / r24 < 0.1, "r24={r24} r50={r50}");
    }

    #[test]
    fn suspend_resume_preserves_measurements() {
        let e = quick_experiment(vec![24.0], vec![0.4]);
        // Straight-through reference.
        let mut straight = e.start_trial(24.0, 0.4).unwrap();
        straight.extend_to(SimTime::from_millis(500));
        let reference = straight.extend_to(SimTime::from_secs(2));

        // Suspend mid-search, drop the live platform, resume, extend.
        let mut run = e.start_trial(24.0, 0.4).unwrap();
        run.extend_to(SimTime::from_millis(500));
        let suspended = run.suspend();
        drop(run);
        assert!(suspended.size_bytes() > 0);
        assert_eq!(suspended.key(), ProfileKey::new(24.0, 0.4));
        let mut resumed = suspended.resume().unwrap();
        let measured = resumed.extend_to(SimTime::from_secs(2));
        assert_eq!(measured.key, reference.key);
        assert_eq!(measured.record, reference.record);
    }

    #[test]
    fn unknown_model_fails_cleanly() {
        let e = Experiment::new("nope", ConfigServer::coarse_grid());
        let mut db = ProfileDb::new();
        assert!(e.run(&mut db).is_err());
        assert!(e.run_parallel(&mut db, 4).is_err());
    }

    /// Parallel execution is a pure wall-clock optimization: identical
    /// trials, identical database.
    #[test]
    fn parallel_run_matches_serial() {
        let e = quick_experiment(vec![12.0, 24.0], vec![0.4, 1.0]);
        let mut serial = ProfileDb::new();
        let a = e.run(&mut serial).unwrap();
        let mut parallel = ProfileDb::new();
        let b = e.run_parallel(&mut parallel, 4).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.record, y.record);
        }
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}
