//! Budget-aware configuration search.
//!
//! The full Figure 8 grid costs `|spatial| × |temporal|` trials per
//! function. Morphling's thesis — which FaST-Profiler builds on — is
//! that near-optimal configurations can be found with far fewer trials.
//! Two tools here:
//!
//! * [`SuccessiveHalving`] — racing-style search: run *all* candidate
//!   configurations with short cheap trials, keep the best `1/eta` by
//!   RPR (the scheduler's efficiency metric), re-run the survivors with
//!   longer trials, repeat. The final survivor is measured at full
//!   fidelity and inserted into the [`ProfileDb`].
//! * [`predict_rps`] — inverse-distance-weighted interpolation over the
//!   profiled points, so the scheduler can evaluate configurations that
//!   were never run (the regression-model role in Morphling).

use super::db::{ProfileDb, ProfileKey};
use super::experiment::{Experiment, TrialSnapshot};
use crate::platform::PlatformError;
use crate::profiler::config::{ConfigServer, SamplePlan};
use crate::scheduler::ConfigPoint;
use fastg_des::SimTime;

/// Successive-halving search over a candidate configuration set.
#[derive(Debug, Clone)]
pub struct SuccessiveHalving {
    model: String,
    candidates: Vec<(f64, f64)>,
    /// Keep `1/eta` of candidates each round (default 3).
    pub eta: usize,
    /// Trial duration for the first (cheapest) round; doubles per round.
    pub base_trial: SimTime,
    /// Seed for trial platforms.
    pub seed: u64,
}

/// The outcome of a search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best configuration found.
    pub best: ConfigPoint,
    /// Total trials executed (the budget actually spent).
    pub trials: usize,
    /// Simulated seconds spent across all trials.
    pub sim_seconds: f64,
}

impl SuccessiveHalving {
    /// Searches over the paper's grid for `model`.
    pub fn over_paper_grid(model: &str) -> Self {
        SuccessiveHalving {
            model: model.to_string(),
            candidates: ConfigServer::paper_grid().sample(),
            eta: 3,
            base_trial: SimTime::from_millis(500),
            seed: 1,
        }
    }

    /// Searches over an explicit candidate list.
    pub fn over(model: &str, candidates: Vec<(f64, f64)>) -> Self {
        debug_assert!(!candidates.is_empty(), "no candidates");
        let mut candidates = candidates;
        if candidates.is_empty() {
            candidates.push((100.0, 1.0));
        }
        SuccessiveHalving {
            model: model.to_string(),
            candidates,
            eta: 3,
            base_trial: SimTime::from_millis(500),
            seed: 1,
        }
    }

    /// Runs the search with one worker thread per candidate slot as
    /// resolved from the environment (`FASTG_THREADS`, defaulting to the
    /// machine's parallelism). See [`Self::run_with_threads`].
    pub fn run(&self, db: &mut ProfileDb) -> Result<SearchResult, PlatformError> {
        self.run_with_threads(db, fastg_par::resolve_threads(None))
    }

    /// Runs the search. Every trial's measurement is inserted into `db`
    /// (later rounds overwrite earlier, cheaper measurements of the same
    /// key), and the winner is returned.
    ///
    /// All candidates of a round run concurrently over `threads` worker
    /// threads. Between rounds every survivor is *suspended into a
    /// checkpoint* ([`TrialSnapshot`]) and its live platform dropped:
    /// the next round forks the survivor back to life from the snapshot
    /// and pays only the incremental simulated time, while eliminated
    /// candidates release their arenas, queues and GPU state the moment
    /// the round's cut is made — the search's resident memory is a few
    /// compact byte buffers, not `keep` live simulations. Suspension is
    /// digest-exact (restore-then-run ≡ run-through), so results are
    /// identical to carrying live platforms, and the thread count never
    /// changes the result — trials are independent seeded simulations
    /// collected in candidate order.
    pub fn run_with_threads(
        &self,
        db: &mut ProfileDb,
        threads: usize,
    ) -> Result<SearchResult, PlatformError> {
        debug_assert!(self.eta >= 2, "eta must halve at least");
        let eta = self.eta.max(2);
        let mut experiment = Experiment::new(
            &self.model,
            ConfigServer::new(SamplePlan::Grid {
                spatial: vec![],
                temporal: vec![],
            }),
        );
        experiment.seed = self.seed;
        let mut pool: Vec<((f64, f64), Option<TrialSnapshot>)> =
            self.candidates.iter().map(|&c| (c, None)).collect();
        let mut duration = self.base_trial;
        let mut trials = 0usize;
        let mut sim_seconds = 0.0f64;
        while pool.len() > 1 {
            let pool_len = pool.len();
            let measured = fastg_par::try_par_map(pool, threads, |_, ((sm, q), suspended)| {
                // Fork the survivor from its checkpoint (or start cold),
                // measure, and suspend again before the live platform
                // leaves the worker.
                let mut run = match &suspended {
                    Some(snap) => snap.resume()?,
                    None => experiment.start_trial(sm, q)?,
                };
                let already = run.measured();
                let trial = run.extend_to(duration);
                let paid = duration.saturating_sub(already);
                Ok::<_, PlatformError>(((sm, q), run.suspend(), trial, paid))
            })?;
            let mut scored = Vec::with_capacity(measured.len());
            for ((sm, q), snap, trial, paid) in measured {
                db.insert(&self.model, trial.key, trial.record);
                trials += 1;
                sim_seconds += paid.as_secs_f64();
                let rpr = trial.record.rps / (sm / 100.0 * q);
                scored.push((((sm, q), snap), rpr));
            }
            // Keep the top 1/eta (at least one), deterministic ties.
            // Dropping the tail here frees the eliminated trials'
            // snapshots — nothing of a loser survives the cut.
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(
                        (a.0)
                            .0
                            .partial_cmp(&(b.0).0)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
            });
            let keep = (pool_len / eta).max(1);
            pool = scored
                .into_iter()
                .take(keep)
                .map(|(((sm, q), snap), _)| ((sm, q), Some(snap)))
                .collect();
            duration = duration * 2;
        }
        // Final high-fidelity measurement of the winner: fork its last
        // checkpoint and extend to 3 s of measured time (paying only the
        // remainder).
        let ((sm, q), suspended) = pool.remove(0);
        let mut run = match &suspended {
            Some(snap) => snap.resume()?,
            None => experiment.start_trial(sm, q)?,
        };
        let fidelity = SimTime::from_secs(3).max(run.measured());
        let paid = fidelity.saturating_sub(run.measured());
        let final_trial = run.extend_to(fidelity);
        db.insert(&self.model, final_trial.key, final_trial.record);
        trials += 1;
        sim_seconds += paid.as_secs_f64();
        Ok(SearchResult {
            best: ConfigPoint {
                sm,
                quota: q,
                rps: final_trial.record.rps,
            },
            trials,
            sim_seconds,
        })
    }

    /// Number of candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }
}

/// Predicts the throughput of an unprofiled `(sm %, quota)` configuration
/// by inverse-distance-weighted interpolation over the `k = 4` nearest
/// profiled points (exact hits return the measurement). Returns `None`
/// when the function has no profile.
pub fn predict_rps(db: &ProfileDb, func: &str, sm: f64, quota: f64) -> Option<f64> {
    let records = db.records_of(func);
    if records.is_empty() {
        return None;
    }
    if let Some(r) = db.get(func, ProfileKey::new(sm, quota)) {
        return Some(r.rps);
    }
    // Distance in normalized (sm/100, quota) space.
    let mut scored: Vec<(f64, f64)> = records
        .iter()
        .map(|(k, r)| {
            let ds = (k.sm() - sm) / 100.0;
            let dq = k.quota() - quota;
            ((ds * ds + dq * dq).sqrt(), r.rps)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let k = scored.len().min(4);
    let mut num = 0.0;
    let mut den = 0.0;
    for &(d, rps) in &scored[..k] {
        let w = 1.0 / (d + 1e-6);
        num += w * rps;
        den += w;
    }
    Some(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::db::ProfileRecord;

    fn rec(rps: f64) -> ProfileRecord {
        ProfileRecord {
            rps,
            p50: SimTime::from_millis(10),
            p99: SimTime::from_millis(20),
            utilization: 0.0,
            sm_occupancy: 0.0,
        }
    }

    #[test]
    fn search_finds_the_efficient_resnet_config() {
        // ResNet's best RPR is a small partition at modest quota.
        let sh = SuccessiveHalving::over(
            "resnet50",
            vec![
                (6.0, 0.4),
                (12.0, 0.4),
                (24.0, 0.4),
                (50.0, 0.4),
                (100.0, 1.0),
                (12.0, 1.0),
            ],
        );
        let mut db = ProfileDb::new();
        let result = sh.run(&mut db).unwrap();
        assert!(
            result.best.sm <= 24.0,
            "expected a small partition, got {} %",
            result.best.sm
        );
        assert!(result.best.rps > 0.0);
        // Far cheaper than profiling the 35-point grid at full fidelity:
        // trials = 6 + 2 + 1 = 9 short rounds + 1 final.
        assert!(result.trials <= 10, "trials {}", result.trials);
    }

    #[test]
    fn search_budget_beats_full_grid() {
        let sh = SuccessiveHalving::over_paper_grid("resnet50");
        assert_eq!(sh.candidate_count(), 35);
        let mut db = ProfileDb::new();
        let result = sh.run(&mut db).unwrap();
        // Full grid at 3 s each = 105 simulated seconds; the search stays
        // well under half that.
        assert!(
            result.sim_seconds < 52.0,
            "search spent {} sim-seconds",
            result.sim_seconds
        );
        // And the winner is a genuinely efficient configuration.
        let rpr = result.best.rps / (result.best.sm / 100.0 * result.best.quota);
        assert!(rpr > 500.0, "winner RPR {rpr}");
    }

    #[test]
    fn interpolation_exact_hit_returns_measurement() {
        let mut db = ProfileDb::new();
        db.insert("f", ProfileKey::new(12.0, 0.4), rec(40.0));
        assert_eq!(predict_rps(&db, "f", 12.0, 0.4), Some(40.0));
        assert_eq!(predict_rps(&db, "ghost", 12.0, 0.4), None);
    }

    #[test]
    fn interpolation_blends_neighbours() {
        let mut db = ProfileDb::new();
        db.insert("f", ProfileKey::new(10.0, 0.4), rec(20.0));
        db.insert("f", ProfileKey::new(30.0, 0.4), rec(60.0));
        let mid = predict_rps(&db, "f", 20.0, 0.4).unwrap();
        assert!(
            (mid - 40.0).abs() < 1.0,
            "midpoint should blend evenly: {mid}"
        );
        // Nearer one neighbour → skews towards it.
        let near = predict_rps(&db, "f", 12.0, 0.4).unwrap();
        assert!(near < 32.0, "near-20 prediction {near}");
    }

    #[test]
    fn interpolation_against_measured_grid() {
        // Profile a coarse ResNet grid, predict a held-out point, compare
        // to its true measurement.
        let mut db = ProfileDb::new();
        Experiment::new(
            "resnet50",
            ConfigServer::new(SamplePlan::Grid {
                spatial: vec![12.0, 50.0],
                temporal: vec![0.4, 1.0],
            }),
        )
        .trial_duration(SimTime::from_secs(2))
        .run(&mut db)
        .unwrap();
        let predicted = predict_rps(&db, "resnet50", 24.0, 0.6).unwrap();
        let truth = Experiment::new("resnet50", ConfigServer::paper_grid())
            .trial_duration(SimTime::from_secs(2))
            .run_trial(24.0, 0.6)
            .unwrap()
            .record
            .rps;
        let rel = (predicted - truth).abs() / truth;
        assert!(
            rel < 0.5,
            "prediction {predicted} vs truth {truth} ({:.0}% off)",
            rel * 100.0
        );
    }
}
