//! FaST-Profiler (paper §3.2): automatic profiling of function throughput
//! under spatio-temporal resource allocations.
//!
//! Follows the Morphling Experiment→Trial structure, re-designed for GPU
//! sharing:
//!
//! * the [`ConfigServer`] samples resource configurations — by default
//!   the paper's grid (temporal {20, 40, 60, 80, 100 %} × spatial
//!   {6, 12, 24, 50, 60, 80, 100 %});
//! * an [`Experiment`] launches one trial per configuration: a single-pod
//!   FaSTPod with `quota_request == quota_limit`, a saturating
//!   closed-loop client, and metric collection (throughput, latency
//!   percentiles, GPU utilization, SM occupancy);
//! * results land in the [`ProfileDb`], the database the
//!   FaST-Scheduler's Heuristic Scaling Algorithm reads
//!   ([`ProfileDb::config_points`]).

pub mod config;
pub mod db;
pub mod experiment;
pub mod search;

pub use config::{ConfigServer, SamplePlan};
pub use db::{ProfileDb, ProfileKey, ProfileRecord};
pub use experiment::{Experiment, TrialResult, TrialRun, TrialSnapshot};
pub use search::{predict_rps, SearchResult, SuccessiveHalving};
